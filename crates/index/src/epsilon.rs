//! ε-augmented cell↔segment maps (paper Sec. 3.2.1).
//!
//! The raster maps (which cells a segment passes through) are static; at
//! query time, once ε is known, they are augmented so that
//! `Cε(ℓ)` contains every occupied cell within distance ε of segment ℓ and
//! `Lε(c)` every segment within ε of cell c. These maps are what the SOI
//! algorithm traverses during filtering and refinement.
//!
//! Only *occupied* cells (cells containing at least one POI) enter the maps:
//! empty cells contribute no mass, and excluding them both tightens the
//! `|Cε(ℓ)|` factor of the unseen upper bound and shrinks the traversal.

use crate::poi_index::PoiIndex;
use soi_common::{CellId, FxHashMap, SegmentId};
use soi_network::RoadNetwork;

/// The ε-augmented maps for one ε value.
#[derive(Debug)]
pub struct EpsilonMaps {
    eps: f64,
    /// `Cε(ℓ)`: occupied cells within ε of each segment (dense by segment).
    segment_to_cells: Vec<Vec<CellId>>,
    /// `Lε(c)`: segments within ε of each occupied cell.
    cell_to_segments: FxHashMap<CellId, Vec<SegmentId>>,
}

impl EpsilonMaps {
    /// Builds the augmented maps for `eps` over all segments of `network`
    /// and all occupied cells of `index`.
    pub fn build(network: &RoadNetwork, index: &PoiIndex, eps: f64) -> Self {
        assert!(eps >= 0.0 && eps.is_finite(), "eps must be non-negative");
        let grid = index.grid();
        let mut segment_to_cells: Vec<Vec<CellId>> = Vec::with_capacity(network.num_segments());
        let mut cell_to_segments: FxHashMap<CellId, Vec<SegmentId>> = FxHashMap::default();

        for seg in network.segments() {
            let mut cells: Vec<CellId> = grid
                .cells_near_segment(&seg.geom, eps)
                .into_iter()
                .map(|c| grid.cell_id(c))
                .filter(|&c| index.cell(c).is_some())
                .collect();
            cells.sort_unstable();
            for &c in &cells {
                cell_to_segments.entry(c).or_default().push(seg.id);
            }
            segment_to_cells.push(cells);
        }

        Self {
            eps,
            segment_to_cells,
            cell_to_segments,
        }
    }

    /// The ε these maps were built for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Snapshot-encode access to the private parts (see [`crate::snapshot`]).
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (f64, &[Vec<CellId>], &FxHashMap<CellId, Vec<SegmentId>>) {
        (self.eps, &self.segment_to_cells, &self.cell_to_segments)
    }

    /// Reassembles maps from snapshot-decoded parts.
    pub(crate) fn from_snapshot_parts(
        eps: f64,
        segment_to_cells: Vec<Vec<CellId>>,
        cell_to_segments: FxHashMap<CellId, Vec<SegmentId>>,
    ) -> Self {
        Self {
            eps,
            segment_to_cells,
            cell_to_segments,
        }
    }

    /// `Cε(ℓ)`: occupied cells within ε of segment `seg`, ascending by id.
    pub fn cells_of_segment(&self, seg: SegmentId) -> &[CellId] {
        &self.segment_to_cells[seg.index()]
    }

    /// `|Cε(ℓ)|` for segment `seg`.
    pub fn num_cells_of_segment(&self, seg: SegmentId) -> usize {
        self.segment_to_cells[seg.index()].len()
    }

    /// `Lε(c)`: segments within ε of cell `cell` (empty if none).
    pub fn segments_of_cell(&self, cell: CellId) -> &[SegmentId] {
        self.cell_to_segments
            .get(&cell)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of segments in the network these maps cover.
    pub fn num_segments(&self) -> usize {
        self.segment_to_cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_data::PoiCollection;
    use soi_geo::Point;
    use soi_text::KeywordSet;

    fn setup(eps: f64) -> (RoadNetwork, PoiIndex, EpsilonMaps) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("H", &[Point::new(0.0, 0.0), Point::new(4.0, 0.0)]);
        b.add_street_from_points("V", &[Point::new(2.0, -3.0), Point::new(2.0, 3.0)]);
        let network = b.build().unwrap();
        let mut pois = PoiCollection::new();
        pois.add(Point::new(1.0, 0.3), KeywordSet::empty());
        pois.add(Point::new(2.2, 2.5), KeywordSet::empty());
        pois.add(Point::new(3.9, -0.2), KeywordSet::empty());
        let index = PoiIndex::build(&network, &pois, 0.5);
        let maps = EpsilonMaps::build(&network, &index, eps);
        (network, index, maps)
    }

    #[test]
    fn maps_are_mutually_consistent() {
        let (network, _, maps) = setup(0.6);
        // Every (segment, cell) pair appears in both directions.
        for seg in network.segments() {
            for &c in maps.cells_of_segment(seg.id) {
                assert!(
                    maps.segments_of_cell(c).contains(&seg.id),
                    "cell {c:?} missing segment {}",
                    seg.id
                );
            }
        }
        for (&c, segs) in maps.cell_to_segments.iter() {
            for &s in segs {
                assert!(maps.cells_of_segment(s).contains(&c));
            }
        }
    }

    #[test]
    fn only_occupied_cells_included() {
        let (_, index, maps) = setup(0.6);
        for seg_cells in &maps.segment_to_cells {
            for &c in seg_cells {
                assert!(index.cell(c).is_some(), "unoccupied cell {c:?} in Cε");
            }
        }
    }

    #[test]
    fn cells_within_eps_have_near_pois_covered() {
        // Every POI within eps of a segment must lie in some cell of Cε(ℓ).
        let (network, index, maps) = setup(0.8);
        let grid = index.grid();
        let poi_positions = [
            Point::new(1.0, 0.3),
            Point::new(2.2, 2.5),
            Point::new(3.9, -0.2),
        ];
        for seg in network.segments() {
            for &pos in &poi_positions {
                if seg.geom.dist_to_point(pos) <= 0.8 {
                    let cell = grid.cell_id(grid.cell_containing(pos).unwrap());
                    assert!(
                        maps.cells_of_segment(seg.id).contains(&cell),
                        "POI at {pos} within eps of {} but cell not in Cε",
                        seg.id
                    );
                }
            }
        }
    }

    #[test]
    fn zero_eps_still_covers_cells_containing_the_segment() {
        let (_, index, maps) = setup(0.0);
        // The POI at (1.0, 0.3) is 0.3 away: with eps 0, its cell may or may
        // not intersect the segment; the invariant is just that all listed
        // cells are occupied and the maps stay consistent.
        for seg_cells in &maps.segment_to_cells {
            for &c in seg_cells {
                assert!(index.cell(c).is_some());
            }
        }
    }

    #[test]
    fn larger_eps_yields_superset() {
        let (_, _, small) = setup(0.3);
        let (_, _, large) = setup(1.5);
        for (s_cells, l_cells) in small
            .segment_to_cells
            .iter()
            .zip(large.segment_to_cells.iter())
        {
            for c in s_cells {
                assert!(l_cells.contains(c), "eps growth lost cell {c:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "eps must be non-negative")]
    fn negative_eps_panics() {
        setup(-1.0);
    }
}
