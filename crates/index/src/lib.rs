//! Spatio-textual indexes for the streets-of-interest system.
//!
//! This crate implements the offline data structures of the paper:
//!
//! **For k-SOI identification (Sec. 3.2.1):**
//! - [`PoiIndex`]: a spatial grid over the POIs where every cell holds a
//!   local inverted index (postings sorted by POI id), plus the global
//!   inverted index mapping each keyword to `(cell, count)` entries sorted
//!   decreasingly by count, the segment length list, and the raster
//!   cell↔segment maps;
//! - [`EpsilonMaps`]: the query-time ε-augmented maps `Lε(c)` (segments
//!   within ε of a cell) and `Cε(ℓ)` (cells within ε of a segment), cached
//!   per ε since street segments and POIs are static.
//!
//! **For single-POI retrieval (the related work of Sec. 2.1):**
//! - [`IrTree`]: a hybrid spatio-textual R-tree whose nodes carry subtree
//!   keyword summaries, answering top-k nearest-relevant-POI queries.
//!
//! **For SOI description (Sec. 4.2.1):**
//! - [`PhotoGrid`]: a dataset-wide grid over the photos used to extract the
//!   per-street photo set `Rs = {r : dist(r, s) ≤ ε}`;
//! - [`DiversificationIndex`]: the per-street grid with cell side ρ/2 whose
//!   cells hold the photo list, a local inverted index, the cell keyword set
//!   `c.Ψ`, and the min/max tag counts `c.ψmin` / `c.ψmax` that drive the
//!   bounds of Eqs. 11–18.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bloom;
pub mod delta;
pub mod div_index;
pub mod epoch;
pub mod epsilon;
pub mod ir_tree;
pub mod obs;
pub mod photo_grid;
pub mod poi_index;
pub mod snapshot;
pub mod view;

pub use bloom::BloomSummary;
pub use delta::{fold_ops, DeltaIndex, DeltaOp};
pub use div_index::{DivCell, DiversificationIndex};
pub use epoch::EpochedIndex;
pub use epsilon::EpsilonMaps;
pub use ir_tree::{IrTree, KeywordSummary, PoiEntry};
pub use photo_grid::PhotoGrid;
pub use poi_index::{PoiCell, PoiIndex};
pub use view::IndexView;
// Re-exported so downstream crates can resume the [`ops_hasher`] state
// without a direct soi-snapshot dependency.
pub use snapshot::{
    build_bundle, dataset_fingerprint, fold_dataset, ops_fingerprint, ops_hasher, read_bundle,
    read_bundle_with_fingerprint, read_ingest_meta, write_bundle, write_bundle_ingested,
    BundleParams, CacheMode, CacheOutcome, IndexBundle, IndexCache, IngestMeta, IngestedLoad,
    ReadOutcome,
};
pub use soi_snapshot::Fnv64;
