//! Snapshot persistence for the offline index structures.
//!
//! Every structure this crate builds offline — [`PoiIndex`], [`PhotoGrid`],
//! [`IrTree`], and cached [`EpsilonMaps`] — (plus the per-street
//! [`DiversificationIndex`], persistable standalone) can be encoded into a
//! [`soi_snapshot`] container and decoded back without re-running the
//! build. Decoding reproduces the build path's exact map-population order
//! (same `reserve` calls, ascending-key insertion), so a loaded index
//! answers every query byte-identically to a freshly built one.
//!
//! The module has three layers:
//!
//! 1. **Per-structure codecs** (`write_*` / `read_*`): flatten a structure
//!    into typed sections under a caller-chosen prefix and re-validate every
//!    invariant on the way back in (CSR shapes, ascending ids, id bounds
//!    against the dataset), so a corrupt or hand-edited file is a
//!    categorized [`Data`](soi_common::ErrorCategory::Data) error, never a
//!    panic.
//! 2. **The bundle** ([`IndexBundle`], [`build_bundle`], [`write_bundle`],
//!    [`read_bundle`]): the full set of structures one dataset needs,
//!    stamped with the dataset content fingerprint and the build parameters
//!    so staleness is detected before any decode work.
//! 3. **The cache** ([`IndexCache`]): a directory of bundle snapshots keyed
//!    by `(dataset fingerprint, format version, params)`. `load_or_build`
//!    prefers the snapshot, transparently rebuilds on a miss or stale key,
//!    and — in [`CacheMode::Lenient`] — falls back to a rebuild when the
//!    snapshot is corrupt instead of failing the command.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use soi_common::{
    effective_threads, par_chunk_map, CellId, FxHashMap, KeywordId, PhotoId, PoiId, Result,
    SegmentId, SoiError,
};
use soi_data::Dataset;
use soi_geo::{Grid, Point};
use soi_snapshot::{corrupt, Fnv64, Snapshot, SnapshotWriter, FORMAT_VERSION};
use soi_text::snapshot::validate_csr;
use soi_text::{FlatPostings, InvertedIndex, KeywordSet};

use crate::div_index::{DivCell, DiversificationIndex};
use crate::epsilon::EpsilonMaps;
use crate::ir_tree::{IrTree, KeywordSummary, PoiEntry};
use crate::photo_grid::PhotoGrid;
use crate::poi_index::{PoiCell, PoiIndex};

// ---------------------------------------------------------------------------
// Shared decode helpers
// ---------------------------------------------------------------------------

/// Validates a CSR offset array (`rows + 1` entries, starting at 0,
/// non-decreasing, ending at `total`) without materialising the ranges.
/// After this check, `(off[i] as usize, off[i + 1] as usize)` is a valid
/// in-bounds range for every row `i`.
fn check_csr_offsets(
    off: &[u64],
    rows: usize,
    total: usize,
    what: &str,
) -> std::result::Result<(), String> {
    if off.len() != rows + 1 {
        return Err(format!(
            "{what}: expected {} offsets, found {}",
            rows + 1,
            off.len()
        ));
    }
    if off.first() != Some(&0) {
        return Err(format!("{what}: offsets must start at 0"));
    }
    if off.last() != Some(&(total as u64)) {
        return Err(format!("{what}: offsets must end at {total}"));
    }
    if let Some(w) = off.windows(2).find(|w| w[0] > w[1]) {
        return Err(format!("{what}: offsets decrease at {}", w[1]));
    }
    Ok(())
}

/// Validates a CSR offset array (see [`check_csr_offsets`]) and returns
/// the per-row ranges.
fn csr_ranges(
    off: &[u64],
    rows: usize,
    total: usize,
    what: &str,
) -> std::result::Result<Vec<(usize, usize)>, String> {
    check_csr_offsets(off, rows, total, what)?;
    Ok(off
        .windows(2)
        .map(|w| (w[0] as usize, w[1] as usize))
        .collect())
}

/// Checks that every id in `ids` is below `bound`.
fn check_ids_below(ids: &[u32], bound: usize, what: &str) -> std::result::Result<(), String> {
    match ids.iter().find(|&&id| id as usize >= bound) {
        Some(&id) => Err(format!("{what}: id {id} out of bounds (limit {bound})")),
        None => Ok(()),
    }
}

/// Checks that `ids` is strictly ascending.
fn check_strictly_ascending(ids: &[u32], what: &str) -> std::result::Result<(), String> {
    match ids.windows(2).find(|w| w[0] >= w[1]) {
        Some(w) => Err(format!("{what}: ids not strictly ascending at {}", w[1])),
        None => Ok(()),
    }
}

/// Decodes a persisted [`KeywordSet`] (stored in canonical iteration order,
/// so strictly ascending). `None` means the run is out of order — corrupt.
/// Small sets build straight into inline storage, so the bulk decode paths
/// (IR-tree items in particular) stay off the allocator.
fn decode_keyword_set(raw: &[u32]) -> Option<KeywordSet> {
    KeywordSet::from_ascending_iter(raw.iter().map(|&k| KeywordId(k)))
}

/// Flattens fallible per-chunk decode results, moving rather than copying
/// when there is a single chunk (the common case on few-core machines,
/// where the re-copy would add tens of milliseconds per million items).
fn concat_parts<T>(
    mut parts: Vec<std::result::Result<Vec<T>, String>>,
    total: usize,
) -> std::result::Result<Vec<T>, String> {
    if parts.len() == 1 {
        if let Some(only) = parts.pop() {
            return only;
        }
    }
    let mut out: Vec<T> = Vec::with_capacity(total);
    for part in parts {
        out.extend(part?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Grid codec
// ---------------------------------------------------------------------------

/// Writes `grid` as two sections: `{p}.gf` (`f64` origin + cell size) and
/// `{p}.gn` (`u32` cell counts).
fn write_grid(writer: &mut SnapshotWriter, prefix: &str, grid: &Grid) -> Result<()> {
    writer.f64s(
        &format!("{prefix}.gf"),
        &[grid.origin().x, grid.origin().y, grid.cell_size()],
    )?;
    writer.u32s(&format!("{prefix}.gn"), &[grid.nx(), grid.ny()])?;
    Ok(())
}

/// Reads the grid stored under `prefix`, pre-validating every
/// [`Grid::new`] precondition so the constructor cannot panic on
/// corrupt input.
fn read_grid(snapshot: &Snapshot, prefix: &str) -> Result<Grid> {
    let gf = snapshot.f64s(&format!("{prefix}.gf"))?;
    let gn = snapshot.u32s(&format!("{prefix}.gn"))?;
    let bad = |msg: String| corrupt(snapshot.path(), msg);
    let &[ox, oy, cell_size] = gf else {
        return Err(bad(format!("`{prefix}.gf` must hold exactly 3 values")));
    };
    let &[nx, ny] = gn else {
        return Err(bad(format!("`{prefix}.gn` must hold exactly 2 values")));
    };
    if !(cell_size > 0.0 && cell_size.is_finite()) {
        return Err(bad(format!("`{prefix}`: cell size {cell_size} invalid")));
    }
    if !(ox.is_finite() && oy.is_finite()) {
        return Err(bad(format!("`{prefix}`: non-finite grid origin")));
    }
    if nx == 0 || ny == 0 {
        return Err(bad(format!("`{prefix}`: zero-cell grid axis")));
    }
    if (nx as u64) * (ny as u64) > u32::MAX as u64 {
        return Err(bad(format!("`{prefix}`: grid {nx}x{ny} exceeds CellId")));
    }
    Ok(Grid::new(Point::new(ox, oy), cell_size, nx, ny))
}

// ---------------------------------------------------------------------------
// PoiIndex codec
// ---------------------------------------------------------------------------

/// Writes the full [`PoiIndex`] under `prefix`.
///
/// # Errors
/// Writer-side section errors.
pub fn write_poi_index(writer: &mut SnapshotWriter, prefix: &str, index: &PoiIndex) -> Result<()> {
    let (grid, cells, global, segments_by_len, raster) = index.snapshot_parts();
    write_grid(writer, prefix, grid)?;

    // Occupied cells, ascending: ids, weights, POI CSR, and the per-cell
    // flat postings flattened into one CSR-of-CSR (run directory + docs).
    let mut cell_ids: Vec<CellId> = cells.keys().copied().collect();
    cell_ids.sort_unstable();
    let n = cell_ids.len();
    let mut ids = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    let mut poff: Vec<u64> = Vec::with_capacity(n + 1);
    let mut pois: Vec<u32> = Vec::new();
    let mut ioff: Vec<u64> = Vec::with_capacity(n + 1);
    let mut irunk: Vec<u32> = Vec::new();
    let mut irune: Vec<u32> = Vec::new();
    let mut idoff: Vec<u64> = Vec::with_capacity(n + 1);
    let mut idocs: Vec<u32> = Vec::new();
    poff.push(0);
    ioff.push(0);
    idoff.push(0);
    for cid in &cell_ids {
        let cell = &cells[cid];
        ids.push(cid.raw());
        weights.push(cell.total_weight);
        pois.extend(cell.pois.iter().map(|p| p.raw()));
        poff.push(pois.len() as u64);
        for &(k, e) in cell.inverted.raw_runs() {
            irunk.push(k.raw());
            irune.push(e);
        }
        ioff.push(irunk.len() as u64);
        idocs.extend(cell.inverted.raw_docs().iter().map(|d| d.raw()));
        idoff.push(idocs.len() as u64);
    }
    writer.u32s(&format!("{prefix}.cells"), &ids)?;
    writer.f64s(&format!("{prefix}.cw"), &weights)?;
    writer.u64s(&format!("{prefix}.poff"), &poff)?;
    writer.u32s(&format!("{prefix}.pois"), &pois)?;
    writer.u64s(&format!("{prefix}.ioff"), &ioff)?;
    writer.u32s(&format!("{prefix}.irunk"), &irunk)?;
    writer.u32s(&format!("{prefix}.irune"), &irune)?;
    writer.u64s(&format!("{prefix}.idoff"), &idoff)?;
    writer.u32s(&format!("{prefix}.idocs"), &idocs)?;

    // Global inverted index: keywords ascending, each with its
    // (cell, weight) list verbatim (already ordered weight-desc).
    let mut kws: Vec<KeywordId> = global.keys().copied().collect();
    kws.sort_unstable();
    let mut gkw = Vec::with_capacity(kws.len());
    let mut goff: Vec<u64> = Vec::with_capacity(kws.len() + 1);
    let mut gcell: Vec<u32> = Vec::new();
    let mut gwt: Vec<f64> = Vec::new();
    goff.push(0);
    for k in &kws {
        gkw.push(k.raw());
        for &(c, w) in &global[k] {
            gcell.push(c.raw());
            gwt.push(w);
        }
        goff.push(gcell.len() as u64);
    }
    writer.u32s(&format!("{prefix}.gkw"), &gkw)?;
    writer.u64s(&format!("{prefix}.goff"), &goff)?;
    writer.u32s(&format!("{prefix}.gcell"), &gcell)?;
    writer.f64s(&format!("{prefix}.gwt"), &gwt)?;

    // Length-sorted segment list.
    let slen: Vec<u32> = segments_by_len.iter().map(|s| s.raw()).collect();
    writer.u32s(&format!("{prefix}.slen"), &slen)?;

    // Raster cell→segments map: cells ascending, segment CSR.
    let mut rcells: Vec<CellId> = raster.keys().copied().collect();
    rcells.sort_unstable();
    let mut rcell = Vec::with_capacity(rcells.len());
    let mut roff: Vec<u64> = Vec::with_capacity(rcells.len() + 1);
    let mut rseg: Vec<u32> = Vec::new();
    roff.push(0);
    for c in &rcells {
        rcell.push(c.raw());
        rseg.extend(raster[c].iter().map(|s| s.raw()));
        roff.push(rseg.len() as u64);
    }
    writer.u32s(&format!("{prefix}.rcell"), &rcell)?;
    writer.u64s(&format!("{prefix}.roff"), &roff)?;
    writer.u32s(&format!("{prefix}.rseg"), &rseg)?;
    Ok(())
}

/// Reads a [`PoiIndex`] stored under `prefix`, validating ids against the
/// dataset bounds (`num_pois` POIs, `num_segments` segments). Decoding is
/// chunk-parallel over `threads` workers (`0` = resolve automatically) and
/// produces the identical index for every thread count.
///
/// # Errors
/// Missing sections, violated invariants, or out-of-bounds ids
/// (`Data` category).
pub fn read_poi_index(
    snapshot: &Snapshot,
    prefix: &str,
    num_pois: usize,
    num_segments: usize,
    threads: usize,
) -> Result<PoiIndex> {
    let threads = effective_threads((threads > 0).then_some(threads));
    let grid = read_grid(snapshot, prefix)?;
    let bad = |msg: String| corrupt(snapshot.path(), msg);

    let ids = snapshot.u32s(&format!("{prefix}.cells"))?;
    let weights = snapshot.f64s(&format!("{prefix}.cw"))?;
    let poff = snapshot.u64s(&format!("{prefix}.poff"))?;
    let pois = snapshot.u32s(&format!("{prefix}.pois"))?;
    let ioff = snapshot.u64s(&format!("{prefix}.ioff"))?;
    let irunk = snapshot.u32s(&format!("{prefix}.irunk"))?;
    let irune = snapshot.u32s(&format!("{prefix}.irune"))?;
    let idoff = snapshot.u64s(&format!("{prefix}.idoff"))?;
    let idocs = snapshot.u32s(&format!("{prefix}.idocs"))?;

    let n = ids.len();
    check_strictly_ascending(ids, "poi cells").map_err(bad)?;
    check_ids_below(ids, grid.num_cells(), "poi cells").map_err(bad)?;
    check_ids_below(pois, num_pois, "poi cell members").map_err(bad)?;
    check_ids_below(idocs, num_pois, "poi postings docs").map_err(bad)?;
    if weights.len() != n {
        return Err(bad(format!(
            "poi cells: {n} ids but {} weights",
            weights.len()
        )));
    }
    if irune.len() != irunk.len() {
        return Err(bad(format!(
            "poi postings: {} run keywords but {} run ends",
            irunk.len(),
            irune.len()
        )));
    }

    let pranges = csr_ranges(poff, n, pois.len(), "poi cell members").map_err(bad)?;
    let iranges = csr_ranges(ioff, n, irunk.len(), "poi postings runs").map_err(bad)?;
    let dranges = csr_ranges(idoff, n, idocs.len(), "poi postings docs").map_err(bad)?;

    // Per-cell decode is embarrassingly parallel; the map is then filled
    // serially in ascending cell order, matching the build path's insertion
    // order exactly.
    let decoded = par_chunk_map(&pranges, threads, |start, chunk| {
        let mut part: Vec<(CellId, PoiCell)> = Vec::with_capacity(chunk.len());
        for (j, &(ps, pe)) in chunk.iter().enumerate() {
            let i = start + j;
            let (is, ie) = iranges[i];
            let (ds, de) = dranges[i];
            let cell_pois: Vec<PoiId> = pois[ps..pe].iter().map(|&p| PoiId(p)).collect();
            let runs: Vec<(KeywordId, u32)> = irunk[is..ie]
                .iter()
                .zip(&irune[is..ie])
                .map(|(&k, &e)| (KeywordId(k), e))
                .collect();
            let docs_raw = &idocs[ds..de];
            validate_csr(runs.as_slice(), docs_raw)
                .map_err(|msg| format!("poi cell {}: {msg}", ids[i]))?;
            let docs: Vec<PoiId> = docs_raw.iter().map(|&d| PoiId(d)).collect();
            part.push((
                CellId(ids[i]),
                PoiCell {
                    pois: cell_pois,
                    total_weight: weights[i],
                    inverted: FlatPostings::from_raw_parts(pe - ps, runs, docs),
                },
            ));
        }
        Ok(part)
    });
    let mut cells: FxHashMap<CellId, PoiCell> = FxHashMap::default();
    cells.reserve(n);
    for part in decoded {
        let part: Vec<(CellId, PoiCell)> = part.map_err(bad)?;
        for (id, cell) in part {
            cells.insert(id, cell);
        }
    }

    let gkw = snapshot.u32s(&format!("{prefix}.gkw"))?;
    let goff = snapshot.u64s(&format!("{prefix}.goff"))?;
    let gcell = snapshot.u32s(&format!("{prefix}.gcell"))?;
    let gwt = snapshot.f64s(&format!("{prefix}.gwt"))?;
    check_strictly_ascending(gkw, "global keywords").map_err(bad)?;
    check_ids_below(gcell, grid.num_cells(), "global cells").map_err(bad)?;
    if gwt.len() != gcell.len() {
        return Err(bad(format!(
            "global index: {} cells but {} weights",
            gcell.len(),
            gwt.len()
        )));
    }
    let granges = csr_ranges(goff, gkw.len(), gcell.len(), "global index").map_err(bad)?;
    let mut global: FxHashMap<KeywordId, Vec<(CellId, f64)>> = FxHashMap::default();
    for (i, &k) in gkw.iter().enumerate() {
        let (s, e) = granges[i];
        global.insert(
            KeywordId(k),
            gcell[s..e]
                .iter()
                .zip(&gwt[s..e])
                .map(|(&c, &w)| (CellId(c), w))
                .collect(),
        );
    }

    let slen = snapshot.u32s(&format!("{prefix}.slen"))?;
    if slen.len() != num_segments {
        return Err(bad(format!(
            "segment length list holds {} ids for {num_segments} segments",
            slen.len()
        )));
    }
    check_ids_below(slen, num_segments, "segment length list").map_err(bad)?;
    let segments_by_len: Vec<SegmentId> = slen.iter().map(|&s| SegmentId(s)).collect();

    let rcell = snapshot.u32s(&format!("{prefix}.rcell"))?;
    let roff = snapshot.u64s(&format!("{prefix}.roff"))?;
    let rseg = snapshot.u32s(&format!("{prefix}.rseg"))?;
    check_strictly_ascending(rcell, "raster cells").map_err(bad)?;
    check_ids_below(rcell, grid.num_cells(), "raster cells").map_err(bad)?;
    check_ids_below(rseg, num_segments, "raster segments").map_err(bad)?;
    let rranges = csr_ranges(roff, rcell.len(), rseg.len(), "raster map").map_err(bad)?;
    let rparts = par_chunk_map(&rranges, threads, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(j, &(s, e))| {
                let segs: Vec<SegmentId> = rseg[s..e].iter().map(|&v| SegmentId(v)).collect();
                (CellId(rcell[start + j]), segs)
            })
            .collect::<Vec<_>>()
    });
    let mut raster: FxHashMap<CellId, Vec<SegmentId>> = FxHashMap::default();
    for part in rparts {
        for (c, segs) in part {
            raster.insert(c, segs);
        }
    }

    Ok(PoiIndex::from_snapshot_parts(
        grid,
        cells,
        global,
        segments_by_len,
        raster,
    ))
}

// ---------------------------------------------------------------------------
// PhotoGrid codec
// ---------------------------------------------------------------------------

/// Writes the [`PhotoGrid`] under `prefix`.
///
/// # Errors
/// Writer-side section errors.
pub fn write_photo_grid(writer: &mut SnapshotWriter, prefix: &str, grid: &PhotoGrid) -> Result<()> {
    let (g, cells) = grid.snapshot_parts();
    write_grid(writer, prefix, g)?;
    let mut cell_ids: Vec<CellId> = cells.keys().copied().collect();
    cell_ids.sort_unstable();
    let mut ids = Vec::with_capacity(cell_ids.len());
    let mut poff: Vec<u64> = Vec::with_capacity(cell_ids.len() + 1);
    let mut photos: Vec<u32> = Vec::new();
    poff.push(0);
    for c in &cell_ids {
        ids.push(c.raw());
        photos.extend(cells[c].iter().map(|p| p.raw()));
        poff.push(photos.len() as u64);
    }
    writer.u32s(&format!("{prefix}.cells"), &ids)?;
    writer.u64s(&format!("{prefix}.poff"), &poff)?;
    writer.u32s(&format!("{prefix}.ph"), &photos)?;
    Ok(())
}

/// Reads a [`PhotoGrid`] stored under `prefix` (`num_photos` bounds the
/// photo ids). Decoding is chunk-parallel over `threads` workers (`0` =
/// resolve automatically).
///
/// # Errors
/// Missing sections or violated invariants (`Data` category).
pub fn read_photo_grid(
    snapshot: &Snapshot,
    prefix: &str,
    num_photos: usize,
    threads: usize,
) -> Result<PhotoGrid> {
    let threads = effective_threads((threads > 0).then_some(threads));
    let grid = read_grid(snapshot, prefix)?;
    let bad = |msg: String| corrupt(snapshot.path(), msg);
    let ids = snapshot.u32s(&format!("{prefix}.cells"))?;
    let poff = snapshot.u64s(&format!("{prefix}.poff"))?;
    let photos = snapshot.u32s(&format!("{prefix}.ph"))?;
    check_strictly_ascending(ids, "photo-grid cells").map_err(bad)?;
    check_ids_below(ids, grid.num_cells(), "photo-grid cells").map_err(bad)?;
    check_ids_below(photos, num_photos, "photo-grid members").map_err(bad)?;
    let ranges = csr_ranges(poff, ids.len(), photos.len(), "photo-grid members").map_err(bad)?;
    let parts = par_chunk_map(&ranges, threads, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(j, &(s, e))| {
                let members: Vec<PhotoId> = photos[s..e].iter().map(|&p| PhotoId(p)).collect();
                (CellId(ids[start + j]), members)
            })
            .collect::<Vec<_>>()
    });
    let mut cells: FxHashMap<CellId, Vec<PhotoId>> = FxHashMap::default();
    for part in parts {
        for (c, members) in part {
            cells.insert(c, members);
        }
    }
    Ok(PhotoGrid::from_snapshot_parts(grid, cells))
}

// ---------------------------------------------------------------------------
// DiversificationIndex codec
// ---------------------------------------------------------------------------

/// Writes the [`DiversificationIndex`] under `prefix`.
///
/// # Errors
/// Writer-side section errors.
pub fn write_div_index(
    writer: &mut SnapshotWriter,
    prefix: &str,
    index: &DiversificationIndex,
) -> Result<()> {
    let (grid, cells, occupied, num_photos) = index.snapshot_parts();
    write_grid(writer, prefix, grid)?;
    writer.u64s(&format!("{prefix}.meta"), &[num_photos as u64])?;
    let n = occupied.len();
    let mut ids = Vec::with_capacity(n);
    let mut poff: Vec<u64> = Vec::with_capacity(n + 1);
    let mut photos: Vec<u32> = Vec::new();
    let mut pmin = Vec::with_capacity(n);
    let mut pmax = Vec::with_capacity(n);
    let mut ivoff: Vec<u64> = Vec::with_capacity(n + 1);
    let mut ivkw: Vec<u32> = Vec::new();
    let mut ivph: Vec<u32> = Vec::new();
    poff.push(0);
    ivoff.push(0);
    for c in occupied {
        let cell = index.cell(*c).ok_or_else(|| {
            SoiError::invalid(format!("occupied cell {c} missing from the index"))
        })?;
        ids.push(c.raw());
        photos.extend(cell.photos.iter().map(|p| p.raw()));
        poff.push(photos.len() as u64);
        pmin.push(cell.psi_min as u32);
        pmax.push(cell.psi_max as u32);
        // (keyword, photo) pairs, ascending — exactly what
        // `InvertedIndex::from_sorted_pairs` consumes on the way back.
        let mut lists: Vec<(KeywordId, &[PhotoId])> = cell.inverted.iter().collect();
        lists.sort_unstable_by_key(|&(k, _)| k);
        for (k, list) in lists {
            for p in list {
                ivkw.push(k.raw());
                ivph.push(p.raw());
            }
        }
        ivoff.push(ivkw.len() as u64);
    }
    let _ = cells;
    writer.u32s(&format!("{prefix}.cells"), &ids)?;
    writer.u64s(&format!("{prefix}.poff"), &poff)?;
    writer.u32s(&format!("{prefix}.ph"), &photos)?;
    writer.u32s(&format!("{prefix}.pmin"), &pmin)?;
    writer.u32s(&format!("{prefix}.pmax"), &pmax)?;
    writer.u64s(&format!("{prefix}.ivoff"), &ivoff)?;
    writer.u32s(&format!("{prefix}.ivkw"), &ivkw)?;
    writer.u32s(&format!("{prefix}.ivph"), &ivph)?;
    Ok(())
}

/// Reads a [`DiversificationIndex`] stored under `prefix` (`num_photos`
/// bounds the photo ids).
///
/// # Errors
/// Missing sections or violated invariants (`Data` category).
pub fn read_div_index(
    snapshot: &Snapshot,
    prefix: &str,
    num_photos: usize,
) -> Result<DiversificationIndex> {
    let grid = read_grid(snapshot, prefix)?;
    let bad = |msg: String| corrupt(snapshot.path(), msg);
    let meta = snapshot.u64s(&format!("{prefix}.meta"))?;
    let &[total_photos] = meta else {
        return Err(bad(format!("`{prefix}.meta` must hold exactly one value")));
    };
    let ids = snapshot.u32s(&format!("{prefix}.cells"))?;
    let poff = snapshot.u64s(&format!("{prefix}.poff"))?;
    let photos = snapshot.u32s(&format!("{prefix}.ph"))?;
    let pmin = snapshot.u32s(&format!("{prefix}.pmin"))?;
    let pmax = snapshot.u32s(&format!("{prefix}.pmax"))?;
    let ivoff = snapshot.u64s(&format!("{prefix}.ivoff"))?;
    let ivkw = snapshot.u32s(&format!("{prefix}.ivkw"))?;
    let ivph = snapshot.u32s(&format!("{prefix}.ivph"))?;

    let n = ids.len();
    check_strictly_ascending(ids, "div cells").map_err(bad)?;
    check_ids_below(ids, grid.num_cells(), "div cells").map_err(bad)?;
    check_ids_below(photos, num_photos, "div cell members").map_err(bad)?;
    check_ids_below(ivph, num_photos, "div postings").map_err(bad)?;
    if pmin.len() != n || pmax.len() != n {
        return Err(bad(format!(
            "div cells: {n} ids but {}/{} psi bounds",
            pmin.len(),
            pmax.len()
        )));
    }
    if ivph.len() != ivkw.len() {
        return Err(bad(format!(
            "div postings: {} keywords but {} photos",
            ivkw.len(),
            ivph.len()
        )));
    }
    let pranges = csr_ranges(poff, n, photos.len(), "div cell members").map_err(bad)?;
    let ivranges = csr_ranges(ivoff, n, ivkw.len(), "div postings").map_err(bad)?;

    let mut cells: FxHashMap<CellId, DivCell> = FxHashMap::default();
    cells.reserve(n);
    let mut occupied: Vec<CellId> = Vec::with_capacity(n);
    for i in 0..n {
        let (ps, pe) = pranges[i];
        let (is, ie) = ivranges[i];
        if ps == pe {
            return Err(bad(format!("div cell {} has no photos", ids[i])));
        }
        check_strictly_ascending(&photos[ps..pe], "div cell members").map_err(bad)?;
        let pairs: Vec<(KeywordId, PhotoId)> = ivkw[is..ie]
            .iter()
            .zip(&ivph[is..ie])
            .map(|(&k, &p)| (KeywordId(k), PhotoId(p)))
            .collect();
        if pairs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(bad(format!(
                "div cell {}: postings pairs not strictly ascending",
                ids[i]
            )));
        }
        let id = CellId(ids[i]);
        occupied.push(id);
        cells.insert(
            id,
            DivCell {
                photos: photos[ps..pe].iter().map(|&p| PhotoId(p)).collect(),
                inverted: InvertedIndex::from_sorted_pairs(pe - ps, &pairs),
                keywords: KeywordSet::from_ids(pairs.iter().map(|&(k, _)| k)),
                psi_min: pmin[i] as usize,
                psi_max: pmax[i] as usize,
            },
        );
    }
    Ok(DiversificationIndex::from_snapshot_parts(
        grid,
        cells,
        occupied,
        total_photos as usize,
    ))
}

// ---------------------------------------------------------------------------
// IrTree codec
// ---------------------------------------------------------------------------

/// Writes the [`IrTree`] under `prefix` (tree skeleton via
/// [`soi_rtree::snapshot`], items and node summaries as keyword CSRs).
///
/// # Errors
/// Writer-side section errors.
pub fn write_ir_tree(writer: &mut SnapshotWriter, prefix: &str, tree: &IrTree) -> Result<()> {
    let inner = tree.tree();
    soi_rtree::snapshot::write_structure(writer, &format!("{prefix}.t"), inner)?;
    let items = inner.items();
    let mut ids = Vec::with_capacity(items.len());
    let mut pos = Vec::with_capacity(2 * items.len());
    let mut koff: Vec<u64> = Vec::with_capacity(items.len() + 1);
    let mut kids: Vec<u32> = Vec::new();
    koff.push(0);
    for e in items {
        ids.push(e.id.raw());
        pos.extend_from_slice(&[e.pos.x, e.pos.y]);
        kids.extend(e.keywords.iter().map(|k| k.raw()));
        koff.push(kids.len() as u64);
    }
    writer.u32s(&format!("{prefix}.id"), &ids)?;
    writer.f64s(&format!("{prefix}.pos"), &pos)?;
    writer.u64s(&format!("{prefix}.koff"), &koff)?;
    writer.u32s(&format!("{prefix}.kids"), &kids)?;

    let mut soff: Vec<u64> = Vec::with_capacity(inner.num_nodes() + 1);
    let mut skids: Vec<u32> = Vec::new();
    soff.push(0);
    for node in inner.raw_nodes() {
        skids.extend(node.summary.keywords.iter().map(|k| k.raw()));
        soff.push(skids.len() as u64);
    }
    writer.u64s(&format!("{prefix}.soff"), &soff)?;
    writer.u32s(&format!("{prefix}.skids"), &skids)?;
    Ok(())
}

/// Reads an [`IrTree`] stored under `prefix` (`num_pois` bounds the POI
/// ids). Item decoding is chunk-parallel over `threads` workers (`0` =
/// resolve automatically).
///
/// # Errors
/// Missing sections, violated invariants, or a structurally invalid tree
/// skeleton (`Data` category).
pub fn read_ir_tree(
    snapshot: &Snapshot,
    prefix: &str,
    num_pois: usize,
    threads: usize,
) -> Result<IrTree> {
    let threads = effective_threads((threads > 0).then_some(threads));

    let structure = soi_rtree::snapshot::read_structure(snapshot, &format!("{prefix}.t"))?;
    let bad = |msg: String| corrupt(snapshot.path(), msg);
    let ids = snapshot.u32s(&format!("{prefix}.id"))?;
    let pos = snapshot.f64s(&format!("{prefix}.pos"))?;
    let koff = snapshot.u64s(&format!("{prefix}.koff"))?;
    let kids = snapshot.u32s(&format!("{prefix}.kids"))?;
    let soff = snapshot.u64s(&format!("{prefix}.soff"))?;
    let skids = snapshot.u32s(&format!("{prefix}.skids"))?;

    check_ids_below(ids, num_pois, "ir-tree items").map_err(bad)?;
    if pos.len() != 2 * ids.len() {
        return Err(bad(format!(
            "ir-tree: {} items but {} position values",
            ids.len(),
            pos.len()
        )));
    }

    check_csr_offsets(koff, ids.len(), kids.len(), "ir-tree keywords").map_err(bad)?;
    let iparts = par_chunk_map(ids, threads, |start, chunk| {
        let mut part: Vec<PoiEntry> = Vec::with_capacity(chunk.len());
        for (j, &raw_id) in chunk.iter().enumerate() {
            let i = start + j;
            let (s, e) = (koff[i] as usize, koff[i + 1] as usize);
            let Some(keywords) = decode_keyword_set(&kids[s..e]) else {
                return Err(format!("ir-tree item {i}: keywords not strictly ascending"));
            };
            part.push(PoiEntry {
                id: PoiId(raw_id),
                pos: Point::new(pos[2 * i], pos[2 * i + 1]),
                keywords,
            });
        }
        Ok(part)
    });
    let items = concat_parts(iparts, ids.len()).map_err(bad)?;
    let sranges = csr_ranges(
        soff,
        structure.nodes.len(),
        skids.len(),
        "ir-tree summaries",
    )
    .map_err(bad)?;
    let mut summaries: Vec<KeywordSummary> = Vec::with_capacity(sranges.len());
    for (i, &(s, e)) in sranges.iter().enumerate() {
        let Some(keywords) = decode_keyword_set(&skids[s..e]) else {
            return Err(bad(format!(
                "ir-tree summary {i}: keywords not strictly ascending"
            )));
        };
        summaries.push(KeywordSummary { keywords });
    }
    let inner = structure
        .assemble(items, summaries)
        .map_err(|e| e.at_path(snapshot.path()))?;
    Ok(IrTree::from_tree(inner))
}

// ---------------------------------------------------------------------------
// EpsilonMaps codec
// ---------------------------------------------------------------------------

/// Writes the ε-augmented maps under `prefix`.
///
/// # Errors
/// Writer-side section errors.
pub fn write_epsilon_maps(
    writer: &mut SnapshotWriter,
    prefix: &str,
    maps: &EpsilonMaps,
) -> Result<()> {
    let (eps, segment_to_cells, cell_to_segments) = maps.snapshot_parts();
    writer.u64s(
        &format!("{prefix}.meta"),
        &[eps.to_bits(), segment_to_cells.len() as u64],
    )?;
    let mut s2coff: Vec<u64> = Vec::with_capacity(segment_to_cells.len() + 1);
    let mut s2c: Vec<u32> = Vec::new();
    s2coff.push(0);
    for cells in segment_to_cells {
        s2c.extend(cells.iter().map(|c| c.raw()));
        s2coff.push(s2c.len() as u64);
    }
    writer.u64s(&format!("{prefix}.s2coff"), &s2coff)?;
    writer.u32s(&format!("{prefix}.s2c"), &s2c)?;

    let mut keys: Vec<CellId> = cell_to_segments.keys().copied().collect();
    keys.sort_unstable();
    let mut c2sc = Vec::with_capacity(keys.len());
    let mut c2soff: Vec<u64> = Vec::with_capacity(keys.len() + 1);
    let mut c2ss: Vec<u32> = Vec::new();
    c2soff.push(0);
    for c in &keys {
        c2sc.push(c.raw());
        c2ss.extend(cell_to_segments[c].iter().map(|s| s.raw()));
        c2soff.push(c2ss.len() as u64);
    }
    writer.u32s(&format!("{prefix}.c2sc"), &c2sc)?;
    writer.u64s(&format!("{prefix}.c2soff"), &c2soff)?;
    writer.u32s(&format!("{prefix}.c2ss"), &c2ss)?;
    Ok(())
}

/// Reads ε-augmented maps stored under `prefix` (`num_segments` must match
/// the network the maps will serve). Decoding is chunk-parallel over
/// `threads` workers (`0` = resolve automatically).
///
/// # Errors
/// Missing sections or violated invariants (`Data` category).
pub fn read_epsilon_maps(
    snapshot: &Snapshot,
    prefix: &str,
    num_segments: usize,
    threads: usize,
) -> Result<EpsilonMaps> {
    let threads = effective_threads((threads > 0).then_some(threads));
    let bad = |msg: String| corrupt(snapshot.path(), msg);
    let meta = snapshot.u64s(&format!("{prefix}.meta"))?;
    let &[eps_bits, stored_segments] = meta else {
        return Err(bad(format!("`{prefix}.meta` must hold exactly 2 values")));
    };
    let eps = f64::from_bits(eps_bits);
    if !(eps >= 0.0 && eps.is_finite()) {
        return Err(bad(format!("eps-map epsilon {eps} invalid")));
    }
    if stored_segments as usize != num_segments {
        return Err(bad(format!(
            "eps-maps cover {stored_segments} segments, network has {num_segments}"
        )));
    }
    let s2coff = snapshot.u64s(&format!("{prefix}.s2coff"))?;
    let s2c = snapshot.u32s(&format!("{prefix}.s2c"))?;
    let sranges = csr_ranges(s2coff, num_segments, s2c.len(), "eps segment map").map_err(bad)?;
    let sparts = par_chunk_map(&sranges, threads, |_, chunk| {
        chunk
            .iter()
            .map(|&(s, e)| {
                s2c[s..e]
                    .iter()
                    .map(|&c| CellId(c))
                    .collect::<Vec<CellId>>()
            })
            .collect::<Vec<_>>()
    });
    let mut segment_to_cells: Vec<Vec<CellId>> = Vec::with_capacity(num_segments);
    for part in sparts {
        segment_to_cells.extend(part);
    }

    let c2sc = snapshot.u32s(&format!("{prefix}.c2sc"))?;
    let c2soff = snapshot.u64s(&format!("{prefix}.c2soff"))?;
    let c2ss = snapshot.u32s(&format!("{prefix}.c2ss"))?;
    check_strictly_ascending(c2sc, "eps cell map").map_err(bad)?;
    check_ids_below(c2ss, num_segments, "eps cell segments").map_err(bad)?;
    let cranges = csr_ranges(c2soff, c2sc.len(), c2ss.len(), "eps cell map").map_err(bad)?;
    let cparts = par_chunk_map(&cranges, threads, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(j, &(s, e))| {
                let segs: Vec<SegmentId> = c2ss[s..e].iter().map(|&v| SegmentId(v)).collect();
                (CellId(c2sc[start + j]), segs)
            })
            .collect::<Vec<_>>()
    });
    let mut cell_to_segments: FxHashMap<CellId, Vec<SegmentId>> = FxHashMap::default();
    for part in cparts {
        for (c, segs) in part {
            cell_to_segments.insert(c, segs);
        }
    }
    Ok(EpsilonMaps::from_snapshot_parts(
        eps,
        segment_to_cells,
        cell_to_segments,
    ))
}

// ---------------------------------------------------------------------------
// Dataset fingerprint
// ---------------------------------------------------------------------------

/// Four independent FNV lanes items are striped over by index, folded into
/// `out` at the end. The xor-multiply chain is latency-bound, so hashing
/// millions of items through one state serialises on multiply latency;
/// four states let consecutive items overlap. Striping by index keeps the
/// result order-sensitive and deterministic.
fn fingerprint_striped<T>(
    out: &mut Fnv64,
    items: impl Iterator<Item = T>,
    fold: impl Fn(&mut Fnv64, T),
) {
    let mut lanes = [Fnv64::new(), Fnv64::new(), Fnv64::new(), Fnv64::new()];
    for (i, item) in items.enumerate() {
        fold(&mut lanes[i & 3], item);
    }
    for lane in &lanes {
        out.write_u64(lane.finish());
    }
}

/// A content hash over everything the index builds consume: the network
/// (nodes, segments, streets), the vocabulary, the POIs, and the photos.
/// Any change to the dataset changes the fingerprint, which invalidates
/// every snapshot keyed on it.
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&dataset.name);

    let net = &dataset.network;
    h.write_u64(net.num_nodes() as u64);
    fingerprint_striped(&mut h, net.nodes().iter(), |h, node| {
        h.write_f64(node.pos.x);
        h.write_f64(node.pos.y);
    });
    h.write_u64(net.num_segments() as u64);
    fingerprint_striped(&mut h, net.segments().iter(), |h, seg| {
        h.write_u32(seg.street.raw());
        h.write_u32(seg.from.raw());
        h.write_u32(seg.to.raw());
        h.write_f64(seg.geom.a.x);
        h.write_f64(seg.geom.a.y);
        h.write_f64(seg.geom.b.x);
        h.write_f64(seg.geom.b.y);
    });
    h.write_u64(net.num_streets() as u64);
    for street in net.streets() {
        h.write_str(&street.name);
        h.write_u64(street.segments.len() as u64);
        for s in &street.segments {
            h.write_u32(s.raw());
        }
    }

    h.write_u64(dataset.vocab.len() as u64);
    for (_, term) in dataset.vocab.iter() {
        h.write_str(term);
    }

    h.write_u64(dataset.pois.len() as u64);
    fingerprint_striped(&mut h, dataset.pois.iter(), |h, poi| {
        h.write_f64(poi.pos.x);
        h.write_f64(poi.pos.y);
        h.write_f64(poi.weight);
        h.write_u64(poi.keywords.len() as u64);
        for k in poi.keywords.iter() {
            h.write_u32(k.raw());
        }
    });

    h.write_u64(dataset.photos.len() as u64);
    fingerprint_striped(&mut h, dataset.photos.iter(), |h, photo| {
        h.write_f64(photo.pos.x);
        h.write_f64(photo.pos.y);
        h.write_u64(photo.tags.len() as u64);
        for k in photo.tags.iter() {
            h.write_u32(k.raw());
        }
    });
    h.finish()
}

// ---------------------------------------------------------------------------
// Bundle
// ---------------------------------------------------------------------------

/// Parameters that shape an index bundle. Two bundles with equal params
/// over the same dataset are interchangeable; params are stamped into the
/// snapshot and folded into the cache key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BundleParams {
    /// POI-index grid cell size.
    pub poi_cell: f64,
    /// Photo-grid cell size.
    pub pg_cell: f64,
    /// When set, the ε-augmented maps for this ε are persisted in the
    /// snapshot and preloaded into the index's ε-cache on load.
    pub eps: Option<f64>,
    /// Whether the bundle carries the IR-tree.
    pub with_ir: bool,
    /// Worker threads for fresh builds (`0` = automatic). Builds are
    /// deterministic across thread counts, so this does not key the cache.
    pub threads: usize,
}

/// Flag bits stored in the bundle meta section.
const FLAG_WITH_IR: u64 = 1;
const FLAG_HAS_EPS: u64 = 2;

/// The structures one dataset needs at query time.
#[derive(Debug)]
pub struct IndexBundle {
    /// The spatio-textual POI grid index.
    pub poi: PoiIndex,
    /// The dataset-wide photo grid.
    pub photo_grid: PhotoGrid,
    /// The hybrid IR-tree, when requested.
    pub ir: Option<IrTree>,
}

/// Outcome of [`read_bundle`]: either the decoded bundle or a reason the
/// snapshot no longer matches the dataset/params.
#[derive(Debug)]
pub enum ReadOutcome {
    /// The snapshot matched and decoded cleanly.
    Loaded(Box<IndexBundle>),
    /// The snapshot is internally valid but was written for different
    /// dataset content or build parameters.
    Stale(String),
}

/// Builds a fresh bundle from the dataset (no I/O).
pub fn build_bundle(dataset: &Dataset, params: &BundleParams) -> IndexBundle {
    let poi = PoiIndex::build_with_threads(
        &dataset.network,
        &dataset.pois,
        params.poi_cell,
        params.threads,
    );
    let photo_grid = PhotoGrid::build_with_threads(
        &dataset.network,
        &dataset.photos,
        params.pg_cell,
        params.threads,
    );
    let ir = params
        .with_ir
        .then(|| IrTree::build_with_threads(&dataset.pois, params.threads));
    if let Some(eps) = params.eps {
        // Warm the ε-cache so the persisted snapshot carries the maps.
        drop(poi.epsilon_maps(&dataset.network, eps));
    }
    IndexBundle {
        poi,
        photo_grid,
        ir,
    }
}

/// Writes `bundle` to `path`, stamped with the dataset fingerprint and
/// `params`. Returns the file size in bytes.
///
/// # Errors
/// Writer-side section errors or I/O failures.
pub fn write_bundle(
    path: &Path,
    dataset: &Dataset,
    bundle: &IndexBundle,
    params: &BundleParams,
) -> Result<u64> {
    write_bundle_with(path, dataset, bundle, params, None)
}

/// [`write_bundle`] plus an `ingest.meta` section recording which prefix
/// of a delta-ops log is already folded into `dataset` (see [`IngestMeta`]).
/// The `cache.meta` stamp keeps its exact 5-value shape, so these
/// snapshots stay readable by [`read_bundle`].
///
/// # Errors
/// As [`write_bundle`]; additionally rejects an inconsistent `ingest`
/// stamp (non-ascending boundaries, last boundary ≠ applied ops).
pub fn write_bundle_ingested(
    path: &Path,
    dataset: &Dataset,
    bundle: &IndexBundle,
    params: &BundleParams,
    ingest: &IngestMeta,
) -> Result<u64> {
    ingest
        .validate()
        .map_err(|m| SoiError::invalid(format!("ingest meta: {m}")))?;
    write_bundle_with(path, dataset, bundle, params, Some(ingest))
}

fn write_bundle_with(
    path: &Path,
    dataset: &Dataset,
    bundle: &IndexBundle,
    params: &BundleParams,
    ingest: Option<&IngestMeta>,
) -> Result<u64> {
    let _span = soi_obs::trace::span(soi_obs::names::spans::SNAPSHOT_WRITE);
    let start = Instant::now();
    let mut flags = 0u64;
    if bundle.ir.is_some() {
        flags |= FLAG_WITH_IR;
    }
    if params.eps.is_some() {
        flags |= FLAG_HAS_EPS;
    }
    let mut w = SnapshotWriter::new();
    w.u64s(
        "cache.meta",
        &[
            dataset_fingerprint(dataset),
            flags,
            params.poi_cell.to_bits(),
            params.pg_cell.to_bits(),
            params.eps.map_or(0, f64::to_bits),
        ],
    )?;
    if let Some(meta) = ingest {
        let mut vals = Vec::with_capacity(4 + meta.boundaries.len());
        vals.extend([
            meta.epoch,
            meta.applied_ops,
            meta.ops_fp,
            meta.boundaries.len() as u64,
        ]);
        vals.extend_from_slice(&meta.boundaries);
        w.u64s("ingest.meta", &vals)?;
    }
    write_poi_index(&mut w, "poi", &bundle.poi)?;
    write_photo_grid(&mut w, "pg", &bundle.photo_grid)?;
    if let Some(ir) = &bundle.ir {
        write_ir_tree(&mut w, "ir", ir)?;
    }
    if let Some(eps) = params.eps {
        let maps = bundle.poi.epsilon_maps(&dataset.network, eps);
        write_epsilon_maps(&mut w, "eps", &maps)?;
    }
    let bytes = w.write_to(path)?;
    let m = crate::obs::index_metrics();
    m.snapshot_write_seconds.set(start.elapsed().as_secs_f64());
    m.snapshot_bytes.set(bytes as f64);
    m.snapshot_writes.inc();
    Ok(bytes)
}

/// Reads a bundle from `path`, verifying the dataset fingerprint and
/// `params` stamp before decoding any structure.
///
/// # Errors
/// A corrupt or invalid snapshot (`Data` category, file context attached).
/// A *stale* snapshot — valid container, different dataset or params — is
/// not an error: it returns [`ReadOutcome::Stale`].
pub fn read_bundle(path: &Path, dataset: &Dataset, params: &BundleParams) -> Result<ReadOutcome> {
    read_bundle_with_fingerprint(path, dataset, params, dataset_fingerprint(dataset))
}

/// [`read_bundle`] with a precomputed dataset fingerprint.
///
/// Fingerprinting walks every node, segment, POI, and photo; callers that
/// already hold the value — the cache keys snapshot *file names* by the
/// same fingerprint — skip hashing the dataset a second time.
///
/// # Errors
/// As [`read_bundle`].
pub fn read_bundle_with_fingerprint(
    path: &Path,
    dataset: &Dataset,
    params: &BundleParams,
    expected: u64,
) -> Result<ReadOutcome> {
    let _span = soi_obs::trace::span(soi_obs::names::spans::SNAPSHOT_LOAD);
    let start = Instant::now();
    let snapshot = Snapshot::open(path)?;
    let meta = snapshot.u64s("cache.meta")?;
    let &[fingerprint, flags, poi_cell_bits, pg_cell_bits, eps_bits] = meta else {
        return Err(corrupt(
            path,
            format!(
                "`cache.meta` must hold exactly 5 values, found {}",
                meta.len()
            ),
        ));
    };
    if fingerprint != expected {
        return Ok(ReadOutcome::Stale(format!(
            "dataset fingerprint {fingerprint:016x} != expected {expected:016x}"
        )));
    }
    let with_ir = flags & FLAG_WITH_IR != 0;
    let has_eps = flags & FLAG_HAS_EPS != 0;
    if poi_cell_bits != params.poi_cell.to_bits()
        || pg_cell_bits != params.pg_cell.to_bits()
        || with_ir != params.with_ir
        || has_eps != params.eps.is_some()
        || eps_bits != params.eps.map_or(0, f64::to_bits)
    {
        return Ok(ReadOutcome::Stale(
            "snapshot was written with different build parameters".to_string(),
        ));
    }

    let num_pois = dataset.pois.len();
    let num_photos = dataset.photos.len();
    let num_segments = dataset.network.num_segments();
    let threads = params.threads;

    let poi = read_poi_index(&snapshot, "poi", num_pois, num_segments, threads)?;
    let photo_grid = read_photo_grid(&snapshot, "pg", num_photos, threads)?;
    let ir = if with_ir {
        Some(read_ir_tree(&snapshot, "ir", num_pois, threads)?)
    } else {
        None
    };
    if has_eps {
        let maps = read_epsilon_maps(&snapshot, "eps", num_segments, threads)?;
        poi.preload_epsilon_maps(Arc::new(maps));
    }
    let m = crate::obs::index_metrics();
    m.snapshot_load_seconds.set(start.elapsed().as_secs_f64());
    m.snapshot_bytes.set(snapshot.file_len() as f64);
    m.snapshot_loads.inc();
    Ok(ReadOutcome::Loaded(Box::new(IndexBundle {
        poi,
        photo_grid,
        ir,
    })))
}

// ---------------------------------------------------------------------------
// Live ingestion metadata
// ---------------------------------------------------------------------------

/// Provenance of an ingested (folded) bundle: which prefix of the delta
/// ops log is already compacted into the base this snapshot carries, and
/// at which epoch boundaries the folds happened.
///
/// Fold boundaries are semantic, not cosmetic: every fold reassigns dense
/// ids (base survivors first, then added survivors), and delta ops address
/// the id space of the epoch they were accepted in. Replaying a log over
/// the original base reproduces the persisted structures only when the
/// folds happen at exactly the recorded boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestMeta {
    /// The epoch id the persisted base was materialised at.
    pub epoch: u64,
    /// How many leading log lines are folded into the persisted base.
    /// Lines past this point are still pending deltas at restart.
    pub applied_ops: u64,
    /// [`ops_fingerprint`] over the raw log lines `[..applied_ops]`;
    /// detects a rewritten or truncated log before any fold work.
    pub ops_fp: u64,
    /// Ascending fold points within `[..applied_ops]`; when any exist,
    /// the last one equals `applied_ops`.
    pub boundaries: Vec<u64>,
}

impl IngestMeta {
    fn validate(&self) -> std::result::Result<(), String> {
        if let Some(w) = self.boundaries.windows(2).find(|w| w[0] >= w[1]) {
            return Err(format!("fold boundaries not ascending at {}", w[1]));
        }
        match self.boundaries.last() {
            Some(&last) if last != self.applied_ops => Err(format!(
                "last fold boundary {last} != applied ops {}",
                self.applied_ops
            )),
            None if self.applied_ops != 0 => Err(format!(
                "{} applied ops but no fold boundaries",
                self.applied_ops
            )),
            _ => Ok(()),
        }
    }
}

/// FNV-64 hasher state over a delta-ops log prefix: each raw line
/// (trimmed, so trailing-newline differences don't matter, and
/// length-prefixed by `write_str`, so concatenation is unambiguous) in
/// order. Exposed as a resumable state so a live server can extend the
/// fingerprint incrementally at each fold without retaining every
/// applied line.
pub fn ops_hasher<S: AsRef<str>>(lines: &[S]) -> Fnv64 {
    let mut h = Fnv64::new();
    for line in lines {
        h.write_str(line.as_ref().trim());
    }
    h
}

/// FNV-64 fingerprint of a delta-ops log prefix (see [`ops_hasher`]).
/// Keys an ingested snapshot to the exact accepted-op sequence it
/// folded.
pub fn ops_fingerprint<S: AsRef<str>>(lines: &[S]) -> u64 {
    ops_hasher(lines).finish()
}

/// Folds a delta-ops log into `base`, one [`fold_ops`](crate::fold_ops)
/// batch per recorded epoch boundary (see [`IngestMeta::boundaries`]).
/// Only lines up to the last boundary are applied; the tail is the next
/// epoch's pending delta and is left to the caller.
///
/// Lines are parsed against the base vocabulary; every line must be one
/// accepted op (the log is written post-validation, so blank or rejected
/// lines never reach it).
///
/// # Errors
/// Out-of-range or non-ascending boundaries, unparsable lines, or any
/// [`fold_ops`](crate::fold_ops) validation failure (with the 1-based log
/// line attached).
pub fn fold_dataset<S: AsRef<str>>(
    base: &Dataset,
    lines: &[S],
    boundaries: &[u64],
) -> Result<Dataset> {
    let mut pois = base.pois.clone();
    let mut photos = base.photos.clone();
    let mut prev = 0usize;
    for &b in boundaries {
        let b = b as usize;
        if b < prev || b > lines.len() {
            return Err(SoiError::invalid(format!(
                "fold boundary {b} out of range (previous {prev}, log has {} lines)",
                lines.len()
            )));
        }
        let mut ops = Vec::with_capacity(b - prev);
        for (i, line) in lines[prev..b].iter().enumerate() {
            ops.push(
                crate::delta::DeltaOp::parse_line(line.as_ref(), &base.vocab).map_err(|e| {
                    SoiError::invalid(format!("delta log line {}: {e}", prev + i + 1))
                })?,
            );
        }
        let (next_pois, next_photos) = crate::delta::fold_ops(&pois, &photos, &ops)
            .map_err(|e| SoiError::invalid(format!("folding log lines {}..{b}: {e}", prev + 1)))?;
        pois = next_pois;
        photos = next_photos;
        prev = b;
    }
    Ok(Dataset::new(
        base.name.clone(),
        base.network.clone(),
        base.vocab.clone(),
        pois,
        photos,
    ))
}

/// Reads the [`IngestMeta`] stamped into the snapshot at `path`, or
/// `None` for snapshots written without one ([`write_bundle`]). Touches
/// only the section table plus one small section — cheap enough to probe
/// at startup before deciding how much of the ops log to replay.
///
/// # Errors
/// A missing or corrupt container, or a malformed `ingest.meta` section.
pub fn read_ingest_meta(path: &Path) -> Result<Option<IngestMeta>> {
    read_ingest_meta_from(&Snapshot::open(path)?)
}

fn read_ingest_meta_from(snapshot: &Snapshot) -> Result<Option<IngestMeta>> {
    if !snapshot.has("ingest.meta") {
        return Ok(None);
    }
    let vals = snapshot.u64s("ingest.meta")?;
    let bad = |msg: String| corrupt(snapshot.path(), format!("`ingest.meta`: {msg}"));
    if vals.len() < 4 {
        return Err(bad(format!(
            "must hold at least 4 values, found {}",
            vals.len()
        )));
    }
    let (head, boundaries) = vals.split_at(4);
    if boundaries.len() as u64 != head[3] {
        return Err(bad(format!(
            "claims {} boundaries, found {}",
            head[3],
            boundaries.len()
        )));
    }
    let meta = IngestMeta {
        epoch: head[0],
        applied_ops: head[1],
        ops_fp: head[2],
        boundaries: boundaries.to_vec(),
    };
    meta.validate().map_err(bad)?;
    Ok(Some(meta))
}

// ---------------------------------------------------------------------------
// Index cache
// ---------------------------------------------------------------------------

/// How the cache reacts to a corrupt snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// A corrupt snapshot fails the command (`Data` error, exit code 3).
    Strict,
    /// A corrupt snapshot is discarded and the index rebuilt and re-written
    /// transparently. The default.
    Lenient,
}

/// What [`IndexCache::load_or_build`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The bundle was decoded from an up-to-date snapshot.
    Hit,
    /// No usable snapshot existed (missing or stale); the bundle was built
    /// fresh and a new snapshot written.
    MissBuilt,
    /// The snapshot existed but failed validation; lenient mode rebuilt
    /// and re-wrote it.
    RebuiltCorrupt,
}

/// A directory of bundle snapshots keyed by dataset fingerprint, container
/// format version, and build parameters.
#[derive(Debug, Clone)]
pub struct IndexCache {
    dir: PathBuf,
    mode: CacheMode,
}

impl IndexCache {
    /// A cache rooted at `dir` (created on first use).
    pub fn new(dir: impl Into<PathBuf>, mode: CacheMode) -> Self {
        Self {
            dir: dir.into(),
            mode,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot path for `dataset` under `params`. The file name folds
    /// in the dataset fingerprint, the container format version, and the
    /// parameter stamp, so any change produces a different file (stale
    /// snapshots are simply never opened).
    pub fn snapshot_path(&self, dataset: &Dataset, params: &BundleParams) -> PathBuf {
        self.snapshot_path_with(dataset, params, dataset_fingerprint(dataset))
    }

    /// [`IndexCache::snapshot_path`] with a precomputed dataset fingerprint.
    fn snapshot_path_with(
        &self,
        dataset: &Dataset,
        params: &BundleParams,
        fingerprint: u64,
    ) -> PathBuf {
        let key = snapshot_key(fingerprint, params);
        let name = sanitised_stem(&dataset.name);
        self.dir.join(format!("{name}-{key:016x}.soisnap"))
    }

    /// The live-ingestion snapshot path for `base` under `params`.
    ///
    /// Keyed by the *base* (pre-fold) dataset fingerprint, unlike
    /// [`IndexCache::snapshot_path`]: a restarting server knows the base
    /// dataset and the ops log, but not the folded content — that is
    /// exactly what the snapshot at this path reconstructs. One live
    /// snapshot exists per `(base, params)`; every fold overwrites it.
    pub fn live_snapshot_path(&self, base: &Dataset, params: &BundleParams) -> PathBuf {
        let key = snapshot_key(dataset_fingerprint(base), params);
        let name = sanitised_stem(&base.name);
        self.dir.join(format!("{name}-{key:016x}-live.soisnap"))
    }

    /// Loads the bundle from the cache, or builds (and persists) it.
    ///
    /// # Errors
    /// I/O failures creating the directory or writing the snapshot; in
    /// [`CacheMode::Strict`], also any corrupt-snapshot error.
    pub fn load_or_build(
        &self,
        dataset: &Dataset,
        params: &BundleParams,
    ) -> Result<(IndexBundle, CacheOutcome)> {
        std::fs::create_dir_all(&self.dir).map_err(|e| SoiError::io(e, self.dir.clone()))?;
        // One dataset walk covers both the cache key and the staleness
        // check inside the snapshot: the fingerprint is the expensive part
        // of a cache hit after the decode itself.
        let fingerprint = dataset_fingerprint(dataset);
        let path = self.snapshot_path_with(dataset, params, fingerprint);
        let mut outcome = CacheOutcome::MissBuilt;
        if path.exists() {
            match read_bundle_with_fingerprint(&path, dataset, params, fingerprint) {
                Ok(ReadOutcome::Loaded(bundle)) => return Ok((*bundle, CacheOutcome::Hit)),
                Ok(ReadOutcome::Stale(_)) => {
                    // Key-hashed file names make this near-impossible, but a
                    // mismatched stamp is still just a miss: rebuild below.
                }
                Err(e) => {
                    if self.mode == CacheMode::Strict {
                        return Err(e);
                    }
                    outcome = CacheOutcome::RebuiltCorrupt;
                }
            }
        }
        crate::obs::index_metrics().snapshot_rebuilds.inc();
        let bundle = build_bundle(dataset, params);
        write_bundle(&path, dataset, &bundle, params)?;
        Ok((bundle, outcome))
    }

    /// Loads the ingested bundle for `base` + ops log, or folds, builds,
    /// and persists it.
    ///
    /// On a hit, the snapshot's [`IngestMeta`] names a prefix of `lines`
    /// (verified by fingerprint) that is folded into the returned dataset
    /// at the recorded epoch boundaries; the caller replays only
    /// `lines[meta.applied_ops..]` as the pending delta. On a miss — no
    /// snapshot, a rewritten log, or different params — the whole log is
    /// folded as **one** batch (ids in an unfolded log are batch-relative,
    /// so this is exact for logs that never saw a runtime fold) and a new
    /// snapshot is written with `applied_ops = lines.len()`.
    ///
    /// # Errors
    /// I/O failures, invalid ops in the log, and — in
    /// [`CacheMode::Strict`] — any corrupt-snapshot error.
    pub fn load_or_build_ingested<S: AsRef<str>>(
        &self,
        base: &Dataset,
        params: &BundleParams,
        lines: &[S],
    ) -> Result<IngestedLoad> {
        std::fs::create_dir_all(&self.dir).map_err(|e| SoiError::io(e, self.dir.clone()))?;
        let path = self.live_snapshot_path(base, params);
        let mut outcome = CacheOutcome::MissBuilt;
        if path.exists() {
            match self.try_load_ingested(&path, base, params, lines) {
                Ok(Some(load)) => return Ok(load),
                Ok(None) => {
                    // Stale stamp (log rewritten, params changed): a miss.
                }
                Err(e) => {
                    if self.mode == CacheMode::Strict {
                        return Err(e);
                    }
                    outcome = CacheOutcome::RebuiltCorrupt;
                }
            }
        }
        let applied = lines.len() as u64;
        let boundaries: Vec<u64> = if applied == 0 {
            Vec::new()
        } else {
            vec![applied]
        };
        let meta = IngestMeta {
            epoch: boundaries.len() as u64,
            applied_ops: applied,
            ops_fp: ops_fingerprint(lines),
            boundaries,
        };
        let dataset = fold_dataset(base, lines, &meta.boundaries)?;
        crate::obs::index_metrics().snapshot_rebuilds.inc();
        let bundle = build_bundle(&dataset, params);
        write_bundle_ingested(&path, &dataset, &bundle, params, &meta)?;
        Ok(IngestedLoad {
            dataset,
            bundle,
            meta,
            outcome,
        })
    }

    /// One attempt to satisfy [`IndexCache::load_or_build_ingested`] from
    /// the snapshot at `path`. `Ok(None)` means a *stale* snapshot (treat
    /// as a miss); `Err` means a corrupt one.
    fn try_load_ingested<S: AsRef<str>>(
        &self,
        path: &Path,
        base: &Dataset,
        params: &BundleParams,
        lines: &[S],
    ) -> Result<Option<IngestedLoad>> {
        let Some(meta) = read_ingest_meta(path)? else {
            // A plain bundle under the live name has no provenance; a
            // rebuild with the proper stamp replaces it.
            return Ok(None);
        };
        let applied = meta.applied_ops as usize;
        if applied > lines.len() || meta.ops_fp != ops_fingerprint(&lines[..applied]) {
            return Ok(None);
        }
        let dataset = fold_dataset(base, &lines[..applied], &meta.boundaries)?;
        let fingerprint = dataset_fingerprint(&dataset);
        match read_bundle_with_fingerprint(path, &dataset, params, fingerprint)? {
            ReadOutcome::Loaded(bundle) => Ok(Some(IngestedLoad {
                dataset,
                bundle: *bundle,
                meta,
                outcome: CacheOutcome::Hit,
            })),
            ReadOutcome::Stale(_) => Ok(None),
        }
    }
}

/// What [`IndexCache::load_or_build_ingested`] produced.
#[derive(Debug)]
pub struct IngestedLoad {
    /// The base dataset folded through `meta.applied_ops` log lines.
    pub dataset: Dataset,
    /// The index bundle over that folded dataset.
    pub bundle: IndexBundle,
    /// The provenance stamp persisted with the snapshot; `applied_ops`
    /// tells the caller where the pending tail of the log starts.
    pub meta: IngestMeta,
    /// How the bundle was obtained.
    pub outcome: CacheOutcome,
}

/// The content part of a snapshot file key (fingerprint + format version
/// + build params); shared by the plain and live path schemes.
fn snapshot_key(fingerprint: u64, params: &BundleParams) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(fingerprint);
    h.write_u32(FORMAT_VERSION);
    h.write_f64(params.poi_cell);
    h.write_f64(params.pg_cell);
    h.write_u64(params.eps.map_or(0, f64::to_bits));
    h.write_u32(params.with_ir as u32);
    h.finish()
}

/// A dataset name reduced to a filesystem-safe snapshot file stem.
fn sanitised_stem(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(48)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_data::{PhotoCollection, PoiCollection};
    use soi_network::RoadNetwork;
    use soi_text::Vocabulary;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("soi-idxsnap-{}-{name}.soisnap", std::process::id()))
    }

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn sample_dataset() -> Dataset {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points(
            "Alpha",
            &[
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(4.0, 4.0),
            ],
        );
        b.add_street_from_points("Beta", &[Point::new(0.0, 2.0), Point::new(6.0, 2.0)]);
        let network = b.build().unwrap();

        let mut vocab = Vocabulary::new();
        for term in ["cafe", "bar", "museum", "park", "shop"] {
            vocab.intern(term);
        }
        let mut pois = PoiCollection::new();
        let mut x: u64 = 0x5EED_0123_4567_89AB;
        for _ in 0..60 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let px = (x % 600) as f64 / 100.0;
            let py = ((x >> 17) % 400) as f64 / 100.0;
            let k1 = (x % 5) as u32;
            let k2 = ((x >> 23) % 5) as u32;
            pois.add_weighted(Point::new(px, py), kws(&[k1, k2]), 1.0 + (x % 3) as f64);
        }
        let mut photos = PhotoCollection::new();
        for _ in 0..80 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let px = (x % 600) as f64 / 100.0;
            let py = ((x >> 17) % 400) as f64 / 100.0;
            let k1 = (x % 5) as u32;
            photos.add(Point::new(px, py), kws(&[k1]));
        }
        Dataset::new("sample", network, vocab, pois, photos)
    }

    fn params() -> BundleParams {
        BundleParams {
            poi_cell: 0.5,
            pg_cell: 0.5,
            eps: Some(0.4),
            with_ir: true,
            threads: 1,
        }
    }

    fn assert_poi_index_equal(ds: &Dataset, a: &PoiIndex, b: &PoiIndex) {
        assert_eq!(a.grid(), b.grid());
        assert_eq!(a.num_occupied_cells(), b.num_occupied_cells());
        let mut ids: Vec<CellId> = a.occupied_cells().map(|(id, _)| id).collect();
        ids.sort_unstable();
        for id in ids {
            let ca = a.cell(id).unwrap();
            let cb = b.cell(id).unwrap();
            assert_eq!(ca.pois, cb.pois);
            assert_eq!(ca.total_weight.to_bits(), cb.total_weight.to_bits());
            assert_eq!(ca.inverted.raw_runs(), cb.inverted.raw_runs());
            assert_eq!(ca.inverted.raw_docs(), cb.inverted.raw_docs());
        }
        for k in 0..ds.vocab.len() as u32 {
            let ga = a.global_postings(KeywordId(k));
            let gb = b.global_postings(KeywordId(k));
            assert_eq!(ga.len(), gb.len(), "keyword {k}");
            for (ea, eb) in ga.iter().zip(gb) {
                assert_eq!(ea.0, eb.0);
                assert_eq!(ea.1.to_bits(), eb.1.to_bits());
            }
        }
        assert_eq!(a.segments_by_len(), b.segments_by_len());
        for seg in ds.network.segments() {
            for eps in [0.0, 0.3, 1.0] {
                assert_eq!(
                    a.occupied_cells_near_segment(&seg.geom, eps),
                    b.occupied_cells_near_segment(&seg.geom, eps)
                );
            }
        }
    }

    #[test]
    fn poi_index_round_trips() {
        let ds = sample_dataset();
        let index = PoiIndex::build(&ds.network, &ds.pois, 0.5);
        let path = temp_path("poi");
        let mut w = SnapshotWriter::new();
        write_poi_index(&mut w, "poi", &index).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let back =
            read_poi_index(&snap, "poi", ds.pois.len(), ds.network.num_segments(), 2).unwrap();
        std::fs::remove_file(&path).ok();
        assert_poi_index_equal(&ds, &index, &back);
    }

    #[test]
    fn photo_grid_round_trips() {
        let ds = sample_dataset();
        let grid = PhotoGrid::build(&ds.network, &ds.photos, 0.5);
        let path = temp_path("pg");
        let mut w = SnapshotWriter::new();
        write_photo_grid(&mut w, "pg", &grid).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let back = read_photo_grid(&snap, "pg", ds.photos.len(), 2).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(grid.grid(), back.grid());
        assert_eq!(grid.num_occupied_cells(), back.num_occupied_cells());
        for street in ds.network.streets() {
            assert_eq!(
                grid.photos_near_street(&ds.network, &ds.photos, street.id, 0.4),
                back.photos_near_street(&ds.network, &ds.photos, street.id, 0.4)
            );
        }
    }

    #[test]
    fn div_index_round_trips() {
        let ds = sample_dataset();
        let members: Vec<PhotoId> = (0..ds.photos.len() as u32)
            .step_by(2)
            .map(PhotoId)
            .collect();
        let index = DiversificationIndex::build(&ds.photos, &members, 0.8);
        let path = temp_path("div");
        let mut w = SnapshotWriter::new();
        write_div_index(&mut w, "div", &index).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let back = read_div_index(&snap, "div", ds.photos.len()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(index.grid(), back.grid());
        assert_eq!(index.occupied(), back.occupied());
        assert_eq!(index.num_photos(), back.num_photos());
        for &id in index.occupied() {
            let a = index.cell(id).unwrap();
            let b = back.cell(id).unwrap();
            assert_eq!(a.photos, b.photos);
            assert_eq!(a.keywords, b.keywords);
            assert_eq!(a.psi_min, b.psi_min);
            assert_eq!(a.psi_max, b.psi_max);
            assert_eq!(a.inverted.num_documents(), b.inverted.num_documents());
            assert_eq!(a.inverted.num_keywords(), b.inverted.num_keywords());
            for k in 0..ds.vocab.len() as u32 {
                assert_eq!(
                    a.inverted.postings(KeywordId(k)),
                    b.inverted.postings(KeywordId(k))
                );
            }
        }
    }

    #[test]
    fn ir_tree_round_trips() {
        let ds = sample_dataset();
        let tree = IrTree::build(&ds.pois);
        let path = temp_path("ir");
        let mut w = SnapshotWriter::new();
        write_ir_tree(&mut w, "ir", &tree).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let back = read_ir_tree(&snap, "ir", ds.pois.len(), 2).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(tree.len(), back.len());
        for k in 0..5u32 {
            let q = Point::new(2.0 + k as f64 * 0.3, 1.0);
            let a: Vec<(u32, u64)> = tree
                .top_k_relevant(q, &kws(&[k]), 4)
                .into_iter()
                .map(|(id, d)| (id.raw(), d.to_bits()))
                .collect();
            let b: Vec<(u32, u64)> = back
                .top_k_relevant(q, &kws(&[k]), 4)
                .into_iter()
                .map(|(id, d)| (id.raw(), d.to_bits()))
                .collect();
            assert_eq!(a, b, "keyword {k}");
            assert_eq!(
                tree.relevant_within(q, 1.5, &kws(&[k])),
                back.relevant_within(q, 1.5, &kws(&[k]))
            );
        }
    }

    #[test]
    fn epsilon_maps_round_trip() {
        let ds = sample_dataset();
        let index = PoiIndex::build(&ds.network, &ds.pois, 0.5);
        let maps = EpsilonMaps::build(&ds.network, &index, 0.4);
        let path = temp_path("eps");
        let mut w = SnapshotWriter::new();
        write_epsilon_maps(&mut w, "eps", &maps).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let back = read_epsilon_maps(&snap, "eps", ds.network.num_segments(), 2).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(maps.eps().to_bits(), back.eps().to_bits());
        assert_eq!(maps.num_segments(), back.num_segments());
        for seg in ds.network.segments() {
            assert_eq!(maps.cells_of_segment(seg.id), back.cells_of_segment(seg.id));
            for &c in maps.cells_of_segment(seg.id) {
                assert_eq!(maps.segments_of_cell(c), back.segments_of_cell(c));
            }
        }
    }

    #[test]
    fn bundle_round_trips_and_preloads_eps() {
        let ds = sample_dataset();
        let p = params();
        let bundle = build_bundle(&ds, &p);
        let path = temp_path("bundle");
        write_bundle(&path, &ds, &bundle, &p).unwrap();
        let ReadOutcome::Loaded(back) = read_bundle(&path, &ds, &p).unwrap() else {
            panic!("freshly written bundle reported stale");
        };
        std::fs::remove_file(&path).ok();
        assert_poi_index_equal(&ds, &bundle.poi, &back.poi);
        assert!(back.ir.is_some());
        // The ε-maps were preloaded: the cache already holds one entry.
        assert_eq!(back.poi.epsilon_cache_len(), 1);
        let a = bundle.poi.epsilon_maps(&ds.network, 0.4);
        let b = back.poi.epsilon_maps(&ds.network, 0.4);
        for seg in ds.network.segments() {
            assert_eq!(a.cells_of_segment(seg.id), b.cells_of_segment(seg.id));
        }
    }

    #[test]
    fn stale_fingerprint_and_params_detected() {
        let ds = sample_dataset();
        let p = params();
        let bundle = build_bundle(&ds, &p);
        let path = temp_path("stale");
        write_bundle(&path, &ds, &bundle, &p).unwrap();

        // Changed dataset content → stale.
        let mut changed = ds.clone();
        changed.pois.add(Point::new(1.0, 1.0), kws(&[0]));
        assert!(matches!(
            read_bundle(&path, &changed, &p).unwrap(),
            ReadOutcome::Stale(_)
        ));

        // Changed params → stale.
        let p2 = BundleParams { poi_cell: 0.7, ..p };
        assert!(matches!(
            read_bundle(&path, &ds, &p2).unwrap(),
            ReadOutcome::Stale(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_hit_miss_and_corruption_modes() {
        let ds = sample_dataset();
        let p = params();
        let dir = std::env::temp_dir().join(format!("soi-idxcache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let cache = IndexCache::new(&dir, CacheMode::Lenient);
        let (_, outcome) = cache.load_or_build(&ds, &p).unwrap();
        assert_eq!(outcome, CacheOutcome::MissBuilt);
        let (hit, outcome) = cache.load_or_build(&ds, &p).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_poi_index_equal(&ds, &build_bundle(&ds, &p).poi, &hit.poi);

        // Corrupt one payload byte: lenient rebuilds, strict errors.
        let path = cache.snapshot_path(&ds, &p);
        let snap = Snapshot::open(&path).unwrap();
        let offset = snap.sections()[0].offset as usize;
        drop(snap);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[offset] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let strict = IndexCache::new(&dir, CacheMode::Strict);
        let err = strict.load_or_build(&ds, &p).unwrap_err();
        assert_eq!(err.category(), soi_common::ErrorCategory::Data);
        assert_eq!(err.category().exit_code(), 3);

        let (_, outcome) = cache.load_or_build(&ds, &p).unwrap();
        assert_eq!(outcome, CacheOutcome::RebuiltCorrupt);
        // The rewrite healed the cache.
        let (_, outcome) = cache.load_or_build(&ds, &p).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_content() {
        let ds = sample_dataset();
        let base = dataset_fingerprint(&ds);
        assert_eq!(base, dataset_fingerprint(&ds.clone()));
        let mut renamed = ds.clone();
        renamed.name = "other".to_string();
        assert_ne!(base, dataset_fingerprint(&renamed));
        let mut more_photos = ds.clone();
        more_photos.photos.add(Point::new(0.5, 0.5), kws(&[1]));
        assert_ne!(base, dataset_fingerprint(&more_photos));
    }

    #[test]
    fn plain_bundles_carry_no_ingest_meta() {
        let ds = sample_dataset();
        let p = params();
        let bundle = build_bundle(&ds, &p);
        let path = temp_path("noingest");
        write_bundle(&path, &ds, &bundle, &p).unwrap();
        assert_eq!(read_ingest_meta(&path).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_meta_round_trips() {
        let ds = sample_dataset();
        let p = params();
        let bundle = build_bundle(&ds, &p);
        let path = temp_path("ingestmeta");
        let meta = IngestMeta {
            epoch: 7,
            applied_ops: 12,
            ops_fp: 0xDEAD_BEEF,
            boundaries: vec![5, 12],
        };
        write_bundle_ingested(&path, &ds, &bundle, &p, &meta).unwrap();
        assert_eq!(read_ingest_meta(&path).unwrap(), Some(meta));
        // The extra section does not disturb the plain read path.
        assert!(matches!(
            read_bundle(&path, &ds, &p).unwrap(),
            ReadOutcome::Loaded(_)
        ));
        std::fs::remove_file(&path).ok();

        // Inconsistent stamps are rejected at write time.
        let bad = IngestMeta {
            epoch: 1,
            applied_ops: 12,
            ops_fp: 0,
            boundaries: vec![5, 9], // last != applied_ops
        };
        assert!(write_bundle_ingested(&path, &ds, &bundle, &p, &bad).is_err());
    }

    #[test]
    fn ingested_cache_replays_only_newer_deltas() {
        let ds = sample_dataset();
        let p = params();
        let dir = std::env::temp_dir().join(format!("soi-ingcache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = IndexCache::new(&dir, CacheMode::Lenient);

        let log: Vec<String> = vec![
            r#"{"op":"add_poi","x":1.0,"y":1.0,"kw":["cafe"],"weight":2.0}"#.into(),
            r#"{"op":"add_photo","x":2.0,"y":1.0,"tags":["museum"]}"#.into(),
            r#"{"op":"del_poi","id":3}"#.into(),
        ];

        // First load folds the whole log in one batch and persists it.
        let built = cache.load_or_build_ingested(&ds, &p, &log).unwrap();
        assert_eq!(built.outcome, CacheOutcome::MissBuilt);
        assert_eq!(built.meta.applied_ops, 3);
        assert_eq!(built.meta.boundaries, vec![3]);
        assert_eq!(built.dataset.pois.len(), ds.pois.len()); // +1 add, -1 delete
        assert_eq!(built.dataset.photos.len(), ds.photos.len() + 1);

        // Same log: a hit, decoding the same folded content.
        let hit = cache.load_or_build_ingested(&ds, &p, &log).unwrap();
        assert_eq!(hit.outcome, CacheOutcome::Hit);
        assert_eq!(hit.meta, built.meta);
        assert_eq!(
            dataset_fingerprint(&hit.dataset),
            dataset_fingerprint(&built.dataset)
        );
        assert_poi_index_equal(&built.dataset, &built.bundle.poi, &hit.bundle.poi);

        // A longer log with the same prefix: still a hit; the tail stays
        // pending for the caller to replay as the live delta.
        let mut longer = log.clone();
        longer.push(r#"{"op":"add_photo","x":3.0,"y":1.0,"tags":["park"]}"#.into());
        let partial = cache.load_or_build_ingested(&ds, &p, &longer).unwrap();
        assert_eq!(partial.outcome, CacheOutcome::Hit);
        assert_eq!(partial.meta.applied_ops, 3);
        assert_eq!(partial.dataset.photos.len(), ds.photos.len() + 1);

        // A rewritten prefix invalidates the snapshot: full refold.
        let mut rewritten = log.clone();
        rewritten[0] = r#"{"op":"add_poi","x":1.5,"y":1.0,"kw":["bar"]}"#.into();
        let rebuilt = cache.load_or_build_ingested(&ds, &p, &rewritten).unwrap();
        assert_eq!(rebuilt.outcome, CacheOutcome::MissBuilt);
        assert_ne!(rebuilt.meta.ops_fp, built.meta.ops_fp);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fold_dataset_honours_boundaries() {
        let ds = sample_dataset();
        let n = ds.pois.len() as u32;
        // Epoch 1 adds a POI; epoch 2 deletes it *by its post-fold id*
        // (fold keeps ascending order, so the add lands at index n).
        let log = [
            r#"{"op":"add_poi","x":1.0,"y":1.0,"kw":["cafe"]}"#.to_string(),
            format!(r#"{{"op":"del_poi","id":{n}}}"#),
        ];
        let folded = fold_dataset(&ds, &log, &[1, 2]).unwrap();
        assert_eq!(folded.pois.len(), ds.pois.len());
        // As one batch the same two lines also cancel out (the delete
        // targets the pending add), so both interpretations agree here…
        let single = fold_dataset(&ds, &log, &[2]).unwrap();
        assert_eq!(single.pois.len(), ds.pois.len());
        // No boundaries: nothing is applied — the tail is all pending.
        assert_eq!(
            fold_dataset(&ds, &log, &[]).unwrap().pois.len(),
            ds.pois.len()
        );
        // Out-of-range boundary is rejected.
        assert!(fold_dataset(&ds, &log, &[3]).is_err());
        // Boundaries that go backwards are rejected.
        assert!(fold_dataset(&ds, &log, &[2, 1]).is_err());
    }

    #[test]
    fn out_of_bounds_ids_rejected() {
        let ds = sample_dataset();
        let index = PoiIndex::build(&ds.network, &ds.pois, 0.5);
        let path = temp_path("oob");
        let mut w = SnapshotWriter::new();
        write_poi_index(&mut w, "poi", &index).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        // Claim fewer POIs than the postings reference.
        let err = read_poi_index(&snap, "poi", 1, ds.network.num_segments(), 1).unwrap_err();
        assert_eq!(err.category(), soi_common::ErrorCategory::Data);
        std::fs::remove_file(&path).ok();
    }
}
