//! The base+delta read path: [`IndexView`].
//!
//! Algorithms 1 and 2 never touch [`PoiIndex`](crate::PoiIndex) directly
//! once a delta is live; they read through an [`IndexView`] that overlays a
//! sealed [`DeltaIndex`] on the base structures. The overlay rules keep
//! every bound the algorithm relies on *sound and exact*:
//!
//! - Street geometry (grid, rasters, segment length order) is static, so
//!   those methods delegate to the base unchanged.
//! - Global postings and per-cell weight totals come from the delta's
//!   replacement aggregates for touched keywords/cells and from the base
//!   otherwise; the delta recomputed them in merged ascending-POI order,
//!   so they are bit-identical to a rebuilt index's aggregates.
//! - Cell occupancy is the union of base-occupied cells and delta-new
//!   cells. A base cell whose POIs were all deleted stays "occupied" with
//!   a zero total — a sound superset that contributes nothing.
//! - Exact masses sum base survivors (ascending id, via the base inverted
//!   postings with deleted POIs skipped) then delta adds (ascending id) —
//!   the same physical-POI order a rebuild over the folded collections
//!   sums in, hence bit-identical masses.

use soi_common::{CellId, KeywordId, SegmentId};
use soi_data::PoiView;
use soi_geo::{Grid, LineSeg};
use soi_network::RoadNetwork;
use soi_text::KeywordSet;

use crate::delta::DeltaIndex;
use crate::poi_index::PoiIndex;

/// A read-only overlay of an optional sealed delta on a base index.
///
/// `Copy`, and constructible from a plain `&PoiIndex` (empty delta), so
/// query entry points take `impl Into<IndexView<'_>>` and pre-ingestion
/// call sites keep passing the index directly.
#[derive(Debug, Clone, Copy)]
pub struct IndexView<'a> {
    base: &'a PoiIndex,
    delta: Option<&'a DeltaIndex>,
}

impl<'a> From<&'a PoiIndex> for IndexView<'a> {
    fn from(base: &'a PoiIndex) -> Self {
        Self { base, delta: None }
    }
}

impl<'a> IndexView<'a> {
    /// A view of `base` overlaid with `delta` (None = base only).
    pub fn new(base: &'a PoiIndex, delta: Option<&'a DeltaIndex>) -> Self {
        Self { base, delta }
    }

    /// The base index.
    pub fn base(&self) -> &'a PoiIndex {
        self.base
    }

    /// The overlaid delta, if any.
    pub fn delta(&self) -> Option<&'a DeltaIndex> {
        self.delta
    }

    /// The underlying grid (static street/POI extent fixed at build time).
    pub fn grid(&self) -> &'a Grid {
        self.base.grid()
    }

    /// Segment ids sorted increasingly by length (SL3 order; static).
    pub fn segments_by_len(&self) -> &'a [SegmentId] {
        self.base.segments_by_len()
    }

    /// O(1) upper bound on `|Cε(ℓ)|` (pure grid geometry; static).
    pub fn upper_cell_count(&self, geom: &LineSeg, eps: f64) -> usize {
        self.base.upper_cell_count(geom, eps)
    }

    /// Superset of `Lε(c)` from the static raster map (street geometry
    /// never changes within an epoch lineage).
    pub fn segments_near_cell_superset_into(&self, id: CellId, eps: f64, out: &mut Vec<SegmentId>) {
        self.base.segments_near_cell_superset_into(id, eps, out);
    }

    /// The global inverted list for keyword `k`: the delta's replacement
    /// list when `k` was touched this epoch, the base list otherwise.
    pub fn global_postings(&self, k: KeywordId) -> &'a [(CellId, f64)] {
        if let Some(d) = self.delta {
            if let Some(list) = d.global_postings(k) {
                return list;
            }
        }
        self.base.global_postings(k)
    }

    /// Total POI weight in cell `id` under this view (0.0 if unoccupied).
    pub fn cell_total_weight(&self, id: CellId) -> f64 {
        if let Some(d) = self.delta {
            if let Some(w) = d.cell_total_weight(id) {
                return w;
            }
        }
        self.base.cell_total_weight(id)
    }

    /// Lazy `Cε(ℓ)` under this view: cells occupied by the base or newly
    /// occupied by the delta, within `eps` of `geom`, ascending.
    pub fn occupied_cells_near_segment_into(
        &self,
        geom: &LineSeg,
        eps: f64,
        out: &mut Vec<CellId>,
    ) {
        match self.delta {
            None => self.base.occupied_cells_near_segment_into(geom, eps, out),
            Some(d) => {
                out.clear();
                let grid = self.base.grid();
                grid.for_each_cell_near_segment(geom, eps, |coord| {
                    let c = grid.cell_id(coord);
                    if self.base.cell(c).is_some() || d.occupies_new_cell(c) {
                        out.push(c);
                    }
                });
                out.sort_unstable();
            }
        }
    }

    /// Allocating form of
    /// [`occupied_cells_near_segment_into`](Self::occupied_cells_near_segment_into).
    pub fn occupied_cells_near_segment(&self, geom: &LineSeg, eps: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        self.occupied_cells_near_segment_into(geom, eps, &mut out);
        out
    }

    /// Exact weighted mass contribution of cell `id` to segment
    /// `seg_geom` under this view: base survivors first (ascending id,
    /// deleted POIs skipped), then delta adds (ascending id) — the merged
    /// summation order, so the result is bit-identical to the rebuilt
    /// index's mass.
    pub fn cell_mass_for_segment(
        &self,
        pois: PoiView<'_>,
        id: CellId,
        seg_geom: &LineSeg,
        query: &KeywordSet,
        eps: f64,
    ) -> f64 {
        let Some(d) = self.delta else {
            return self
                .base
                .cell_mass_for_segment(pois.base(), id, seg_geom, query, eps);
        };
        let eps_sq = eps * eps;
        let mut mass = 0.0;
        if let Some(cell) = self.base.cell(id) {
            cell.inverted.for_each_matching(query.ids(), |pid| {
                if !d.poi_deleted(pid) {
                    let poi = pois.get(pid);
                    if seg_geom.dist_sq_to_point(poi.pos) <= eps_sq {
                        mass += poi.weight;
                    }
                }
            });
        }
        for &pid in d.cell_added_pois(id) {
            let poi = pois.get(pid);
            if poi.keywords.intersects(query) && seg_geom.dist_sq_to_point(poi.pos) <= eps_sq {
                mass += poi.weight;
            }
        }
        mass
    }

    /// Exact weighted mass of a whole segment under this view
    /// (Definition 1), with the ε-dilation computed on the fly.
    pub fn segment_mass_lazy(
        &self,
        pois: PoiView<'_>,
        network: &RoadNetwork,
        seg: SegmentId,
        query: &KeywordSet,
        eps: f64,
    ) -> f64 {
        let geom = network.segment(seg).geom;
        self.occupied_cells_near_segment(&geom, eps)
            .into_iter()
            .map(|c| self.cell_mass_for_segment(pois, c, &geom, query, eps))
            .sum()
    }
}
