//! Dataset-wide photo grid: extracting per-street photo sets.
//!
//! Section 4.1.1 associates with each street `s` the photo set
//! `Rs = {r ∈ R : dist(r, s) ≤ ε}`. This grid accelerates that extraction:
//! candidate cells are found by ε-dilating the street's segments, then
//! photos are filtered by exact distance.

use soi_common::{
    bucket_sort_stable, bucket_sort_worthwhile, effective_threads, par_chunk_map,
    par_sort_unstable_by, CellId, FxHashMap, PhotoId, StreetId,
};
use soi_data::PhotoCollection;
use soi_geo::{Grid, Point, Rect};
use soi_network::RoadNetwork;

/// A uniform grid over all photos of a dataset.
#[derive(Debug)]
pub struct PhotoGrid {
    grid: Grid,
    cells: FxHashMap<CellId, Vec<PhotoId>>,
}

impl PhotoGrid {
    /// Builds the grid over `photos` with the given `cell_size`, covering
    /// the union of the network and photo extents.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn build(network: &RoadNetwork, photos: &PhotoCollection, cell_size: f64) -> Self {
        Self::build_with_threads(network, photos, cell_size, 0)
    }

    /// Builds the grid with an explicit worker-thread count (`0` = resolve
    /// automatically, see [`effective_threads`]).
    ///
    /// The build is chunk-partitioned and deterministic: chunks emit packed
    /// (cell ‖ photo) keys in photo order, and one stable counting pass by
    /// cell (or a comparison sort of the unique keys) groups them, so the
    /// result is identical for every thread count.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn build_with_threads(
        network: &RoadNetwork,
        photos: &PhotoCollection,
        cell_size: f64,
        threads: usize,
    ) -> Self {
        let threads = effective_threads((threads > 0).then_some(threads));
        let extent = match (network.extent(), photos.extent()) {
            (Some(a), Some(b)) => a.union(&b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)),
        };
        let grid = Grid::covering(extent, cell_size);
        let mut keys: Vec<u64> = par_chunk_map(photos.as_slice(), threads, |_, chunk| {
            let mut keys = Vec::with_capacity(chunk.len());
            for photo in chunk {
                // Photos outside the grid (non-finite position) are
                // unindexable.
                if let Some(coord) = grid.cell_containing(photo.pos) {
                    keys.push(u64::from(grid.cell_id(coord).0) << 32 | u64::from(photo.id.0));
                }
            }
            keys
        })
        .into_iter()
        .flatten()
        .collect();
        let num_cells = grid.num_cells();
        if bucket_sort_worthwhile(keys.len(), num_cells) {
            keys = bucket_sort_stable(&keys, num_cells as u32, |&k| (k >> 32) as u32);
        } else {
            par_sort_unstable_by(&mut keys, threads, |a, b| a.cmp(b));
        }
        let mut cells: FxHashMap<CellId, Vec<PhotoId>> = FxHashMap::default();
        let mut i = 0;
        while i < keys.len() {
            let c = (keys[i] >> 32) as u32;
            let mut j = i;
            while j < keys.len() && (keys[j] >> 32) as u32 == c {
                j += 1;
            }
            cells.insert(
                CellId(c),
                keys[i..j].iter().map(|&k| PhotoId(k as u32)).collect(),
            );
            i = j;
        }
        Self { grid, cells }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Snapshot-encode access to the private parts (see [`crate::snapshot`]).
    pub(crate) fn snapshot_parts(&self) -> (&Grid, &FxHashMap<CellId, Vec<PhotoId>>) {
        (&self.grid, &self.cells)
    }

    /// Reassembles a grid from snapshot-decoded parts (ascending-cell
    /// insertion order, matching the build path).
    pub(crate) fn from_snapshot_parts(grid: Grid, cells: FxHashMap<CellId, Vec<PhotoId>>) -> Self {
        Self { grid, cells }
    }

    /// Incrementally inserts a photo added after the grid was built.
    ///
    /// Photos must be inserted in ascending id order; the location must lie
    /// within the grid extent fixed at build time.
    ///
    /// # Errors
    /// Rejects positions outside the grid extent.
    pub fn insert(&mut self, photo: &soi_data::Photo) -> soi_common::Result<()> {
        let coord = self.grid.cell_containing(photo.pos).ok_or_else(|| {
            soi_common::SoiError::invalid(format!(
                "photo at {} lies outside the grid extent; rebuild the grid",
                photo.pos
            ))
        })?;
        self.cells
            .entry(self.grid.cell_id(coord))
            .or_default()
            .push(photo.id);
        Ok(())
    }

    /// Photos in cell `id` (sorted by id), empty if unoccupied.
    pub fn cell_photos(&self, id: CellId) -> &[PhotoId] {
        self.cells.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of occupied cells.
    pub fn num_occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Extracts `Rs`: photos within `eps` of street `street`, sorted by id.
    pub fn photos_near_street(
        &self,
        network: &RoadNetwork,
        photos: &PhotoCollection,
        street: StreetId,
        eps: f64,
    ) -> Vec<PhotoId> {
        let mut candidate_cells: Vec<CellId> = Vec::new();
        for &seg in &network.street(street).segments {
            let geom = network.segment(seg).geom;
            for coord in self.grid.cells_near_segment(&geom, eps) {
                candidate_cells.push(self.grid.cell_id(coord));
            }
        }
        candidate_cells.sort_unstable();
        candidate_cells.dedup();

        let eps_sq = eps * eps;
        let mut result: Vec<PhotoId> = Vec::new();
        for cell in candidate_cells {
            for &pid in self.cell_photos(cell) {
                let pos = photos.get(pid).pos;
                let within = network
                    .street(street)
                    .segments
                    .iter()
                    .any(|&s| network.segment(s).geom.dist_sq_to_point(pos) <= eps_sq);
                if within {
                    result.push(pid);
                }
            }
        }
        result.sort_unstable();
        result.dedup();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_text::KeywordSet;

    fn setup() -> (RoadNetwork, PhotoCollection, PhotoGrid) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points(
            "L",
            &[
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(4.0, 4.0),
            ],
        );
        b.add_street_from_points("Far", &[Point::new(20.0, 20.0), Point::new(24.0, 20.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(1.0, 0.4), KeywordSet::empty()); // near L
        photos.add(Point::new(4.3, 2.0), KeywordSet::empty()); // near L's vertical leg
        photos.add(Point::new(10.0, 10.0), KeywordSet::empty()); // nowhere
        photos.add(Point::new(21.0, 20.2), KeywordSet::empty()); // near Far
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        (network, photos, grid)
    }

    #[test]
    fn photos_near_street_filters_by_exact_distance() {
        let (network, photos, grid) = setup();
        let near_l = grid.photos_near_street(&network, &photos, StreetId(0), 0.5);
        let raw: Vec<u32> = near_l.iter().map(|p| p.raw()).collect();
        assert_eq!(raw, vec![0, 1]);

        let near_far = grid.photos_near_street(&network, &photos, StreetId(1), 0.5);
        let raw: Vec<u32> = near_far.iter().map(|p| p.raw()).collect();
        assert_eq!(raw, vec![3]);
    }

    #[test]
    fn tight_eps_excludes_photos() {
        let (network, photos, grid) = setup();
        let near = grid.photos_near_street(&network, &photos, StreetId(0), 0.25);
        assert!(near.is_empty());
    }

    #[test]
    fn matches_brute_force() {
        let (network, photos, grid) = setup();
        for street in network.streets() {
            for eps in [0.2, 0.5, 1.0, 3.0] {
                let via_grid = grid.photos_near_street(&network, &photos, street.id, eps);
                let brute: Vec<PhotoId> = photos
                    .iter()
                    .filter(|ph| {
                        street
                            .segments
                            .iter()
                            .any(|&s| network.segment(s).geom.dist_to_point(ph.pos) <= eps)
                    })
                    .map(|ph| ph.id)
                    .collect();
                assert_eq!(via_grid, brute, "street {} eps {eps}", street.id);
            }
        }
    }

    #[test]
    fn empty_collections() {
        let network = RoadNetwork::builder().build().unwrap();
        let photos = PhotoCollection::new();
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        assert_eq!(grid.num_occupied_cells(), 0);
    }

    #[test]
    fn parallel_build_identical_to_sequential() {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("S", &[Point::new(0.0, 0.0), Point::new(10.0, 10.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        let mut x: u64 = 0x0123_4567_89AB_CDEF;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let px = (x % 1000) as f64 / 100.0;
            let py = ((x >> 13) % 1000) as f64 / 100.0;
            photos.add(Point::new(px, py), KeywordSet::empty());
        }
        let sequential = PhotoGrid::build_with_threads(&network, &photos, 0.5, 1);
        for threads in [2usize, 3, 8] {
            let parallel = PhotoGrid::build_with_threads(&network, &photos, 0.5, threads);
            assert_eq!(
                sequential.num_occupied_cells(),
                parallel.num_occupied_cells()
            );
            let mut ids: Vec<CellId> = sequential.cells.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                assert_eq!(sequential.cell_photos(id), parallel.cell_photos(id));
            }
        }
    }
}
