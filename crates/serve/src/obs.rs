//! Serving-layer metric instruments.
//!
//! Registered in the same process-wide registry as the algorithm metrics,
//! so `GET /metrics` gathers one coherent Prometheus text exposition:
//! query-level counters from `soi-core`, batch instruments from
//! `soi-engine`, and the request/overload series here.
//!
//! Alongside the cumulative series, the serving layer exports
//! rolling-window instruments (`*_window_*`, an 8 × 15 s wheel — a two
//! minute window) so dashboards and `/status` can answer "what is the
//! latency/shed rate *right now*" without deriving rates from counters.

use soi_obs::metrics::{
    register_counter, register_gauge, register_histogram, register_windowed_counter,
    register_windowed_histogram, Counter, Gauge, Histogram, WindowedCounter, WindowedHistogram,
    DEFAULT_LATENCY_BUCKETS,
};
use std::sync::OnceLock;

/// Slots in the rolling-window wheel.
pub const WINDOW_SLOTS: usize = 8;
/// Seconds per rolling-window slot.
pub const WINDOW_SLOT_SECS: u64 = 15;

/// Global instruments fed by the HTTP serving layer.
pub struct ServeMetrics {
    /// `soi_serve_requests_total`: HTTP requests that parsed successfully.
    pub requests: &'static Counter,
    /// `soi_serve_connections_total`: TCP connections accepted.
    pub connections: &'static Counter,
    /// `soi_serve_shed_total`: requests shed by admission control (the
    /// bounded queue was full; the client got an immediate 503).
    pub shed: &'static Counter,
    /// `soi_serve_rejected_total`: connections rejected at the HTTP edge
    /// (malformed request line, oversized body, slow or closed peer).
    pub rejected: &'static Counter,
    /// `soi_serve_deadline_expired_total`: accepted queries whose deadline
    /// expired mid-run; the response carried `partial: true`.
    pub deadline_expired: &'static Counter,
    /// `soi_serve_panics_total`: worker panics caught by the isolation
    /// guard (always expected to be zero; the overload suite asserts it).
    pub panics: &'static Counter,
    /// `soi_serve_slow_queries_total`: requests whose total latency
    /// crossed the `--slow-query-ms` threshold and were logged.
    pub slow_queries: &'static Counter,
    /// `soi_serve_queue_depth`: current admission-queue depth.
    pub queue_depth: &'static Gauge,
    /// `soi_serve_request_latency_seconds`: accepted-request latency from
    /// parse completion to response written.
    pub latency: &'static Histogram,
    /// `soi_serve_request_latency_window_seconds`: rolling-window latency,
    /// all endpoints.
    pub latency_window: &'static WindowedHistogram,
    /// `soi_serve_soi_latency_window_seconds`: rolling-window latency of
    /// `POST /soi` requests.
    pub soi_latency_window: &'static WindowedHistogram,
    /// `soi_serve_describe_latency_window_seconds`: rolling-window latency
    /// of `POST /describe` requests.
    pub describe_latency_window: &'static WindowedHistogram,
    /// `soi_serve_requests_window`: requests completed inside the window.
    pub requests_window: &'static WindowedCounter,
    /// `soi_serve_shed_window`: requests shed inside the window.
    pub shed_window: &'static WindowedCounter,
    /// `soi_serve_errors_window`: error responses inside the window.
    pub errors_window: &'static WindowedCounter,
    /// `soi_serve_partials_window`: partial responses inside the window.
    pub partials_window: &'static WindowedCounter,
    /// `soi_ingest_batches_total`: accepted `POST /ingest` batches.
    pub ingest_batches: &'static Counter,
    /// `soi_ingest_ops_total`: delta ops accepted across all batches.
    pub ingest_ops: &'static Counter,
    /// `soi_ingest_rejected_total`: ingest batches rejected whole (parse
    /// or validation failure; state unchanged).
    pub ingest_rejected: &'static Counter,
    /// `soi_ingest_folds_total`: epoch folds (delta compacted into a
    /// fresh base and the epoch swapped).
    pub ingest_folds: &'static Counter,
    /// `soi_ingest_epoch`: current epoch id (monotone across swaps).
    pub ingest_epoch: &'static Gauge,
    /// `soi_ingest_pending_ops`: ops in the live (unfolded) delta.
    pub ingest_pending: &'static Gauge,
}

/// The serving instruments (registered on first use).
pub fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ServeMetrics {
        requests: register_counter("soi_serve_requests_total", "HTTP requests parsed"),
        connections: register_counter("soi_serve_connections_total", "TCP connections accepted"),
        shed: register_counter(
            "soi_serve_shed_total",
            "Requests shed by admission control (queue full)",
        ),
        rejected: register_counter(
            "soi_serve_rejected_total",
            "Connections rejected at the HTTP edge (malformed, oversized, slow, or closed)",
        ),
        deadline_expired: register_counter(
            "soi_serve_deadline_expired_total",
            "Accepted queries that hit their deadline and returned partial results",
        ),
        panics: register_counter(
            "soi_serve_panics_total",
            "Worker panics caught by the isolation guard",
        ),
        slow_queries: register_counter(
            "soi_serve_slow_queries_total",
            "Requests slower than the slow-query threshold",
        ),
        queue_depth: register_gauge("soi_serve_queue_depth", "Current admission-queue depth"),
        latency: register_histogram(
            "soi_serve_request_latency_seconds",
            "Accepted-request latency, parse to response",
            DEFAULT_LATENCY_BUCKETS,
        ),
        latency_window: register_windowed_histogram(
            "soi_serve_request_latency_window_seconds",
            "Rolling-window accepted-request latency (all endpoints)",
            DEFAULT_LATENCY_BUCKETS,
            WINDOW_SLOTS,
            WINDOW_SLOT_SECS,
        ),
        soi_latency_window: register_windowed_histogram(
            "soi_serve_soi_latency_window_seconds",
            "Rolling-window POST /soi latency",
            DEFAULT_LATENCY_BUCKETS,
            WINDOW_SLOTS,
            WINDOW_SLOT_SECS,
        ),
        describe_latency_window: register_windowed_histogram(
            "soi_serve_describe_latency_window_seconds",
            "Rolling-window POST /describe latency",
            DEFAULT_LATENCY_BUCKETS,
            WINDOW_SLOTS,
            WINDOW_SLOT_SECS,
        ),
        requests_window: register_windowed_counter(
            "soi_serve_requests_window",
            "Requests completed inside the rolling window",
            WINDOW_SLOTS,
            WINDOW_SLOT_SECS,
        ),
        shed_window: register_windowed_counter(
            "soi_serve_shed_window",
            "Requests shed inside the rolling window",
            WINDOW_SLOTS,
            WINDOW_SLOT_SECS,
        ),
        errors_window: register_windowed_counter(
            "soi_serve_errors_window",
            "Error responses inside the rolling window",
            WINDOW_SLOTS,
            WINDOW_SLOT_SECS,
        ),
        partials_window: register_windowed_counter(
            "soi_serve_partials_window",
            "Partial responses inside the rolling window",
            WINDOW_SLOTS,
            WINDOW_SLOT_SECS,
        ),
        ingest_batches: register_counter(
            "soi_ingest_batches_total",
            "Accepted POST /ingest batches",
        ),
        ingest_ops: register_counter("soi_ingest_ops_total", "Delta ops accepted via ingestion"),
        ingest_rejected: register_counter(
            "soi_ingest_rejected_total",
            "Ingest batches rejected whole (parse or validation failure)",
        ),
        ingest_folds: register_counter(
            "soi_ingest_folds_total",
            "Epoch folds: pending delta compacted into a fresh base",
        ),
        ingest_epoch: register_gauge("soi_ingest_epoch", "Current serving epoch id"),
        ingest_pending: register_gauge(
            "soi_ingest_pending_ops",
            "Ops in the live (unfolded) ingestion delta",
        ),
    })
}

/// Forces registration of every serving metric so a `GET /metrics` before
/// the first request still exposes the full series set (at zero).
pub fn register_metrics() {
    let _ = serve_metrics();
    // The profiler's sample counters register on first session start;
    // force them here so they scrape as zeros before any window runs.
    let _ = soi_obs::profile::metrics();
    soi_core::obs::register_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_exposes_serve_series() {
        register_metrics();
        let text = soi_obs::metrics::gather_prefixed("soi_");
        for name in [
            "soi_serve_requests_total",
            "soi_serve_shed_total",
            "soi_serve_panics_total",
            "soi_serve_slow_queries_total",
            "soi_serve_queue_depth",
            "soi_serve_request_latency_seconds",
            "soi_serve_request_latency_window_seconds",
            "soi_serve_soi_latency_window_seconds",
            "soi_serve_describe_latency_window_seconds",
            "soi_serve_requests_window",
            "soi_serve_shed_window",
            "soi_serve_errors_window",
            "soi_serve_partials_window",
            "soi_ingest_batches_total",
            "soi_ingest_ops_total",
            "soi_ingest_rejected_total",
            "soi_ingest_folds_total",
            "soi_ingest_epoch",
            "soi_ingest_pending_ops",
        ] {
            assert!(text.contains(name), "{name} missing from gather");
        }
    }
}
