//! A minimal blocking HTTP/1.1 client for `soi bench-serve` and tests.
//!
//! Speaks exactly the dialect the server emits (`Connection: close`,
//! `Content-Length` bodies), with a per-request timeout and optional
//! retry with exponential backoff for shed (503) responses.

use soi_common::{Result, SoiError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response, bounded by `timeout`.
///
/// # Errors
/// Connection, timeout, or malformed-response failures.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<Response> {
    let label = || format!("{method} {path}");
    let stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| SoiError::io(e, addr.to_string()))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| SoiError::io(e, label()))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| SoiError::io(e, label()))?;
    let mut stream = stream;

    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: soi\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| SoiError::io(e, label()))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| SoiError::io(e, label()))?;
    parse_response(&raw)
}

/// Parses a `Connection: close` response (body runs to EOF).
fn parse_response(raw: &[u8]) -> Result<Response> {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| SoiError::invalid("response had no header terminator"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| SoiError::invalid(format!("bad status line {status_line:?}")))?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            line.split_once(':')
                .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(Response {
        status,
        headers,
        body: body.to_string(),
    })
}

/// Retry policy for [`request_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = no retries).
    pub retries: usize,
    /// Backoff before the first retry; doubles each further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            retries: 2,
            backoff: Duration::from_millis(25),
        }
    }
}

/// Outcome of [`request_with_retry`]: the final response plus how the
/// attempts went, so callers can attribute latency correctly — the time
/// a request spent being shed and backed off is overload accounting, not
/// service latency.
#[derive(Debug)]
pub struct RetryOutcome {
    /// The final response (or transport error) once retries stopped.
    pub response: Result<Response>,
    /// Attempts actually made (≥ 1).
    pub attempts: usize,
    /// Attempts answered with a shed 503 (including the final one when
    /// retries ran out while still shed).
    pub sheds: usize,
    /// Wall clock of the final attempt alone: connect to response read,
    /// excluding every earlier attempt and backoff sleep.
    pub last_attempt: Duration,
}

impl RetryOutcome {
    /// True when the final response was an accepted (non-503) success.
    pub fn accepted(&self) -> bool {
        self.response
            .as_ref()
            .is_ok_and(|response| response.status != 503)
    }
}

/// Sends a request, retrying shed (503) responses and transport errors
/// with exponential backoff. Non-503 responses return immediately.
///
/// The returned [`RetryOutcome`] reports every attempt: a benchmark that
/// times the whole call would otherwise fold shed handling and backoff
/// sleeps into the accepted request's latency, skewing tail percentiles
/// upward on any run that sheds.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
    policy: RetryPolicy,
) -> RetryOutcome {
    let mut backoff = policy.backoff;
    let mut attempts = 0;
    let mut sheds = 0;
    loop {
        attempts += 1;
        let attempt_started = std::time::Instant::now();
        let outcome = request(addr, method, path, body, timeout);
        let last_attempt = attempt_started.elapsed();
        let shed = outcome
            .as_ref()
            .is_ok_and(|response| response.status == 503);
        if shed {
            sheds += 1;
        }
        let retryable = shed || outcome.is_err();
        if !retryable || attempts > policy.retries {
            return RetryOutcome {
                response: outcome,
                attempts,
                sheds,
                last_attempt,
            };
        }
        std::thread::sleep(backoff);
        backoff = backoff.saturating_mul(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\nX-Soi-Request-Id: 42\r\n\r\n{}";
        let response = parse_response(raw).expect("parses");
        assert_eq!(response.status, 503);
        assert_eq!(response.body, "{}");
        assert_eq!(response.header("x-soi-request-id"), Some("42"));
        assert_eq!(response.header("X-SOI-REQUEST-ID"), Some("42"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
    }
}
