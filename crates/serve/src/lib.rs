//! `soi-serve`: a production serving layer for the k-SOI query engine.
//!
//! A dependency-free HTTP/1.1 server over `std::net` with production
//! posture: bounded request parsing (slow-loris and oversized bodies are
//! rejected in bounded time), a bounded admission queue that sheds load
//! with an immediate 503 when full, per-request deadlines threaded into
//! the algorithms as [`soi_core::QueryBudget`] (expired queries degrade to
//! anytime *partial* results instead of blowing their latency target), and
//! graceful drain on `SIGTERM`.
//!
//! Every accepted request is assigned a monotonic request id (returned in
//! the `x-soi-request-id` response header and stamped into trace events),
//! can opt into a request-scoped trace/explain capture via `"trace": true`
//! / `"explain": true` body fields, and leaves a record in a bounded
//! recent-requests ring inspectable at `GET /debug/requests`.
//!
//! Routes:
//!
//! | Route                     | Semantics                                     |
//! |---------------------------|-----------------------------------------------|
//! | `POST /soi`               | k-SOI query (queued, deadline-bounded)        |
//! | `POST /describe`          | street description (queued, deadline-bounded) |
//! | `POST /explain`           | inline explained k-SOI query (same body)      |
//! | `GET /metrics`            | Prometheus text exposition                    |
//! | `GET /status`             | liveness + queue/drain state + SLO windows    |
//! | `GET /explain`            | inline explained query (query string)         |
//! | `GET /debug/requests`     | recent-requests ring summary                  |
//! | `GET /debug/requests/<id>`| one request record, artifacts embedded        |

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod obs;
pub mod queue;
pub mod ring;
pub mod server;
pub mod signal;

pub use server::{serve, ServeConfig, ServeReport};
