//! `soi-serve`: a production serving layer for the k-SOI query engine.
//!
//! A dependency-free HTTP/1.1 server over `std::net` with production
//! posture: bounded request parsing (slow-loris and oversized bodies are
//! rejected in bounded time), a bounded admission queue that sheds load
//! with an immediate 503 when full, per-request deadlines threaded into
//! the algorithms as [`soi_core::QueryBudget`] (expired queries degrade to
//! anytime *partial* results instead of blowing their latency target), and
//! graceful drain on `SIGTERM`.
//!
//! Routes:
//!
//! | Route            | Semantics                                        |
//! |------------------|--------------------------------------------------|
//! | `POST /soi`      | k-SOI query (queued, deadline-bounded)           |
//! | `POST /describe` | street description (queued, deadline-bounded)    |
//! | `GET /metrics`   | Prometheus text exposition                       |
//! | `GET /status`    | liveness + queue/drain state                     |
//! | `GET /explain`   | inline explained query (debugging)               |

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod obs;
pub mod queue;
pub mod server;
pub mod signal;

pub use server::{serve, ServeConfig, ServeReport};
