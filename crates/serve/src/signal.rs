//! Process shutdown flag, settable from a Unix signal handler.
//!
//! The serving loop polls [`shutdown_requested`]; `SIGTERM`/`SIGINT` flip
//! the flag asynchronously (the only async-signal-safe thing a handler may
//! do is a lock-free store). The dependency-free route to a handler is the
//! C `signal()` function, which requires one tiny `unsafe` block — isolated
//! here, with the rest of the crate denying `unsafe_code`.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a shutdown was requested (signal or [`request_shutdown`]).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a graceful shutdown programmatically (tests, embedding).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests reuse the process-global flag across servers).
pub fn reset_shutdown() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// The process-global flag itself, for wiring into [`crate::serve`]
/// (tests that run several servers pass their own flags instead).
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX signal(2), provided by libc (always linked by std on unix).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single lock-free store.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `on_signal` is an `extern "C" fn(i32)` that only performs
        // an atomic store, which is async-signal-safe; `signal` itself is
        // safe to call with a valid function pointer.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

/// Installs `SIGTERM`/`SIGINT` handlers that flip the shutdown flag
/// (no-op on non-Unix platforms; use [`request_shutdown`] there).
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset() {
        reset_shutdown();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_shutdown();
        assert!(!shutdown_requested());
    }
}
