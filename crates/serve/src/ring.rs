//! The recent-requests ring: a lock-light bounded buffer of per-request
//! records powering `GET /debug/requests`, `GET /debug/requests/<id>`,
//! and the slow-query log.
//!
//! Each completed request (including sheds and errors — anything that
//! parsed far enough to get an id) pushes one [`RequestRecord`]. The ring
//! holds the most recent `capacity` records; each slot is an independent
//! `Mutex<Option<Arc<..>>>`, so a push touches exactly one slot mutex for
//! a few pointer writes and readers clone `Arc`s without copying captured
//! trace payloads. Lookups scan — the ring is a debugging surface sized in
//! the hundreds, not a database.

use soi_obs::json::JsonWriter;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Everything the server remembers about one completed request.
#[derive(Debug, Default, Clone)]
pub struct RequestRecord {
    /// The request id (monotonic per server run, starts at 1).
    pub id: u64,
    /// The endpoint that handled it (`/soi`, `/describe`, …).
    pub endpoint: String,
    /// A short human-readable digest of the request parameters.
    pub params: String,
    /// HTTP status answered.
    pub status: u16,
    /// Time spent in the admission queue (zero for inline endpoints).
    pub queue_ms: f64,
    /// Time executing on the engine (zero for inline endpoints).
    pub exec_ms: f64,
    /// Total latency from parse completion to response written.
    pub total_ms: f64,
    /// The query hit its deadline and returned partial results.
    pub partial: bool,
    /// The request was shed by admission control (503).
    pub shed: bool,
    /// The query answered an error response.
    pub error: bool,
    /// Source-list accesses performed (k-SOI work counter).
    pub accesses: u64,
    /// ε-map cache hits attributed to this request's dispatch batch.
    pub eps_cache_hits: u64,
    /// ε-map cache misses attributed to this request's dispatch batch.
    pub eps_cache_misses: u64,
    /// The serving epoch the request executed against.
    pub epoch: u64,
    /// Chrome-trace JSON captured for this request, when asked for.
    pub trace_json: Option<String>,
    /// Explain JSON captured for this request, when asked for.
    pub explain_json: Option<String>,
}

impl RequestRecord {
    /// Renders the record as JSON. `with_artifacts` embeds the captured
    /// trace/explain payloads (the by-id route); the list route omits them
    /// and reports only their presence.
    pub fn to_json(&self, with_artifacts: bool) -> String {
        let mut obj = JsonWriter::object();
        obj.field_u64("id", self.id);
        obj.field_str("endpoint", &self.endpoint);
        obj.field_str("params", &self.params);
        obj.field_u64("status", u64::from(self.status));
        obj.field_f64("queue_ms", self.queue_ms);
        obj.field_f64("exec_ms", self.exec_ms);
        obj.field_f64("total_ms", self.total_ms);
        obj.field_bool("partial", self.partial);
        obj.field_bool("shed", self.shed);
        obj.field_bool("error", self.error);
        obj.field_u64("accesses", self.accesses);
        let mut eps = JsonWriter::object();
        eps.field_u64("hits", self.eps_cache_hits);
        eps.field_u64("misses", self.eps_cache_misses);
        obj.field_raw("eps_cache", &eps.finish());
        obj.field_u64("epoch", self.epoch);
        obj.field_bool("traced", self.trace_json.is_some());
        obj.field_bool("explained", self.explain_json.is_some());
        if with_artifacts {
            if let Some(trace) = &self.trace_json {
                obj.field_raw("trace", trace);
            }
            if let Some(explain) = &self.explain_json {
                obj.field_raw("explain", explain);
            }
        }
        obj.finish()
    }
}

/// The bounded ring of recent [`RequestRecord`]s.
#[derive(Debug)]
pub struct RequestRing {
    slots: Vec<Mutex<Option<Arc<RequestRecord>>>>,
    cursor: AtomicUsize,
}

impl RequestRing {
    /// Creates a ring remembering the most recent `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one completed request, evicting the oldest when full.
    pub fn push(&self, record: RequestRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[seq % self.slots.len()];
        let mut guard = match slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = Some(Arc::new(record));
    }

    /// Finds a record by request id (linear scan over the ring).
    pub fn get(&self, id: u64) -> Option<Arc<RequestRecord>> {
        self.slots.iter().find_map(|slot| {
            let guard = match slot.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.as_ref().filter(|r| r.id == id).map(Arc::clone)
        })
    }

    /// The retained records, most recent first.
    pub fn recent(&self) -> Vec<Arc<RequestRecord>> {
        let mut records: Vec<Arc<RequestRecord>> = self
            .slots
            .iter()
            .filter_map(|slot| {
                let guard = match slot.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard.as_ref().map(Arc::clone)
            })
            .collect();
        records.sort_by_key(|r| std::cmp::Reverse(r.id));
        records
    }

    /// Renders the `GET /debug/requests` body: a summary list (artifacts
    /// omitted), most recent first. `endpoint` keeps only records handled
    /// by that endpoint; `limit` truncates after filtering (both applied
    /// here so a filtered listing still returns up to `limit` matches).
    pub fn list_json(&self, limit: Option<usize>, endpoint: Option<&str>) -> String {
        let mut records = self.recent();
        if let Some(endpoint) = endpoint {
            records.retain(|r| r.endpoint == endpoint);
        }
        let matched = records.len();
        if let Some(limit) = limit {
            records.truncate(limit);
        }
        let mut obj = JsonWriter::object();
        obj.field_u64("capacity", self.capacity() as u64);
        obj.field_u64("matched", matched as u64);
        obj.field_u64("count", records.len() as u64);
        let mut arr = JsonWriter::array();
        for record in &records {
            arr.elem_raw(&record.to_json(false));
        }
        obj.field_raw("requests", &arr.finish());
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> RequestRecord {
        RequestRecord {
            id,
            endpoint: "/soi".to_string(),
            params: format!("q{id}"),
            status: 200,
            total_ms: id as f64,
            ..RequestRecord::default()
        }
    }

    #[test]
    fn ring_evicts_oldest_and_finds_by_id() {
        let ring = RequestRing::new(3);
        for id in 1..=5 {
            ring.push(record(id));
        }
        assert_eq!(ring.capacity(), 3);
        assert!(ring.get(1).is_none(), "evicted");
        assert!(ring.get(2).is_none(), "evicted");
        for id in 3..=5 {
            assert_eq!(ring.get(id).expect("retained").id, id);
        }
        let recent: Vec<u64> = ring.recent().iter().map(|r| r.id).collect();
        assert_eq!(recent, vec![5, 4, 3], "most recent first");
    }

    #[test]
    fn list_json_filters_by_endpoint_and_limit() {
        let ring = RequestRing::new(8);
        for id in 1..=6 {
            let mut r = record(id);
            if id % 2 == 0 {
                r.endpoint = "/describe".to_string();
            }
            ring.push(r);
        }
        // Endpoint filter keeps only matching records, most recent first.
        let doc = ring.list_json(None, Some("/describe"));
        let parsed = soi_obs::json::parse(&doc).expect("parses");
        assert_eq!(parsed.get("matched").and_then(|v| v.as_f64()), Some(3.0));
        let ids: Vec<f64> = parsed
            .get("requests")
            .and_then(|v| v.as_arr())
            .expect("requests array")
            .iter()
            .map(|r| r.get("id").and_then(|v| v.as_f64()).unwrap_or(0.0))
            .collect();
        assert_eq!(ids, vec![6.0, 4.0, 2.0]);
        // Limit truncates after filtering; `matched` still reports the
        // pre-truncation count.
        let doc = ring.list_json(Some(2), Some("/soi"));
        let parsed = soi_obs::json::parse(&doc).expect("parses");
        assert_eq!(parsed.get("matched").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(parsed.get("count").and_then(|v| v.as_f64()), Some(2.0));
        // limit=0 is a valid "just the counts" probe.
        let doc = ring.list_json(Some(0), None);
        let parsed = soi_obs::json::parse(&doc).expect("parses");
        assert_eq!(parsed.get("count").and_then(|v| v.as_f64()), Some(0.0));
        assert_eq!(parsed.get("matched").and_then(|v| v.as_f64()), Some(6.0));
    }

    #[test]
    fn concurrent_writers_across_cursor_wraparound() {
        use std::sync::Arc;
        // Capacity 16, 8 writers × 100 pushes = 50 wraparounds. Afterwards
        // the ring must hold exactly `capacity` records, all distinct ids,
        // each slot internally consistent (id matches its params digest).
        let ring = Arc::new(RequestRing::new(16));
        let next_id = Arc::new(std::sync::atomic::AtomicUsize::new(1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let next_id = Arc::clone(&next_id);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let id = next_id.fetch_add(1, Ordering::Relaxed) as u64;
                        ring.push(record(id));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer joins");
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 16, "ring full after wraparounds");
        let mut ids: Vec<u64> = recent.iter().map(|r| r.id).collect();
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), 16, "duplicate ids retained: {ids:?}");
        ids.sort_unstable();
        assert!(*ids.iter().max().unwrap() <= 800);
        for r in &recent {
            assert_eq!(r.params, format!("q{}", r.id), "torn record {r:?}");
            assert!(ring.get(r.id).is_some(), "retained id not findable");
        }
        // recent() stays sorted most recent first under concurrency too.
        let listed: Vec<u64> = recent.iter().map(|r| r.id).collect();
        let mut sorted = listed.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(listed, sorted);
    }

    #[test]
    fn list_json_summarizes_without_artifacts() {
        let ring = RequestRing::new(4);
        let mut traced = record(7);
        traced.trace_json = Some("{\"traceEvents\":[]}".to_string());
        ring.push(traced);
        let doc = ring.list_json(None, None);
        let parsed = soi_obs::json::parse(&doc).expect("parses");
        assert_eq!(parsed.get("count").and_then(|v| v.as_f64()), Some(1.0));
        let items = parsed
            .get("requests")
            .and_then(|v| v.as_arr())
            .expect("requests array");
        assert_eq!(items[0].get("traced").and_then(|v| v.as_bool()), Some(true));
        assert!(items[0].get("trace").is_none(), "list omits payloads");
        // The by-id rendering embeds the artifact.
        let full = ring.get(7).expect("found").to_json(true);
        let parsed = soi_obs::json::parse(&full).expect("parses");
        assert!(parsed.get("trace").is_some());
    }
}
