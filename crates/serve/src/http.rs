//! Minimal, bounded HTTP/1.1 request parsing and response writing over a
//! [`TcpStream`].
//!
//! This is deliberately not a general HTTP implementation: it supports
//! exactly what the serving layer needs — `GET`/`POST`, `Content-Length`
//! bodies, `Connection: close` semantics — with every read bounded in both
//! *bytes* (line, header-block, and body caps) and *time* (socket
//! timeouts). A slow-loris client stalls against the socket timeout; a
//! client streaming an unbounded body is cut off at the configured cap.
//! Both cost one worker a bounded slice of time, never a wedge.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Byte and time caps applied while parsing one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max request-line length (method + target + version).
    pub max_request_line: usize,
    /// Max bytes across all header lines.
    pub max_header_bytes: usize,
    /// Max header count.
    pub max_headers: usize,
    /// Max `Content-Length` accepted.
    pub max_body_bytes: usize,
    /// Overall wall-clock cap on parsing one request. The per-read socket
    /// timeout alone does not stop a drip-feed client (one byte per
    /// interval resets it every read); this deadline does.
    pub max_parse_time: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_request_line: 4096,
            max_header_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 64 * 1024,
            max_parse_time: Duration::from_secs(5),
        }
    }
}

/// A parsed request: method, target (path + optional query), headers, body.
#[derive(Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// The request target as sent (`/soi`, `/explain?k=5`, …).
    pub target: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's raw query string, if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed, mapped to a response status.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request (bad request line, header, length).
    Malformed(String),
    /// Request line, header block, or body exceeded its byte cap.
    TooLarge(String),
    /// A feature this server intentionally does not implement (chunked
    /// transfer encoding, unsupported methods).
    Unsupported(String),
    /// The socket read or write timed out (slow or stalled peer).
    Timeout,
    /// The peer closed the connection before a full request arrived.
    Closed,
    /// Any other socket-level I/O failure.
    Io(std::io::Error),
}

impl HttpError {
    /// The `(status, reason)` to answer with; `None` means the peer is gone
    /// and the connection should just be dropped.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::TooLarge(_) => Some((413, "Payload Too Large")),
            HttpError::Unsupported(_) => Some((501, "Not Implemented")),
            HttpError::Timeout => Some((408, "Request Timeout")),
            HttpError::Closed | HttpError::Io(_) => None,
        }
    }

    /// A short human-readable description for the error body.
    pub fn describe(&self) -> String {
        match self {
            HttpError::Malformed(m) | HttpError::TooLarge(m) | HttpError::Unsupported(m) => {
                m.clone()
            }
            HttpError::Timeout => "request read timed out".to_string(),
            HttpError::Closed => "connection closed".to_string(),
            HttpError::Io(e) => e.to_string(),
        }
    }

    fn from_io(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => HttpError::Closed,
            _ => HttpError::Io(e),
        }
    }
}

/// A tiny buffered reader over the socket: reads ahead in 4 KiB chunks and
/// hands out CRLF-terminated lines and exact-length bodies, both bounded.
struct ByteReader<'a> {
    stream: &'a mut TcpStream,
    buf: Vec<u8>,
    start: usize,
    deadline: Instant,
}

impl<'a> ByteReader<'a> {
    fn new(stream: &'a mut TcpStream, max_parse_time: Duration) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            start: 0,
            deadline: Instant::now() + max_parse_time,
        }
    }

    /// Pulls more bytes from the socket; `Closed` on EOF, `Timeout` once
    /// the overall parse deadline has passed (drip-feed defense).
    fn fill(&mut self) -> Result<(), HttpError> {
        if Instant::now() > self.deadline {
            return Err(HttpError::Timeout);
        }
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).map_err(HttpError::from_io)?;
        if n == 0 {
            return Err(HttpError::Closed);
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Reads one `\r\n`-terminated line of at most `max` bytes (terminator
    /// excluded); a bare `\n` terminator is tolerated.
    fn read_line(&mut self, max: usize) -> Result<String, HttpError> {
        loop {
            if let Some(pos) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let end = self.start + pos;
                let mut line = &self.buf[self.start..end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                if line.len() > max {
                    return Err(HttpError::TooLarge(format!(
                        "line of {} bytes exceeds the {max}-byte cap",
                        line.len()
                    )));
                }
                let text = std::str::from_utf8(line)
                    .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".to_string()))?
                    .to_string();
                self.start = end + 1;
                return Ok(text);
            }
            // No terminator buffered yet: enforce the cap on the unfinished
            // line *before* reading more, so an endless unterminated line is
            // rejected after at most `max` + one chunk of socket reads.
            if self.buf.len() - self.start > max {
                return Err(HttpError::TooLarge(format!(
                    "unterminated line exceeds the {max}-byte cap"
                )));
            }
            self.fill()?;
        }
    }

    /// Reads exactly `n` body bytes (buffered remainder first).
    fn read_body(&mut self, n: usize) -> Result<Vec<u8>, HttpError> {
        let mut body = Vec::with_capacity(n);
        let buffered = (self.buf.len() - self.start).min(n);
        body.extend_from_slice(&self.buf[self.start..self.start + buffered]);
        self.start += buffered;
        while body.len() < n {
            if Instant::now() > self.deadline {
                return Err(HttpError::Timeout);
            }
            let mut chunk = [0u8; 4096];
            let want = (n - body.len()).min(chunk.len());
            let got = self
                .stream
                .read(&mut chunk[..want])
                .map_err(HttpError::from_io)?;
            if got == 0 {
                return Err(HttpError::Closed);
            }
            body.extend_from_slice(&chunk[..got]);
        }
        Ok(body)
    }
}

/// Reads and parses one HTTP/1.1 request within `limits`.
///
/// Socket timeouts must already be set by the caller; a stalled peer
/// surfaces as [`HttpError::Timeout`].
///
/// # Errors
/// Any parse failure, cap violation, timeout, or socket error — see
/// [`HttpError::status`] for the response mapping.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, HttpError> {
    let mut reader = ByteReader::new(stream, limits.max_parse_time);
    let request_line = reader.read_line(limits.max_request_line)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let method = method.to_string();
    let target = target.to_string();

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = reader.read_line(limits.max_request_line)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > limits.max_header_bytes {
            return Err(HttpError::TooLarge(format!(
                "header block exceeds the {}-byte cap",
                limits.max_header_bytes
            )));
        }
        if headers.len() == limits.max_headers {
            return Err(HttpError::TooLarge(format!(
                "more than {} headers",
                limits.max_headers
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let transfer_encoding = headers
        .iter()
        .find(|(n, _)| n == "transfer-encoding")
        .map(|(_, v)| v.as_str());
    if let Some(te) = transfer_encoding {
        return Err(HttpError::Unsupported(format!(
            "transfer-encoding {te:?} is not supported; send Content-Length"
        )));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {}-byte cap",
            limits.max_body_bytes
        )));
    }
    let body = if content_length > 0 {
        reader.read_body(content_length)?
    } else {
        Vec::new()
    };

    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Writes a complete `Connection: close` response.
///
/// # Errors
/// Propagates socket write failures (including write timeouts).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with_headers(stream, status, reason, content_type, body, &[])
}

/// [`write_response`] with extra response headers (e.g. the per-request
/// `x-soi-request-id`). Header names and values must already be valid
/// token/field text — they are written verbatim.
///
/// # Errors
/// Propagates socket write failures (including write timeouts).
pub fn write_response_with_headers(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON error body `{"error": ...}` with the given status.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> std::io::Result<()> {
    let mut obj = soi_obs::json::JsonWriter::object();
    obj.field_str("error", message);
    obj.field_u64("status", u64::from(status));
    write_response(
        stream,
        status,
        reason,
        "application/json",
        obj.finish().as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(input: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(input).unwrap();
        drop(client); // EOF after the payload
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, &Limits::default())
    }

    #[test]
    fn parses_get_with_query() {
        let req = roundtrip(b"GET /explain?k=5 HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/explain");
        assert_eq!(req.query(), Some("k=5"));
        assert_eq!(req.header("Host"), Some("x"));
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(b"POST /soi HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(
            roundtrip(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let err = roundtrip(b"POST /soi HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n");
        assert!(matches!(err, Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn rejects_chunked_transfer() {
        let err = roundtrip(b"POST /soi HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
        assert!(matches!(err, Err(HttpError::Unsupported(_))));
    }

    #[test]
    fn truncated_request_is_closed_not_hung() {
        assert!(matches!(
            roundtrip(b"POST /soi HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn unterminated_line_is_bounded() {
        let long = vec![b'a'; 10_000];
        assert!(matches!(roundtrip(&long), Err(HttpError::TooLarge(_))));
    }
}
