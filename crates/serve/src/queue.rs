//! Bounded admission queue and per-request result slots.
//!
//! Admission control is the server's overload valve: IO workers
//! [`try_push`](AdmissionQueue::try_push) parsed query jobs, and when the
//! queue is at capacity the push fails immediately — the worker answers
//! 503 and moves on, spending microseconds on the request instead of
//! queueing unbounded work. The dispatcher drains jobs in batches sized
//! for the engine, executes them under their deadlines, and publishes each
//! response through the job's [`Slot`].

use soi_common::StreetId;
use soi_core::describe::DescribeParams;
use soi_core::soi::SoiQuery;
use soi_core::QueryBudget;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning: a panicking worker (already
/// counted by the panic guard) must not wedge every other thread that
/// shares the queue.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Execution metadata the dispatcher publishes alongside a response — the
/// per-request record the IO worker folds into the recent-requests ring
/// (queue/exec split, outcome flags, work counters, captured artifacts).
#[derive(Debug, Default, Clone)]
pub struct SlotMeta {
    /// Time the job sat in the admission queue before dispatch.
    pub queue: Duration,
    /// Time executing on the engine.
    pub exec: Duration,
    /// The deadline expired and the response is partial.
    pub partial: bool,
    /// The response is an error body.
    pub error: bool,
    /// Source-list accesses performed (k-SOI work counter).
    pub accesses: u64,
    /// ε-map cache hits attributed to this job's dispatch batch.
    pub eps_cache_hits: u64,
    /// ε-map cache misses attributed to this job's dispatch batch.
    pub eps_cache_misses: u64,
    /// The serving epoch the dispatch batch pinned.
    pub epoch: u64,
    /// Chrome-trace JSON captured for this request, when asked for.
    pub trace_json: Option<String>,
    /// Explain JSON captured for this request, when asked for.
    pub explain_json: Option<String>,
}

/// A single-use rendezvous for one request's response: the IO worker waits
/// on it while the dispatcher computes and [`put`](Slot::put)s the
/// `(status, body)` pair plus its [`SlotMeta`].
#[derive(Debug, Default)]
pub struct Slot {
    state: Mutex<Option<(u16, String, SlotMeta)>>,
    cv: Condvar,
}

impl Slot {
    /// Publishes the response and wakes the waiting worker.
    pub fn put(&self, status: u16, body: String) {
        self.put_with_meta(status, body, SlotMeta::default());
    }

    /// [`put`](Slot::put) with execution metadata for the request ring.
    pub fn put_with_meta(&self, status: u16, body: String, meta: SlotMeta) {
        *lock(&self.state) = Some((status, body, meta));
        self.cv.notify_all();
    }

    /// Waits up to `timeout` for the response; `None` on timeout (the
    /// backstop — the dispatcher always answers deadline-bounded jobs).
    pub fn wait(&self, timeout: Duration) -> Option<(u16, String, SlotMeta)> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.state);
        loop {
            if let Some(response) = state.take() {
                return Some(response);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (next, wait) = match self.cv.wait_timeout(state, remaining) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            state = next;
            if wait.timed_out() && state.is_none() {
                return None;
            }
        }
    }
}

/// The work item of one accepted query request.
#[derive(Debug)]
pub enum JobKind {
    /// A k-SOI identification query.
    Soi(SoiQuery),
    /// A photo-summary description query for one street.
    Describe {
        /// The street to describe.
        street: StreetId,
        /// Selection parameters.
        params: DescribeParams,
    },
}

/// One admitted request: the query, its deadline, and the response slot.
#[derive(Debug)]
pub struct Job {
    /// What to run.
    pub kind: JobKind,
    /// Per-request deadline threaded into the algorithms.
    pub budget: QueryBudget,
    /// Where the dispatcher publishes the response.
    pub slot: Arc<Slot>,
    /// When the job was admitted (for queue-wait accounting).
    pub enqueued: Instant,
    /// The request id assigned at admission (stamped into trace events).
    pub request_id: u64,
    /// Capture a request-scoped trace while the job runs.
    pub trace: bool,
    /// Run the job with an explain collector.
    pub explain: bool,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded, condvar-signalled admission queue.
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// Creates a queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (pending jobs).
    pub fn depth(&self) -> usize {
        lock(&self.state).jobs.len()
    }

    /// Admits `job`, or returns it back when the queue is full or closed —
    /// the caller sheds the request immediately.
    pub fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut state = lock(&self.state);
        if state.closed || state.jobs.len() >= self.capacity {
            return Err(job);
        }
        state.jobs.push_back(job);
        crate::obs::serve_metrics()
            .queue_depth
            .set(state.jobs.len() as f64);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Pops up to `max` jobs, waiting up to `timeout` for the first one.
    /// Returns an empty batch on timeout or when closed and drained.
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<Job> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.state);
        while state.jobs.is_empty() && !state.closed {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Vec::new();
            };
            let (next, wait) = match self.cv.wait_timeout(state, remaining) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            state = next;
            if wait.timed_out() && state.jobs.is_empty() {
                return Vec::new();
            }
        }
        let take = state.jobs.len().min(max.max(1));
        let batch: Vec<Job> = state.jobs.drain(..take).collect();
        crate::obs::serve_metrics()
            .queue_depth
            .set(state.jobs.len() as f64);
        batch
    }

    /// Closes the queue: no further admissions; the dispatcher drains what
    /// remains and then sees empty batches.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.cv.notify_all();
    }

    /// True once closed with nothing left to drain.
    pub fn is_drained(&self) -> bool {
        let state = lock(&self.state);
        state.closed && state.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            kind: JobKind::Soi(
                SoiQuery::new(soi_text::KeywordSet::empty(), 1, 0.5).expect("valid"),
            ),
            budget: QueryBudget::unlimited(),
            slot: Arc::new(Slot::default()),
            enqueued: Instant::now(),
            request_id: 0,
            trace: false,
            explain: false,
        }
    }

    #[test]
    fn sheds_when_full() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(job()).is_ok());
        assert!(q.try_push(job()).is_ok());
        assert!(q.try_push(job()).is_err(), "third push must shed");
        assert_eq!(q.depth(), 2);
        let batch = q.pop_batch(8, Duration::from_millis(10));
        assert_eq!(batch.len(), 2);
        assert!(q.try_push(job()).is_ok(), "space freed after drain");
    }

    #[test]
    fn close_rejects_and_drains() {
        let q = AdmissionQueue::new(4);
        assert!(q.try_push(job()).is_ok());
        q.close();
        assert!(q.try_push(job()).is_err(), "closed queue admits nothing");
        assert!(!q.is_drained());
        let batch = q.pop_batch(8, Duration::from_millis(10));
        assert_eq!(batch.len(), 1);
        assert!(q.is_drained());
        assert!(q.pop_batch(8, Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn slot_roundtrip_and_timeout() {
        let slot = Arc::new(Slot::default());
        assert!(slot.wait(Duration::from_millis(5)).is_none());
        slot.put(200, "ok".to_string());
        let (status, body, meta) = slot.wait(Duration::from_millis(5)).expect("published");
        assert_eq!((status, body.as_str()), (200, "ok"));
        assert!(!meta.partial && meta.trace_json.is_none());
    }

    #[test]
    fn slot_meta_roundtrip() {
        let slot = Slot::default();
        slot.put_with_meta(
            200,
            "{}".to_string(),
            SlotMeta {
                queue: Duration::from_millis(3),
                exec: Duration::from_millis(7),
                partial: true,
                accesses: 42,
                trace_json: Some("{\"traceEvents\":[]}".to_string()),
                ..SlotMeta::default()
            },
        );
        let (_, _, meta) = slot.wait(Duration::from_millis(5)).expect("published");
        assert_eq!(meta.exec, Duration::from_millis(7));
        assert!(meta.partial);
        assert_eq!(meta.accesses, 42);
        assert!(meta.trace_json.is_some());
    }
}
