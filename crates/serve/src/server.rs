//! The serving loop: accept → bounded HTTP parse → admission queue →
//! batched engine execution → response.
//!
//! ### Thread topology
//!
//! ```text
//! accept loop (caller thread, nonblocking, polls the shutdown flag)
//!   └─> bounded connection queue ──> IO workers (parse, route, respond)
//!                                       ├─ /metrics /status /explain
//!                                       │  /debug/requests: inline
//!                                       └─ /soi /describe: admission queue
//!                                            └─> dispatcher (one thread)
//!                                                  batches jobs into the
//!                                                  QueryEngine under their
//!                                                  per-request deadlines,
//!                                                  publishes via Slot
//! ```
//!
//! ### Overload semantics
//!
//! Every stage is bounded. A full connection queue or admission queue sheds
//! with an immediate 503 (`soi_serve_shed_total`); malformed, oversized, or
//! slow requests are rejected at the HTTP edge in bounded time
//! (`soi_serve_rejected_total`); accepted queries carry a
//! [`QueryBudget`] deadline into the algorithms and degrade to anytime
//! *partial* results instead of missing their latency target.
//!
//! ### Request-scoped observability
//!
//! Every request that parses is assigned a monotonic id, returned in the
//! `x-soi-request-id` header and stamped into trace events emitted while
//! it runs. `/soi` and `/describe` bodies may set `"trace": true` /
//! `"explain": true` to capture a request-scoped Chrome trace or explain
//! report — captured into a private per-request buffer (concurrent
//! untraced requests pay nothing), embedded in the response, and retained
//! in the recent-requests ring behind `GET /debug/requests/<id>`.
//! `trace_sample` additionally captures every Nth query into the ring
//! without embedding. Requests slower than `slow_query` emit a structured
//! `serve.slow_query` log line and count
//! `soi_serve_slow_queries_total`.
//!
//! ### Drain
//!
//! When the shutdown flag flips (SIGTERM/SIGINT or programmatic), the
//! accept loop stops, in-flight connections finish, the admission queue is
//! closed and drained (queued jobs still run, under their deadlines), and
//! [`serve`] returns a final [`ServeReport`].

use crate::http::{self, Limits};
use crate::queue::{AdmissionQueue, Job, JobKind, Slot, SlotMeta};
use crate::ring::{RequestRecord, RequestRing};
use soi_common::{ErrorCategory, Result, SoiError};
use soi_core::describe::{ContextBuilder, DescribeParams, PhiSource, StreetContext};
use soi_core::soi::{run_soi_explained, SoiExplain, SoiOutcome, SoiQuery, SoiScratch};
use soi_core::QueryBudget;
use soi_data::Dataset;
use soi_engine::{CapturedArtifacts, QueryCapture, QueryContext, QueryEngine};
use soi_index::{DeltaIndex, DeltaOp, EpochedIndex, Fnv64, IndexBundle, PhotoGrid, PoiIndex};
use soi_obs::json::{Json, JsonWriter};
use soi_obs::log::{self, Value};
use std::collections::VecDeque;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serving configuration (every knob has a production-shaped default).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Engine worker threads (0 = resolve automatically).
    pub engine_threads: usize,
    /// IO worker threads parsing requests and writing responses.
    pub io_threads: usize,
    /// Admission-queue capacity; pushes beyond it shed with 503.
    pub queue_capacity: usize,
    /// Deadline applied to queries that do not send `deadline_ms`.
    pub default_deadline: Duration,
    /// Upper cap on client-supplied deadlines.
    pub max_deadline: Duration,
    /// Socket read/write timeout (slow-loris bound).
    pub socket_timeout: Duration,
    /// Max accepted request body size.
    pub max_body_bytes: usize,
    /// Max jobs the dispatcher hands the engine per batch.
    pub batch_max: usize,
    /// Query ε default (also sizes the index grids).
    pub eps: f64,
    /// Describe neighbourhood radius ρ.
    pub rho: f64,
    /// When set, startup loads the index bundle from this snapshot cache
    /// directory (building and persisting it on a miss) instead of always
    /// rebuilding, turning cold start into I/O time.
    pub index_cache: Option<std::path::PathBuf>,
    /// Fail startup on a corrupt cached snapshot instead of transparently
    /// rebuilding it.
    pub index_cache_strict: bool,
    /// Capture a request-scoped trace for one in every N queued queries
    /// into the recent-requests ring (0 = off). Sampled traces are not
    /// embedded in responses — only `"trace": true` embeds.
    pub trace_sample: u64,
    /// Log and count requests slower than this threshold (`None` = off).
    pub slow_query: Option<Duration>,
    /// Recent-requests ring capacity.
    pub ring_capacity: usize,
    /// Fold (compact) the pending ingestion delta into a fresh base once
    /// it holds this many ops (0 = never fold; deltas grow unbounded).
    pub epoch_max_delta: usize,
    /// Append accepted `POST /ingest` ops to this JSON-lines log. At
    /// startup the log is replayed: with `index_cache` set, only lines
    /// newer than the persisted base are re-sealed as the live delta.
    pub ingest_log: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            engine_threads: 0,
            io_threads: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_millis(250),
            max_deadline: Duration::from_secs(10),
            socket_timeout: Duration::from_secs(2),
            max_body_bytes: 64 * 1024,
            batch_max: 8,
            eps: 5e-4,
            rho: 1e-4,
            index_cache: None,
            index_cache_strict: false,
            trace_sample: 0,
            slow_query: None,
            ring_capacity: 256,
            epoch_max_delta: 4096,
            ingest_log: None,
        }
    }
}

/// Final counters of one [`serve`] run (written by `--stats-json`).
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// TCP connections accepted.
    pub connections: u64,
    /// Requests that parsed successfully.
    pub requests: u64,
    /// Requests shed by admission control (503).
    pub sheds: u64,
    /// Connections rejected at the HTTP edge.
    pub rejected: u64,
    /// Queries that returned partial (deadline-expired) results.
    pub partials: u64,
    /// Query evaluations that returned an error response.
    pub errors: u64,
    /// Worker panics caught by the isolation guard.
    pub panics: u64,
    /// True when the server drained cleanly on shutdown.
    pub drained: bool,
}

impl ServeReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonWriter::object();
        obj.field_u64("connections", self.connections);
        obj.field_u64("requests", self.requests);
        obj.field_u64("sheds", self.sheds);
        obj.field_u64("rejected", self.rejected);
        obj.field_u64("partials", self.partials);
        obj.field_u64("errors", self.errors);
        obj.field_u64("panics", self.panics);
        obj.field_bool("drained", self.drained);
        obj.finish()
    }
}

/// Run-local counters (the process-global metrics are cumulative across
/// servers in one process, so the report keeps its own).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    sheds: AtomicU64,
    rejected: AtomicU64,
    partials: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
}

/// A bounded handoff queue of accepted connections.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    cv: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (VecDeque<TcpStream>, bool)> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Hands the stream back when the backlog is full (edge shedding).
    fn try_push(&self, stream: TcpStream) -> std::result::Result<(), TcpStream> {
        let mut state = self.lock();
        if state.1 || state.0.len() >= self.capacity {
            return Err(stream);
        }
        state.0.push_back(stream);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    fn pop(&self, timeout: Duration) -> Option<TcpStream> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            state = match self.cv.wait_timeout(state, remaining) {
                Ok((next, _)) => next,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn close(&self) {
        self.lock().1 = true;
        self.cv.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.lock().1
    }
}

/// One immutable generation of serving state: the folded base structures
/// plus the sealed delta of pending ingestion ops. Published through
/// [`EpochedIndex`]; readers pin one epoch per request (or per dispatch
/// batch) and never take a lock or observe a torn swap.
struct EpochState {
    /// Monotone epoch id (0 = the boot base; +1 per ingest batch or fold).
    epoch: u64,
    /// The base dataset this epoch queries against (folded at compaction).
    dataset: Arc<Dataset>,
    index: Arc<PoiIndex>,
    photo_grid: Arc<PhotoGrid>,
    /// Pending ops sealed into a query-ready overlay (`None` when fresh).
    delta: Option<Arc<DeltaIndex>>,
    /// The parsed pending ops; each ingest batch re-seals cumulatively.
    pending_ops: Vec<DeltaOp>,
    /// Raw accepted lines of the pending ops (fold fingerprinting).
    pending_lines: Vec<String>,
    /// Ops-log lines already folded into `dataset`.
    applied_ops: u64,
    /// Fold boundaries within the applied prefix (persisted so a restart
    /// replays the exact same batch splits — fold id-reassignment makes
    /// boundaries semantic, not just bookkeeping).
    boundaries: Vec<u64>,
    /// Running [`soi_index::ops_hasher`] state over the applied prefix;
    /// extended at each fold so no applied line needs retaining.
    applied_hasher: Fnv64,
}

impl EpochState {
    /// Pending delta op count (0 when the delta is `None`).
    fn pending(&self) -> usize {
        self.pending_ops.len()
    }
}

/// Everything the IO workers and dispatcher share.
struct Shared<'a> {
    /// The epoch-swapped serving state (dataset + indexes + delta).
    epochs: &'a EpochedIndex<EpochState>,
    /// Serialises ingest writers; readers never take it.
    ingest_lock: &'a Mutex<()>,
    /// Index build parameters (fold-time rebuilds must match startup).
    params: soi_index::BundleParams,
    /// Where fold-time compaction persists the live snapshot (set when
    /// both `index_cache` and `ingest_log` are configured).
    live_snapshot: Option<std::path::PathBuf>,
    engine: &'a QueryEngine,
    queue: &'a AdmissionQueue,
    config: &'a ServeConfig,
    counters: &'a Counters,
    ring: &'a RequestRing,
    next_request_id: &'a AtomicU64,
    trace_tick: &'a AtomicU64,
    shutdown: &'a AtomicBool,
    started: Instant,
}

/// Runs the server until `shutdown` flips, then drains and reports.
///
/// `on_ready` receives the bound address once the listener is live (so
/// callers binding port 0 learn the real port before traffic starts).
///
/// # Errors
/// Setup failures only (bind, index build); per-request failures are
/// answered over HTTP and never abort the server.
pub fn serve(
    dataset: &Dataset,
    config: &ServeConfig,
    shutdown: &AtomicBool,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<ServeReport> {
    crate::obs::register_metrics();
    soi_engine::obs::register_metrics();
    // Pins the process epoch and registers uptime/build-info/dropped-event
    // series before the first scrape.
    soi_obs::metrics::publish_process_metrics(env!("CARGO_PKG_VERSION"));

    let cell = 2.0 * config.eps;
    let params = soi_index::BundleParams {
        poi_cell: cell,
        pg_cell: cell,
        eps: Some(config.eps),
        with_ir: false,
        threads: config.engine_threads,
    };
    let index_started = Instant::now();
    let cache_mode = if config.index_cache_strict {
        soi_index::CacheMode::Strict
    } else {
        soi_index::CacheMode::Lenient
    };
    // Replay the ingest log (accepted ops from earlier runs). With a
    // snapshot cache the persisted base records how many leading lines it
    // already folded (and at which boundaries); only the newer tail is
    // re-sealed as the live delta. Without a cache the whole log becomes
    // one pending delta over the raw dataset.
    let log_lines: Vec<String> = match &config.ingest_log {
        Some(path) if path.exists() => std::fs::read_to_string(path)
            .map_err(|e| SoiError::io(e, path.clone()).with_context("reading the ingest log"))?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .collect(),
        _ => Vec::new(),
    };
    let mut applied_ops = 0u64;
    let mut boundaries: Vec<u64> = Vec::new();
    let (base_dataset, bundle) = match &config.index_cache {
        None => (dataset.clone(), soi_index::build_bundle(dataset, &params)),
        Some(dir) => {
            let cache = soi_index::IndexCache::new(dir.clone(), cache_mode);
            let (folded, bundle, outcome) = if config.ingest_log.is_some() {
                let load = cache.load_or_build_ingested(dataset, &params, &log_lines)?;
                applied_ops = load.meta.applied_ops;
                boundaries = load.meta.boundaries;
                (load.dataset, load.bundle, load.outcome)
            } else {
                let (bundle, outcome) = cache.load_or_build(dataset, &params)?;
                (dataset.clone(), bundle, outcome)
            };
            log::event(
                "serve.index_cache",
                match outcome {
                    soi_index::CacheOutcome::Hit => "index bundle loaded from snapshot cache",
                    soi_index::CacheOutcome::MissBuilt => "index bundle built and cached",
                    soi_index::CacheOutcome::RebuiltCorrupt => {
                        "corrupt snapshot discarded; index bundle rebuilt"
                    }
                },
                &[
                    ("dir", Value::Str(&dir.display().to_string())),
                    ("applied_ops", Value::U64(applied_ops)),
                    (
                        "ms",
                        Value::F64(index_started.elapsed().as_secs_f64() * 1e3),
                    ),
                ],
            );
            (folded, bundle)
        }
    };
    let index = Arc::new(bundle.poi);
    let photo_grid = Arc::new(bundle.photo_grid);

    // Seal the unapplied log tail as the live delta of the boot epoch.
    let tail = &log_lines[applied_ops as usize..];
    let mut pending_ops = Vec::with_capacity(tail.len());
    for (i, line) in tail.iter().enumerate() {
        let op = DeltaOp::parse_line(line, &base_dataset.vocab).map_err(|e| {
            SoiError::invalid(format!(
                "ingest log line {}: {e}",
                applied_ops as usize + i + 1
            ))
        })?;
        pending_ops.push(op);
    }
    let delta = match pending_ops.is_empty() {
        true => None,
        false => Some(Arc::new(
            DeltaIndex::seal(
                &index,
                &base_dataset.pois,
                &base_dataset.photos,
                &pending_ops,
            )
            .map_err(|e| e.with_context("sealing the ingest-log tail"))?,
        )),
    };
    let applied_hasher = soi_index::ops_hasher(&log_lines[..applied_ops as usize]);
    let state = EpochState {
        epoch: boundaries.len() as u64 + u64::from(delta.is_some()),
        dataset: Arc::new(base_dataset),
        index,
        photo_grid,
        delta,
        pending_ops,
        pending_lines: tail.to_vec(),
        applied_ops,
        boundaries,
        applied_hasher,
    };
    {
        let metrics = crate::obs::serve_metrics();
        metrics.ingest_epoch.set(state.epoch as f64);
        metrics.ingest_pending.set(state.pending() as f64);
    }
    let epochs = EpochedIndex::new(state);
    let ingest_lock = Mutex::new(());
    let live_snapshot = match (&config.index_cache, &config.ingest_log) {
        (Some(dir), Some(_)) => Some(
            soi_index::IndexCache::new(dir.clone(), cache_mode)
                .live_snapshot_path(dataset, &params),
        ),
        _ => None,
    };
    let engine = QueryEngine::new(config.engine_threads);

    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| SoiError::io(e, &config.addr).with_context("binding the serve listener"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| SoiError::io(e, &config.addr))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| SoiError::io(e, &config.addr))?;

    let queue = AdmissionQueue::new(config.queue_capacity);
    let conns = ConnQueue::new(config.io_threads.max(1) * 2);
    let counters = Counters::default();
    let ring = RequestRing::new(config.ring_capacity);
    let next_request_id = AtomicU64::new(0);
    let trace_tick = AtomicU64::new(0);
    let shared = Shared {
        epochs: &epochs,
        ingest_lock: &ingest_lock,
        params,
        live_snapshot,
        engine: &engine,
        queue: &queue,
        config,
        counters: &counters,
        ring: &ring,
        next_request_id: &next_request_id,
        trace_tick: &trace_tick,
        shutdown,
        started: Instant::now(),
    };

    log::event(
        "serve.ready",
        "listening",
        &[
            ("addr", Value::Str(&local_addr.to_string())),
            ("queue_capacity", Value::U64(config.queue_capacity as u64)),
            ("io_threads", Value::U64(config.io_threads as u64)),
            ("engine_threads", Value::U64(engine.threads() as u64)),
            ("trace_sample", Value::U64(config.trace_sample)),
            ("ring_capacity", Value::U64(config.ring_capacity as u64)),
        ],
    );
    on_ready(local_addr);

    let run = crossbeam::thread::scope(|s| {
        let dispatcher = s.spawn(|_| dispatcher_loop(&shared));
        let workers: Vec<_> = (0..config.io_threads.max(1))
            .map(|_| s.spawn(|_| io_worker_loop(&shared, &conns)))
            .collect();

        accept_loop(&listener, &conns, &shared);

        // Drain: no new connections; finish in-flight ones; then close the
        // admission queue so the dispatcher runs the backlog and exits.
        conns.close();
        for worker in workers {
            let _ = worker.join();
        }
        queue.close();
        let _ = dispatcher.join();
    });
    if run.is_err() {
        // A scope-level panic still produces a report; the panic counter
        // records that something escaped the per-request guards.
        crate::obs::serve_metrics().panics.inc();
        counters.panics.fetch_add(1, Ordering::Relaxed);
    }

    let report = ServeReport {
        connections: counters.connections.load(Ordering::Relaxed),
        requests: counters.requests.load(Ordering::Relaxed),
        sheds: counters.sheds.load(Ordering::Relaxed),
        rejected: counters.rejected.load(Ordering::Relaxed),
        partials: counters.partials.load(Ordering::Relaxed),
        errors: counters.errors.load(Ordering::Relaxed),
        panics: counters.panics.load(Ordering::Relaxed),
        drained: queue.is_drained() && run.is_ok(),
    };
    log::event(
        "serve.drained",
        "server drained",
        &[
            ("requests", Value::U64(report.requests)),
            ("sheds", Value::U64(report.sheds)),
            ("rejected", Value::U64(report.rejected)),
            ("partials", Value::U64(report.partials)),
            ("panics", Value::U64(report.panics)),
        ],
    );
    Ok(report)
}

/// Accepts connections until shutdown; sheds at the edge when the handoff
/// backlog is full.
/// Closes a connection we rejected without reading its full request.
///
/// Closing with unread bytes in the receive buffer makes the kernel send a
/// TCP RST, which can destroy the rejection response before the client
/// reads it. Half-close the write side (flushing the response with a FIN),
/// then drain what the client already sent, bounded by `limit` so a
/// hostile peer cannot hold the worker.
fn graceful_reject_close(stream: &mut TcpStream, limit: Duration) {
    let _ = stream.shutdown(Shutdown::Write);
    let deadline = Instant::now() + limit.min(Duration::from_millis(500));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 4096];
    loop {
        if Instant::now() >= deadline {
            return;
        }
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

fn accept_loop(listener: &TcpListener, conns: &ConnQueue, shared: &Shared<'_>) {
    let metrics = crate::obs::serve_metrics();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                metrics.connections.inc();
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(shared.config.socket_timeout));
                let _ = stream.set_write_timeout(Some(shared.config.socket_timeout));
                if let Err(mut stream) = conns.try_push(stream) {
                    metrics.shed.inc();
                    metrics.shed_window.inc();
                    shared.counters.sheds.fetch_add(1, Ordering::Relaxed);
                    let _ = http::write_error(
                        &mut stream,
                        503,
                        "Service Unavailable",
                        "connection backlog full, shedding load",
                    );
                    graceful_reject_close(&mut stream, shared.config.socket_timeout);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// One IO worker: pops connections and handles them, isolating panics so a
/// poisoned request can never wedge the pool.
fn io_worker_loop(shared: &Shared<'_>, conns: &ConnQueue) {
    let mut scratch = SoiScratch::default();
    loop {
        let Some(mut stream) = conns.pop(Duration::from_millis(50)) else {
            if conns.is_closed() {
                return;
            }
            continue;
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle_connection(shared, &mut stream, &mut scratch);
        }));
        if outcome.is_err() {
            crate::obs::serve_metrics().panics.inc();
            shared.counters.panics.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_error(
                &mut stream,
                500,
                "Internal Server Error",
                "request handler panicked",
            );
            // The scratch may hold state from the interrupted request.
            scratch = SoiScratch::default();
        }
    }
}

/// The HTTP response tuple the router produces.
type HttpTuple = (u16, &'static str, &'static str, String);

/// Per-request observability the router returns alongside the response:
/// what [`finish_request`] folds into the ring record, the windowed
/// instruments, and the slow-query check.
#[derive(Debug, Default)]
struct RequestMeta {
    endpoint: &'static str,
    params: String,
    queue: Duration,
    exec: Duration,
    partial: bool,
    shed: bool,
    error: bool,
    accesses: u64,
    eps_cache_hits: u64,
    eps_cache_misses: u64,
    /// The serving epoch the request executed against (0 when the
    /// request never touched query state).
    epoch: u64,
    trace_json: Option<String>,
    explain_json: Option<String>,
}

fn meta_for(endpoint: &'static str) -> RequestMeta {
    RequestMeta {
        endpoint,
        ..RequestMeta::default()
    }
}

/// Parses and answers one connection (one request: `Connection: close`).
fn handle_connection(shared: &Shared<'_>, stream: &mut TcpStream, scratch: &mut SoiScratch) {
    let metrics = crate::obs::serve_metrics();
    let limits = Limits {
        max_body_bytes: shared.config.max_body_bytes,
        // One socket-timeout interval bounds the whole parse, so even a
        // drip-feed client costs a worker at most that long.
        max_parse_time: shared.config.socket_timeout,
        ..Limits::default()
    };
    let request = match http::read_request(stream, &limits) {
        Ok(request) => request,
        Err(e) => {
            metrics.rejected.inc();
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some((status, reason)) = e.status() {
                let _ = http::write_error(stream, status, reason, &e.describe());
                graceful_reject_close(stream, shared.config.socket_timeout);
            }
            return;
        }
    };
    metrics.requests.inc();
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    // Ids start at 1; 0 means "no request" in the capture plumbing.
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    let started = Instant::now();
    let ((status, reason, content_type, body), meta) =
        soi_obs::trace::with_request_id(request_id, || {
            let _span = soi_obs::trace::span(soi_obs::names::spans::SERVE_REQUEST);
            route(shared, &request, scratch, request_id)
        });
    let id_value = request_id.to_string();
    let _ = http::write_response_with_headers(
        stream,
        status,
        reason,
        content_type,
        body.as_bytes(),
        &[("x-soi-request-id", &id_value)],
    );
    finish_request(shared, request_id, status, started.elapsed(), meta);
}

/// Folds one finished request into the observability surfaces: cumulative
/// and windowed instruments, the recent-requests ring, and the slow-query
/// log.
fn finish_request(
    shared: &Shared<'_>,
    request_id: u64,
    status: u16,
    total: Duration,
    meta: RequestMeta,
) {
    let metrics = crate::obs::serve_metrics();
    metrics.latency.observe_duration(total);
    metrics.latency_window.observe_duration(total);
    match meta.endpoint {
        "/soi" => metrics.soi_latency_window.observe_duration(total),
        "/describe" => metrics.describe_latency_window.observe_duration(total),
        _ => {}
    }
    metrics.requests_window.inc();
    let error = meta.error || (status >= 400 && !meta.shed);
    if meta.shed {
        metrics.shed_window.inc();
    }
    if error {
        metrics.errors_window.inc();
    }
    if meta.partial {
        metrics.partials_window.inc();
    }
    let total_ms = total.as_secs_f64() * 1e3;
    let queue_ms = meta.queue.as_secs_f64() * 1e3;
    let exec_ms = meta.exec.as_secs_f64() * 1e3;
    if shared.config.slow_query.is_some_and(|t| total >= t) {
        metrics.slow_queries.inc();
        log::event(
            "serve.slow_query",
            "request crossed the slow-query threshold",
            &[
                ("request_id", Value::U64(request_id)),
                ("endpoint", Value::Str(meta.endpoint)),
                ("params", Value::Str(&meta.params)),
                ("status", Value::U64(u64::from(status))),
                ("total_ms", Value::F64(total_ms)),
                ("queue_ms", Value::F64(queue_ms)),
                ("exec_ms", Value::F64(exec_ms)),
                ("partial", Value::Bool(meta.partial)),
            ],
        );
    }
    shared.ring.push(RequestRecord {
        id: request_id,
        endpoint: meta.endpoint.to_string(),
        params: meta.params,
        status,
        queue_ms,
        exec_ms,
        total_ms,
        partial: meta.partial,
        shed: meta.shed,
        error,
        accesses: meta.accesses,
        eps_cache_hits: meta.eps_cache_hits,
        eps_cache_misses: meta.eps_cache_misses,
        epoch: meta.epoch,
        trace_json: meta.trace_json,
        explain_json: meta.explain_json,
    });
}

/// Routes one parsed request to its handler.
fn route(
    shared: &Shared<'_>,
    request: &crate::http::Request,
    scratch: &mut SoiScratch,
    request_id: u64,
) -> (HttpTuple, RequestMeta) {
    const JSON: &str = "application/json";
    match (request.method.as_str(), request.path()) {
        ("GET", "/metrics") => {
            // Refresh uptime and the trace dropped-event counter so the
            // scrape reflects now, not startup.
            soi_obs::metrics::publish_process_metrics(env!("CARGO_PKG_VERSION"));
            (
                (
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    soi_obs::metrics::gather(),
                ),
                meta_for("/metrics"),
            )
        }
        ("GET", "/status") => ((200, "OK", JSON, status_body(shared)), meta_for("/status")),
        ("GET", "/debug/requests") => {
            let mut meta = meta_for("/debug/requests");
            meta.params = request.query().unwrap_or("").to_string();
            (debug_requests_list(shared, request), meta)
        }
        ("GET", "/debug/profile") => {
            let mut meta = meta_for("/debug/profile");
            meta.params = request.query().unwrap_or("").to_string();
            (debug_profile(shared, request), meta)
        }
        ("GET", path) if path.starts_with("/debug/requests/") => (
            debug_request_by_id(shared, path),
            meta_for("/debug/requests/<id>"),
        ),
        ("GET", "/explain") => {
            let mut meta = meta_for("/explain");
            meta.params = request.query().unwrap_or("").to_string();
            match explain_inline(shared, request, scratch, request_id) {
                Ok(body) => ((200, "OK", JSON, body), meta),
                Err(e) => (error_tuple(&e), meta),
            }
        }
        ("POST", "/explain") => {
            let mut meta = meta_for("/explain");
            match explain_post(shared, request, scratch, request_id) {
                Ok((body, params)) => {
                    meta.params = params;
                    ((200, "OK", JSON, body), meta)
                }
                Err(e) => (error_tuple(&e), meta),
            }
        }
        ("POST", "/soi") => match submit_soi(shared, request, request_id) {
            Ok(pair) => pair,
            Err(e) => (error_tuple(&e), meta_for("/soi")),
        },
        ("POST", "/describe") => match submit_describe(shared, request, request_id) {
            Ok(pair) => pair,
            Err(e) => (error_tuple(&e), meta_for("/describe")),
        },
        ("POST", "/ingest") => {
            let mut meta = meta_for("/ingest");
            match ingest_post(shared, request, request_id) {
                Ok((body, params, epoch)) => {
                    meta.params = params;
                    meta.epoch = epoch;
                    ((200, "OK", JSON, body), meta)
                }
                Err(e) => {
                    crate::obs::serve_metrics().ingest_rejected.inc();
                    (error_tuple(&e), meta)
                }
            }
        }
        ("GET" | "POST", _) => (
            (
                404,
                "Not Found",
                JSON,
                error_body("no such route", "not-found"),
            ),
            RequestMeta::default(),
        ),
        _ => (
            (
                405,
                "Method Not Allowed",
                JSON,
                error_body("unsupported method", "usage"),
            ),
            RequestMeta::default(),
        ),
    }
}

/// `GET /debug/requests/<id>`: one ring record with artifacts embedded.
fn debug_request_by_id(shared: &Shared<'_>, path: &str) -> HttpTuple {
    const JSON: &str = "application/json";
    let raw = &path["/debug/requests/".len()..];
    match raw.parse::<u64>() {
        Ok(id) => match shared.ring.get(id) {
            Some(record) => (200, "OK", JSON, record.to_json(true)),
            None => (
                404,
                "Not Found",
                JSON,
                error_body(
                    "request not in the ring (evicted or never seen)",
                    "not-found",
                ),
            ),
        },
        Err(_) => (
            400,
            "Bad Request",
            JSON,
            error_body("request id must be an integer", "usage"),
        ),
    }
}

/// `GET /debug/requests[?limit=N][&endpoint=soi|describe|explain]`: the
/// ring listing, optionally truncated and/or filtered by endpoint.
fn debug_requests_list(shared: &Shared<'_>, request: &crate::http::Request) -> HttpTuple {
    const JSON: &str = "application/json";
    let mut limit: Option<usize> = None;
    let mut endpoint: Option<&'static str> = None;
    for pair in request
        .query()
        .unwrap_or("")
        .split('&')
        .filter(|p| !p.is_empty())
    {
        let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
        match name {
            "limit" => match value.parse::<usize>() {
                Ok(n) => limit = Some(n),
                Err(_) => {
                    return (
                        400,
                        "Bad Request",
                        JSON,
                        error_body("limit must be a non-negative integer", "usage"),
                    );
                }
            },
            "endpoint" => {
                // Short names map onto the endpoint strings the ring
                // records (`/explain` covers both GET and POST forms).
                endpoint = match value {
                    "soi" => Some("/soi"),
                    "describe" => Some("/describe"),
                    "explain" => Some("/explain"),
                    _ => {
                        return (
                            400,
                            "Bad Request",
                            JSON,
                            error_body("endpoint must be soi, describe, or explain", "usage"),
                        );
                    }
                };
            }
            other => {
                return (
                    400,
                    "Bad Request",
                    JSON,
                    error_body(&format!("unknown parameter {other:?}"), "usage"),
                );
            }
        }
    }
    (200, "OK", JSON, shared.ring.list_json(limit, endpoint))
}

/// `GET /debug/profile?seconds=N[&hz=R][&format=folded|svg|json]`: profiles
/// a live window under traffic and returns the artifact. One window at a
/// time process-wide — an overlapping request answers 503. The window
/// blocks this IO worker only; traffic keeps flowing on the others.
fn debug_profile(shared: &Shared<'_>, request: &crate::http::Request) -> HttpTuple {
    const JSON: &str = "application/json";
    let mut seconds = 5u64;
    let mut hz = soi_obs::profile::DEFAULT_HZ;
    let mut format: Option<&str> = None;
    for pair in request
        .query()
        .unwrap_or("")
        .split('&')
        .filter(|p| !p.is_empty())
    {
        let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
        match name {
            "seconds" => match value.parse::<u64>() {
                Ok(n) if (1..=60).contains(&n) => seconds = n,
                _ => {
                    return (
                        400,
                        "Bad Request",
                        JSON,
                        error_body("seconds must be an integer in [1, 60]", "usage"),
                    );
                }
            },
            "hz" => match value.parse::<u32>() {
                Ok(n) => hz = n,
                Err(_) => {
                    return (
                        400,
                        "Bad Request",
                        JSON,
                        error_body("hz must be a positive integer", "usage"),
                    );
                }
            },
            "format" => match value {
                "folded" | "svg" | "json" => format = Some(value),
                _ => {
                    return (
                        400,
                        "Bad Request",
                        JSON,
                        error_body("format must be folded, svg, or json", "usage"),
                    );
                }
            },
            other => {
                return (
                    400,
                    "Bad Request",
                    JSON,
                    error_body(&format!("unknown parameter {other:?}"), "usage"),
                );
            }
        }
    }
    // Format by explicit param first, `Accept` second, folded text last.
    let format = format.unwrap_or_else(|| {
        let accept = request.header("accept").unwrap_or("");
        if accept.contains("image/svg") {
            "svg"
        } else if accept.contains("application/json") {
            "json"
        } else {
            "folded"
        }
    });
    match soi_obs::profile::start(hz) {
        Ok(()) => {}
        Err(soi_obs::profile::StartError::AlreadyRunning) => {
            return (
                503,
                "Service Unavailable",
                JSON,
                error_body(
                    "a profiling window is already running; retry when it finishes",
                    "overload",
                ),
            );
        }
        Err(e) => {
            return (
                400,
                "Bad Request",
                JSON,
                error_body(&e.to_string(), "usage"),
            );
        }
    }
    // Shutdown still drains promptly: sleep in slices and cut the window
    // short when the drain flag flips.
    let deadline = Instant::now() + Duration::from_secs(seconds);
    while Instant::now() < deadline && !shared.shutdown.load(Ordering::SeqCst) {
        let left = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(left.min(Duration::from_millis(100)));
    }
    let Some(report) = soi_obs::profile::stop() else {
        // Somebody else stopped the session mid-window (e.g. shutdown).
        return (
            503,
            "Service Unavailable",
            JSON,
            error_body("profiling window was interrupted", "overload"),
        );
    };
    match format {
        "svg" => (200, "OK", "image/svg+xml", report.flamegraph_svg()),
        "json" => (200, "OK", JSON, report.to_json()),
        _ => (200, "OK", "text/plain; charset=utf-8", report.folded_text()),
    }
}

/// Maps a [`SoiError`] to an HTTP response tuple.
fn error_tuple(e: &SoiError) -> HttpTuple {
    let (status, reason) = match e.category() {
        ErrorCategory::Usage | ErrorCategory::Data => (400, "Bad Request"),
        ErrorCategory::NotFound => (404, "Not Found"),
        ErrorCategory::Io => (500, "Internal Server Error"),
    };
    (
        status,
        reason,
        "application/json",
        error_body(&e.to_string(), &e.category().to_string()),
    )
}

fn error_body(message: &str, category: &str) -> String {
    let mut obj = JsonWriter::object();
    obj.field_str("error", message);
    obj.field_str("category", category);
    obj.finish()
}

fn status_body(shared: &Shared<'_>) -> String {
    let draining = shared.shutdown.load(Ordering::SeqCst);
    let metrics = crate::obs::serve_metrics();
    let state = shared.epochs.pin();
    let mut obj = JsonWriter::object();
    obj.field_str("status", if draining { "draining" } else { "serving" });
    obj.field_str("dataset", &state.dataset.name);
    // The live-ingestion epoch: monotone across ingest batches and folds.
    let mut epoch = JsonWriter::object();
    epoch.field_u64("id", state.epoch);
    epoch.field_u64("pending_ops", state.pending() as u64);
    epoch.field_u64("applied_ops", state.applied_ops);
    epoch.field_u64("folds", state.boundaries.len() as u64);
    if let Some(delta) = &state.delta {
        epoch.field_u64("delta_added_pois", delta.added_pois().len() as u64);
        epoch.field_u64("delta_added_photos", delta.added_photos().len() as u64);
        epoch.field_u64("delta_deleted_pois", delta.num_deleted_pois() as u64);
        epoch.field_u64("delta_deleted_photos", delta.num_deleted_photos() as u64);
    }
    obj.field_raw("epoch", &epoch.finish());
    obj.field_u64("queue_depth", shared.queue.depth() as u64);
    obj.field_u64("queue_capacity", shared.queue.capacity() as u64);
    obj.field_u64("engine_threads", shared.engine.threads() as u64);
    obj.field_u64("requests", shared.counters.requests.load(Ordering::Relaxed));
    obj.field_u64("sheds", shared.counters.sheds.load(Ordering::Relaxed));
    obj.field_u64("partials", shared.counters.partials.load(Ordering::Relaxed));
    obj.field_f64("uptime_seconds", shared.started.elapsed().as_secs_f64());
    // The rolling-window SLO summary (what is happening *now*, as opposed
    // to the cumulative counters above).
    let mut window = JsonWriter::object();
    window.field_u64("window_seconds", metrics.latency_window.window_secs());
    window.field_u64("requests", metrics.requests_window.sum());
    window.field_u64("sheds", metrics.shed_window.sum());
    window.field_u64("errors", metrics.errors_window.sum());
    window.field_u64("partials", metrics.partials_window.sum());
    let snap = metrics.latency_window.snapshot();
    for (key, q) in [
        ("latency_p50_ms", 0.5),
        ("latency_p95_ms", 0.95),
        ("latency_p99_ms", 0.99),
    ] {
        match snap.quantile(q) {
            Some(v) => window.field_f64(key, v * 1e3),
            None => window.field_raw(key, "null"),
        }
    }
    obj.field_raw("window", &window.finish());
    // The most recent profiling window (if any): top self-time frames, so
    // /status answers "where does time go" without re-profiling.
    obj.field_bool("profiling", soi_obs::profile::active());
    if let Some(report) = soi_obs::profile::last_report() {
        let mut prof = JsonWriter::object();
        prof.field_u64("hz", u64::from(report.hz));
        prof.field_f64("duration_secs", report.duration_secs);
        prof.field_u64("samples", report.samples);
        prof.field_u64("idle_samples", report.idle_samples);
        prof.field_u64("dropped_samples", report.dropped_samples);
        let mut top = JsonWriter::array();
        for frame in report.frames.iter().take(5) {
            let mut row = JsonWriter::object();
            row.field_str("name", &frame.name);
            row.field_u64("self_samples", frame.self_samples);
            row.field_u64("total_samples", frame.total_samples);
            row.field_f64("self_secs", report.samples_to_secs(frame.self_samples));
            top.elem_raw(&row.finish());
        }
        prof.field_raw("top_self", &top.finish());
        obj.field_raw("profile", &prof.finish());
    }
    obj.finish()
}

/// `GET /explain?keywords=a,b&k=10&eps=0.0005`: runs the query inline with
/// the explain collector (a debugging route — unlimited budget, not queued).
fn explain_inline(
    shared: &Shared<'_>,
    request: &crate::http::Request,
    scratch: &mut SoiScratch,
    request_id: u64,
) -> Result<String> {
    let query = {
        let state = shared.epochs.pin();
        shared
            .config
            .parse_query_string(&state.dataset, request.query().unwrap_or(""))?
    };
    explain_response(shared, &query, scratch, request_id)
}

/// `POST /explain`: the same JSON body schema as `/soi` (one parse path),
/// run inline with the explain collector.
fn explain_post(
    shared: &Shared<'_>,
    request: &crate::http::Request,
    scratch: &mut SoiScratch,
    request_id: u64,
) -> Result<(String, String)> {
    let body = parse_body(&request.body)?;
    let (query, digest) = {
        let state = shared.epochs.pin();
        parse_soi_query(shared.config, &state.dataset, &body)?
    };
    let response = explain_response(shared, &query, scratch, request_id)?;
    Ok((response, digest))
}

/// Runs `query` inline with the explain collector and renders the shared
/// `/explain` response shape.
fn explain_response(
    shared: &Shared<'_>,
    query: &SoiQuery,
    scratch: &mut SoiScratch,
    request_id: u64,
) -> Result<String> {
    let mut explain = SoiExplain::default();
    // Pin one epoch for the whole explained run: base + delta views stay
    // coherent even if an ingest swap lands mid-query.
    let state = shared.epochs.pin();
    let poi_view: soi_data::PoiView<'_> = match &state.delta {
        Some(delta) => delta.poi_view(&state.dataset.pois),
        None => (&state.dataset.pois).into(),
    };
    let outcome = run_soi_explained(
        &state.dataset.network,
        poi_view,
        soi_index::IndexView::new(&state.index, state.delta.as_deref()),
        query,
        &Default::default(),
        scratch,
        Some(&mut explain),
    )?;
    let mut obj = JsonWriter::object();
    obj.field_u64("request_id", request_id);
    obj.field_u64("epoch", state.epoch);
    obj.field_raw("explain", &explain.to_json());
    obj.field_raw("outcome", &soi_outcome_body(&state.dataset, &outcome, None));
    Ok(obj.finish())
}

impl ServeConfig {
    /// Parses `keywords=a,b&k=10&eps=0.0005` into a validated query.
    fn parse_query_string(&self, dataset: &Dataset, raw: &str) -> Result<SoiQuery> {
        let mut keywords = None;
        let mut k = 10usize;
        let mut eps = self.eps;
        for pair in raw.split('&').filter(|p| !p.is_empty()) {
            let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
            match name {
                "keywords" => keywords = Some(value.to_string()),
                "k" => {
                    k = value
                        .parse()
                        .map_err(|_| SoiError::invalid(format!("bad k {value:?}")))?;
                }
                "eps" => {
                    eps = value
                        .parse()
                        .map_err(|_| SoiError::invalid(format!("bad eps {value:?}")))?;
                }
                other => {
                    return Err(SoiError::invalid(format!("unknown parameter {other:?}")));
                }
            }
        }
        let raw_kws = keywords.ok_or_else(|| SoiError::invalid("missing keywords= parameter"))?;
        let words: Vec<&str> = raw_kws
            .split(',')
            .map(str::trim)
            .filter(|w| !w.is_empty())
            .collect();
        if words.is_empty() {
            return Err(SoiError::invalid("keywords= names no keywords"));
        }
        SoiQuery::new(dataset.query_keywords(&words), k, eps)
    }
}

/// Resolves the request's deadline: `deadline_ms` clamped to the cap, or
/// the server default.
fn request_budget(config: &ServeConfig, body: &Json) -> Result<QueryBudget> {
    let timeout = match body.get("deadline_ms") {
        None => config.default_deadline,
        Some(v) => {
            let ms = v
                .as_f64()
                .filter(|ms| *ms > 0.0 && ms.is_finite())
                .ok_or_else(|| SoiError::invalid("deadline_ms must be a positive number"))?;
            Duration::from_secs_f64(ms / 1e3).min(config.max_deadline)
        }
    };
    Ok(QueryBudget::from_timeout(timeout))
}

/// Parses the `/soi` (and `POST /explain`) JSON body into a validated
/// query plus a short human-readable parameter digest for the ring.
fn parse_soi_query(
    config: &ServeConfig,
    dataset: &Dataset,
    body: &Json,
) -> Result<(SoiQuery, String)> {
    let words: Vec<&str> = match body.get("keywords").and_then(|v| v.as_arr()) {
        Some(items) if !items.is_empty() => {
            let words: Vec<&str> = items.iter().filter_map(|v| v.as_str()).collect();
            if words.len() != items.len() {
                return Err(SoiError::invalid("keywords must be an array of strings"));
            }
            words
        }
        _ => return Err(SoiError::invalid("body needs a keywords array")),
    };
    let k = match body.get("k") {
        None => 10,
        Some(v) => v
            .as_f64()
            .filter(|k| *k >= 1.0 && k.fract() == 0.0)
            .ok_or_else(|| SoiError::invalid("k must be a positive integer"))?
            as usize,
    };
    let eps = match body.get("eps") {
        None => config.eps,
        Some(v) => v
            .as_f64()
            .ok_or_else(|| SoiError::invalid("eps must be a number"))?,
    };
    let digest = format!("keywords=[{}] k={k} eps={eps}", words.join(","));
    let keywords = dataset.query_keywords(&words);
    Ok((SoiQuery::new(keywords, k, eps)?, digest))
}

/// Reads an optional boolean capture flag (`"trace"` / `"explain"`).
fn capture_flag(body: &Json, name: &str) -> Result<bool> {
    match body.get(name) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| SoiError::invalid(format!("{name} must be a boolean"))),
    }
}

/// Advances the sampling tick; true when this query is the 1-in-N sample.
fn sampled_trace(shared: &Shared<'_>) -> bool {
    let n = shared.config.trace_sample;
    n > 0
        && shared
            .trace_tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(n)
}

/// Parses the body, admits a k-SOI job, and waits for its response.
fn submit_soi(
    shared: &Shared<'_>,
    request: &crate::http::Request,
    request_id: u64,
) -> Result<(HttpTuple, RequestMeta)> {
    let body = parse_body(&request.body)?;
    let (query, params) = {
        let state = shared.epochs.pin();
        parse_soi_query(shared.config, &state.dataset, &body)?
    };
    let budget = request_budget(shared.config, &body)?;
    let submission = Submission {
        endpoint: "/soi",
        params,
        kind: JobKind::Soi(query),
        budget,
        request_id,
        embed_trace: capture_flag(&body, "trace")?,
        embed_explain: capture_flag(&body, "explain")?,
        sampled: sampled_trace(shared),
    };
    Ok(submit_and_wait(shared, submission))
}

/// Parses the body, admits a describe job, and waits for its response.
fn submit_describe(
    shared: &Shared<'_>,
    request: &crate::http::Request,
    request_id: u64,
) -> Result<(HttpTuple, RequestMeta)> {
    let body = parse_body(&request.body)?;
    // Street ids and names live in the road network, which is static
    // across epochs — resolving against any pinned epoch is sound.
    let state = shared.epochs.pin();
    let street = match body.get("street") {
        Some(Json::Str(name)) => state
            .dataset
            .street_by_name(name)
            .ok_or_else(|| SoiError::not_found(format!("street {name:?}")))?,
        Some(Json::Num(id)) => {
            let idx = *id as usize;
            if id.fract() != 0.0 || idx >= state.dataset.network.streets().len() {
                return Err(SoiError::not_found(format!("street id {id}")));
            }
            state.dataset.network.streets()[idx].id
        }
        _ => return Err(SoiError::invalid("body needs a street (name or id)")),
    };
    drop(state);
    let number = |name: &str, default: f64| -> Result<f64> {
        match body.get(name) {
            None => Ok(default),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| SoiError::invalid(format!("{name} must be a number"))),
        }
    };
    let k = number("k", 5.0)?;
    if k < 1.0 || k.fract() != 0.0 {
        return Err(SoiError::invalid("k must be a positive integer"));
    }
    let lambda = number("lambda", 0.5)?;
    let w = number("w", 0.5)?;
    let params = DescribeParams::new(k as usize, lambda, w)?;
    let budget = request_budget(shared.config, &body)?;
    let submission = Submission {
        endpoint: "/describe",
        params: format!(
            "street={} k={k} lambda={lambda} w={w}",
            u64::from(street.raw())
        ),
        kind: JobKind::Describe { street, params },
        budget,
        request_id,
        embed_trace: capture_flag(&body, "trace")?,
        embed_explain: capture_flag(&body, "explain")?,
        sampled: sampled_trace(shared),
    };
    Ok(submit_and_wait(shared, submission))
}

/// `POST /ingest`: a JSON-lines body of delta ops, accepted or rejected
/// as one atomic batch.
///
/// Writers serialise on `ingest_lock`; readers never block — the new
/// epoch is published with an `Arc` swap and in-flight queries keep the
/// epoch they pinned. Each accepted batch re-seals the cumulative
/// pending ops into a fresh [`DeltaIndex`]; once the pending set reaches
/// `epoch_max_delta`, the delta is folded into a new base (equivalent to
/// a full rebuild over the merged data) and the fold is persisted to the
/// live snapshot when an index cache is configured.
///
/// Returns `(response body, ring params digest, epoch id)`.
fn ingest_post(
    shared: &Shared<'_>,
    request: &crate::http::Request,
    request_id: u64,
) -> Result<(String, String, u64)> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| SoiError::invalid("ingest body must be UTF-8 JSON lines"))?;
    let guard = match shared.ingest_lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let state = shared.epochs.pin();

    // Parse every line against the (static) vocabulary; one bad line
    // rejects the whole batch with nothing applied.
    let mut new_ops = Vec::new();
    let mut new_lines = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let op = DeltaOp::parse_line(line, &state.dataset.vocab)
            .map_err(|e| SoiError::invalid(format!("ingest line {}: {e}", i + 1)))?;
        new_ops.push(op);
        new_lines.push(line.to_string());
    }
    if new_ops.is_empty() {
        return Err(SoiError::invalid("ingest body contains no ops"));
    }
    let accepted = new_ops.len();

    // Re-seal the cumulative pending set. Sealing validates the combined
    // op stream atomically (unknown ids, double deletes, out-of-extent
    // adds), so a rejected batch leaves the serving state untouched.
    let mut ops = state.pending_ops.clone();
    ops.extend(new_ops);
    let delta = DeltaIndex::seal(
        &state.index,
        &state.dataset.pois,
        &state.dataset.photos,
        &ops,
    )?;

    // Durability before visibility: the accepted lines hit the log before
    // the epoch swap, so a crash can lose an un-acked batch but never
    // serve ops a restart would not replay.
    if let Some(path) = &shared.config.ingest_log {
        append_ingest_lines(path, &new_lines)?;
    }
    let mut lines = state.pending_lines.clone();
    lines.extend(new_lines);

    let fold_due = shared.config.epoch_max_delta > 0 && ops.len() >= shared.config.epoch_max_delta;
    let (next, folded) = if fold_due {
        (fold_epoch(shared, &state, &ops, &lines)?, true)
    } else {
        let next = EpochState {
            epoch: state.epoch + 1,
            dataset: Arc::clone(&state.dataset),
            index: Arc::clone(&state.index),
            photo_grid: Arc::clone(&state.photo_grid),
            delta: Some(Arc::new(delta)),
            pending_ops: ops,
            pending_lines: lines,
            applied_ops: state.applied_ops,
            boundaries: state.boundaries.clone(),
            applied_hasher: state.applied_hasher.clone(),
        };
        (next, false)
    };

    let metrics = crate::obs::serve_metrics();
    metrics.ingest_batches.inc();
    metrics.ingest_ops.add(accepted as u64);
    if folded {
        metrics.ingest_folds.inc();
    }
    metrics.ingest_epoch.set(next.epoch as f64);
    metrics.ingest_pending.set(next.pending() as f64);

    let mut obj = JsonWriter::object();
    obj.field_u64("request_id", request_id);
    obj.field_u64("accepted", accepted as u64);
    obj.field_u64("epoch", next.epoch);
    obj.field_u64("pending_ops", next.pending() as u64);
    obj.field_u64("applied_ops", next.applied_ops);
    obj.field_bool("folded", folded);
    let epoch = next.epoch;
    let digest = format!("ops={accepted} folded={folded}");
    shared.epochs.swap(Arc::new(next));
    drop(state);
    drop(guard);
    Ok((obj.finish(), digest, epoch))
}

/// Compacts the cumulative pending ops into a fresh base epoch: fold the
/// collections, rebuild the indexes with the boot parameters (the result
/// is bit-identical to a cold build over the merged data), extend the
/// applied-prefix bookkeeping, and persist the live snapshot so a restart
/// replays only newer deltas.
fn fold_epoch(
    shared: &Shared<'_>,
    state: &EpochState,
    ops: &[DeltaOp],
    lines: &[String],
) -> Result<EpochState> {
    let fold_started = Instant::now();
    let (pois, photos) = soi_index::fold_ops(&state.dataset.pois, &state.dataset.photos, ops)?;
    let dataset = Dataset::new(
        state.dataset.name.clone(),
        state.dataset.network.clone(),
        state.dataset.vocab.clone(),
        pois,
        photos,
    );
    let bundle = soi_index::build_bundle(&dataset, &shared.params);

    let mut applied_hasher = state.applied_hasher.clone();
    for line in lines {
        applied_hasher.write_str(line.trim());
    }
    let applied_ops = state.applied_ops + lines.len() as u64;
    let mut boundaries = state.boundaries.clone();
    boundaries.push(applied_ops);

    if let Some(path) = &shared.live_snapshot {
        let meta = soi_index::IngestMeta {
            epoch: boundaries.len() as u64,
            applied_ops,
            ops_fp: applied_hasher.clone().finish(),
            boundaries: boundaries.clone(),
        };
        // A failed write degrades restart (the whole log replays as one
        // batch against the last good snapshot) but must not fail the
        // ingest: the fold already happened in memory.
        if let Err(e) =
            soi_index::write_bundle_ingested(path, &dataset, &bundle, &shared.params, &meta)
        {
            log::event(
                "serve.ingest_snapshot_failed",
                "live snapshot write failed; restart will replay the full log",
                &[
                    ("path", Value::Str(&path.display().to_string())),
                    ("error", Value::Str(&e.to_string())),
                ],
            );
        }
    }
    log::event(
        "serve.epoch_fold",
        "pending delta folded into a fresh base",
        &[
            ("epoch", Value::U64(state.epoch + 1)),
            ("ops", Value::U64(ops.len() as u64)),
            ("applied_ops", Value::U64(applied_ops)),
            ("ms", Value::F64(fold_started.elapsed().as_secs_f64() * 1e3)),
        ],
    );
    let IndexBundle {
        poi, photo_grid, ..
    } = bundle;
    Ok(EpochState {
        epoch: state.epoch + 1,
        dataset: Arc::new(dataset),
        index: Arc::new(poi),
        photo_grid: Arc::new(photo_grid),
        delta: None,
        pending_ops: Vec::new(),
        pending_lines: Vec::new(),
        applied_ops,
        boundaries,
        applied_hasher,
    })
}

/// Appends accepted ingest lines to the durable ops log (fsync'd so an
/// acked batch survives a crash).
fn append_ingest_lines(path: &std::path::Path, lines: &[String]) -> Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| SoiError::io(e, path.to_path_buf()).with_context("opening the ingest log"))?;
    let mut buf = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in lines {
        buf.push_str(line);
        buf.push('\n');
    }
    file.write_all(buf.as_bytes())
        .and_then(|()| file.sync_data())
        .map_err(|e| SoiError::io(e, path.to_path_buf()).with_context("appending the ingest log"))
}

fn parse_body(bytes: &[u8]) -> Result<Json> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| SoiError::invalid("body must be UTF-8 JSON"))?;
    if text.trim().is_empty() {
        return Err(SoiError::invalid("body must be a JSON object"));
    }
    soi_obs::json::parse(text).map_err(|e| SoiError::invalid(format!("bad JSON body: {e}")))
}

/// One parsed query request on its way into the admission queue.
struct Submission {
    endpoint: &'static str,
    params: String,
    kind: JobKind,
    budget: QueryBudget,
    request_id: u64,
    /// `"trace": true` — capture a request trace and embed it.
    embed_trace: bool,
    /// `"explain": true` — run the explain collector and embed its rows.
    embed_explain: bool,
    /// The 1-in-N sample: capture a trace into the ring, don't embed.
    sampled: bool,
}

/// Splices `request_id` (and, when explicitly requested, the captured
/// trace/explain artifacts) into an already-rendered JSON object body.
fn embed_response_fields(
    body: String,
    request_id: u64,
    trace: Option<&str>,
    explain: Option<&str>,
) -> String {
    let Some(pos) = body.rfind('}') else {
        return body;
    };
    let mut fields = format!("\"request_id\":{request_id}");
    if let Some(trace) = trace {
        fields.push_str(",\"trace\":");
        fields.push_str(trace);
    }
    if let Some(explain) = explain {
        fields.push_str(",\"explain\":");
        fields.push_str(explain);
    }
    let insert = if body[..pos].trim_end().ends_with('{') {
        fields
    } else {
        format!(",{fields}")
    };
    let mut out = body;
    out.insert_str(pos, &insert);
    out
}

/// Admits the job (shedding with 503 when the queue is full) and waits for
/// the dispatcher's response.
fn submit_and_wait(shared: &Shared<'_>, submission: Submission) -> (HttpTuple, RequestMeta) {
    const JSON: &str = "application/json";
    let metrics = crate::obs::serve_metrics();
    let slot = Arc::new(Slot::default());
    let budget = submission.budget;
    let job = Job {
        kind: submission.kind,
        budget,
        slot: Arc::clone(&slot),
        enqueued: Instant::now(),
        request_id: submission.request_id,
        trace: submission.embed_trace || submission.sampled,
        explain: submission.embed_explain,
    };
    if shared.queue.try_push(job).is_err() {
        metrics.shed.inc();
        shared.counters.sheds.fetch_add(1, Ordering::Relaxed);
        let mut obj = JsonWriter::object();
        obj.field_str("error", "admission queue full, shedding load");
        obj.field_u64("request_id", submission.request_id);
        obj.field_u64("queue_depth", shared.queue.depth() as u64);
        obj.field_u64("queue_capacity", shared.queue.capacity() as u64);
        let meta = RequestMeta {
            endpoint: submission.endpoint,
            params: submission.params,
            shed: true,
            ..RequestMeta::default()
        };
        return ((503, "Service Unavailable", JSON, obj.finish()), meta);
    }
    // Backstop only: the dispatcher answers every admitted job (deadlines
    // bound the work), so this grace window fires only if it died.
    let grace = budget.remaining().unwrap_or(shared.config.max_deadline) + Duration::from_secs(30);
    match slot.wait(grace) {
        Some((status, body, slot_meta)) => {
            let reason = match status {
                200 => "OK",
                400 => "Bad Request",
                404 => "Not Found",
                _ => "Internal Server Error",
            };
            // Sampled captures stay ring-only; explicit asks embed.
            let body = if status == 200 {
                embed_response_fields(
                    body,
                    submission.request_id,
                    submission
                        .embed_trace
                        .then_some(slot_meta.trace_json.as_deref())
                        .flatten(),
                    submission
                        .embed_explain
                        .then_some(slot_meta.explain_json.as_deref())
                        .flatten(),
                )
            } else {
                body
            };
            let meta = RequestMeta {
                endpoint: submission.endpoint,
                params: submission.params,
                queue: slot_meta.queue,
                exec: slot_meta.exec,
                partial: slot_meta.partial,
                shed: false,
                error: slot_meta.error,
                accesses: slot_meta.accesses,
                eps_cache_hits: slot_meta.eps_cache_hits,
                eps_cache_misses: slot_meta.eps_cache_misses,
                epoch: slot_meta.epoch,
                trace_json: slot_meta.trace_json,
                explain_json: slot_meta.explain_json,
            };
            ((status, reason, JSON, body), meta)
        }
        None => (
            (
                500,
                "Internal Server Error",
                JSON,
                error_body("dispatcher did not answer in time", "io"),
            ),
            RequestMeta {
                endpoint: submission.endpoint,
                params: submission.params,
                error: true,
                ..RequestMeta::default()
            },
        ),
    }
}

/// The dispatcher: drains admitted jobs in batches and executes them on
/// the engine under their per-request deadlines.
fn dispatcher_loop(shared: &Shared<'_>) {
    loop {
        let batch = shared
            .queue
            .pop_batch(shared.config.batch_max, Duration::from_millis(100));
        if batch.is_empty() {
            if shared.queue.is_drained() {
                return;
            }
            continue;
        }
        let _span = soi_obs::trace::span(soi_obs::names::spans::SERVE_DISPATCH);
        let claimed = Instant::now();
        let mut soi_jobs: Vec<(SoiQuery, QueryBudget, QueryCapture)> = Vec::new();
        let mut soi_slots: Vec<(Arc<Slot>, Duration)> = Vec::new();
        let mut describe_jobs: Vec<(
            soi_common::StreetId,
            DescribeParams,
            QueryBudget,
            QueryCapture,
        )> = Vec::new();
        let mut describe_slots: Vec<(Arc<Slot>, Duration)> = Vec::new();
        for job in batch {
            let queue_wait = claimed.saturating_duration_since(job.enqueued);
            let capture = QueryCapture {
                request_id: job.request_id,
                trace: job.trace,
                explain: job.explain,
            };
            match job.kind {
                JobKind::Soi(query) => {
                    soi_jobs.push((query, job.budget, capture));
                    soi_slots.push((job.slot, queue_wait));
                }
                JobKind::Describe { street, params } => {
                    describe_jobs.push((street, params, job.budget, capture));
                    describe_slots.push((job.slot, queue_wait));
                }
            }
        }

        // Pin one epoch for the whole batch: every job in it sees one
        // coherent base+delta state, and an ingest swap landing mid-batch
        // only affects later batches (in-flight readers keep their Arc).
        let state = shared.epochs.pin();
        if !soi_jobs.is_empty() {
            let ctx = Arc::new(QueryContext::with_delta(
                &state.dataset.network,
                &state.dataset.pois,
                &state.index,
                state.delta.as_deref(),
                state.epoch,
            ));
            // ε-cache deltas are batch-granular: the cache is shared across
            // the batch's worker threads, so the delta is attributed to
            // every job dispatched in it.
            let (hits_before, misses_before, _) = soi_index::obs::epsilon_cache_counters();
            let outcome = shared.engine.run_soi_batch_captured(&ctx, &soi_jobs);
            let (hits_after, misses_after, _) = soi_index::obs::epsilon_cache_counters();
            let eps_cache_hits = hits_after.saturating_sub(hits_before);
            let eps_cache_misses = misses_after.saturating_sub(misses_before);
            // `query_latencies` holds successes only, in input order.
            let mut latencies = outcome.telemetry.query_latencies.iter();
            for ((result, artifacts), (slot, queue_wait)) in outcome
                .results
                .into_iter()
                .zip(outcome.captures)
                .zip(&soi_slots)
            {
                let exec = if result.is_ok() {
                    latencies.next().copied().unwrap_or_default()
                } else {
                    Duration::ZERO
                };
                let meta = SlotMeta {
                    queue: *queue_wait,
                    exec,
                    eps_cache_hits,
                    eps_cache_misses,
                    epoch: state.epoch,
                    ..SlotMeta::default()
                };
                publish_soi(shared, &state.dataset, result, slot, meta, artifacts);
            }
        }
        if !describe_jobs.is_empty() {
            run_describe_jobs(shared, &state, &describe_jobs, &describe_slots);
        }
    }
}

/// Builds street contexts and runs the describe sub-batch; jobs whose
/// context cannot be built answer their error individually.
fn run_describe_jobs(
    shared: &Shared<'_>,
    state: &EpochState,
    jobs: &[(
        soi_common::StreetId,
        DescribeParams,
        QueryBudget,
        QueryCapture,
    )],
    slots: &[(Arc<Slot>, Duration)],
) {
    // Context construction can fail per street (no photos in range); build
    // first, answer failures immediately, and batch the rest.
    let mut contexts: Vec<Option<StreetContext>> = Vec::with_capacity(jobs.len());
    for ((street, _, _, _), (slot, queue_wait)) in jobs.iter().zip(slots) {
        let built = ContextBuilder {
            network: &state.dataset.network,
            photos: &state.dataset.photos,
            photo_grid: &state.photo_grid,
            pois: Some(&state.dataset.pois),
            eps: shared.config.eps,
            rho: shared.config.rho,
            phi_source: PhiSource::Photos,
        }
        .build_with_delta(*street, state.delta.as_deref());
        match built {
            Ok(ctx) => contexts.push(Some(ctx)),
            Err(e) => {
                let (status, _, _, body) = error_tuple(&e);
                slot.put_with_meta(
                    status,
                    body,
                    SlotMeta {
                        queue: *queue_wait,
                        error: true,
                        epoch: state.epoch,
                        ..SlotMeta::default()
                    },
                );
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                contexts.push(None);
            }
        }
    }
    let engine_jobs: Vec<(&StreetContext, DescribeParams, QueryBudget, QueryCapture)> = jobs
        .iter()
        .zip(&contexts)
        .filter_map(|((_, params, budget, capture), ctx)| {
            ctx.as_ref().map(|c| (c, *params, *budget, *capture))
        })
        .collect();
    if engine_jobs.is_empty() {
        return;
    }
    let (hits_before, misses_before, _) = soi_index::obs::epsilon_cache_counters();
    let batch_started = Instant::now();
    let photos: soi_data::PhotoView<'_> = match &state.delta {
        Some(delta) => delta.photo_view(&state.dataset.photos),
        None => (&state.dataset.photos).into(),
    };
    let (results, captures) = shared
        .engine
        .run_describe_batch_captured(photos, &engine_jobs);
    // The describe engine reports no per-job latencies; the sub-batch wall
    // clock is the best (batch-granular) exec estimate available.
    let exec = batch_started.elapsed();
    let (hits_after, misses_after, _) = soi_index::obs::epsilon_cache_counters();
    let eps_cache_hits = hits_after.saturating_sub(hits_before);
    let eps_cache_misses = misses_after.saturating_sub(misses_before);
    let live_slots = jobs
        .iter()
        .zip(slots)
        .zip(&contexts)
        .filter(|(_, ctx)| ctx.is_some())
        .map(|((_, slot), _)| slot);
    for ((result, artifacts), (slot, queue_wait)) in
        results.into_iter().zip(captures).zip(live_slots)
    {
        let mut meta = SlotMeta {
            queue: *queue_wait,
            exec,
            eps_cache_hits,
            eps_cache_misses,
            epoch: state.epoch,
            ..SlotMeta::default()
        };
        if let Some(artifacts) = artifacts {
            meta.trace_json = artifacts.trace_json;
            meta.explain_json = artifacts.explain_json;
        }
        match result {
            Ok(outcome) => {
                if outcome.partial {
                    crate::obs::serve_metrics().deadline_expired.inc();
                    shared.counters.partials.fetch_add(1, Ordering::Relaxed);
                    meta.partial = true;
                }
                let mut obj = JsonWriter::object();
                obj.field_bool("partial", outcome.partial);
                obj.field_f64("objective", outcome.objective);
                let mut selected = JsonWriter::array();
                for pid in &outcome.selected {
                    selected.elem_f64(f64::from(pid.raw()));
                }
                obj.field_raw("selected", &selected.finish());
                slot.put_with_meta(200, obj.finish(), meta);
            }
            Err(e) => {
                let (status, _, _, body) = error_tuple(&e);
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                meta.error = true;
                slot.put_with_meta(status, body, meta);
            }
        }
    }
}

/// Publishes one k-SOI result (or its error) to the waiting worker.
fn publish_soi(
    shared: &Shared<'_>,
    dataset: &Dataset,
    result: Result<SoiOutcome>,
    slot: &Arc<Slot>,
    mut meta: SlotMeta,
    artifacts: Option<CapturedArtifacts>,
) {
    if let Some(artifacts) = artifacts {
        meta.trace_json = artifacts.trace_json;
        meta.explain_json = artifacts.explain_json;
    }
    match result {
        Ok(outcome) => {
            if outcome.partial {
                crate::obs::serve_metrics().deadline_expired.inc();
                shared.counters.partials.fetch_add(1, Ordering::Relaxed);
                meta.partial = true;
            }
            meta.accesses = outcome.stats.accesses as u64;
            slot.put_with_meta(200, soi_outcome_body(dataset, &outcome, None), meta);
        }
        Err(e) => {
            let (status, _, _, body) = error_tuple(&e);
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            meta.error = true;
            slot.put_with_meta(status, body, meta);
        }
    }
}

/// Renders a k-SOI outcome as the `/soi` response body.
fn soi_outcome_body(dataset: &Dataset, outcome: &SoiOutcome, note: Option<&str>) -> String {
    let mut obj = JsonWriter::object();
    obj.field_bool("partial", outcome.partial);
    obj.field_f64("lbk", outcome.stats.termination_lb);
    obj.field_u64("accesses", outcome.stats.accesses as u64);
    if let Some(note) = note {
        obj.field_str("note", note);
    }
    let mut results = JsonWriter::array();
    for r in &outcome.results {
        let mut entry = JsonWriter::object();
        entry.field_u64("street", u64::from(r.street.raw()));
        entry.field_str("name", &dataset.network.street(r.street).name);
        entry.field_f64("interest", r.interest);
        entry.field_u64("best_segment", u64::from(r.best_segment.raw()));
        entry.field_f64("mass", r.best_segment_mass);
        results.elem_raw(&entry.finish());
    }
    obj.field_raw("results", &results.finish());
    obj.finish()
}
