//! The serving loop: accept → bounded HTTP parse → admission queue →
//! batched engine execution → response.
//!
//! ### Thread topology
//!
//! ```text
//! accept loop (caller thread, nonblocking, polls the shutdown flag)
//!   └─> bounded connection queue ──> IO workers (parse, route, respond)
//!                                       ├─ /metrics /status /explain: inline
//!                                       └─ /soi /describe: admission queue
//!                                            └─> dispatcher (one thread)
//!                                                  batches jobs into the
//!                                                  QueryEngine under their
//!                                                  per-request deadlines,
//!                                                  publishes via Slot
//! ```
//!
//! ### Overload semantics
//!
//! Every stage is bounded. A full connection queue or admission queue sheds
//! with an immediate 503 (`soi_serve_shed_total`); malformed, oversized, or
//! slow requests are rejected at the HTTP edge in bounded time
//! (`soi_serve_rejected_total`); accepted queries carry a
//! [`QueryBudget`] deadline into the algorithms and degrade to anytime
//! *partial* results instead of missing their latency target.
//!
//! ### Drain
//!
//! When the shutdown flag flips (SIGTERM/SIGINT or programmatic), the
//! accept loop stops, in-flight connections finish, the admission queue is
//! closed and drained (queued jobs still run, under their deadlines), and
//! [`serve`] returns a final [`ServeReport`].

use crate::http::{self, Limits};
use crate::queue::{AdmissionQueue, Job, JobKind, Slot};
use soi_common::{ErrorCategory, Result, SoiError};
use soi_core::describe::{ContextBuilder, DescribeParams, PhiSource, StreetContext};
use soi_core::soi::{run_soi_explained, SoiExplain, SoiOutcome, SoiQuery, SoiScratch};
use soi_core::QueryBudget;
use soi_data::Dataset;
use soi_engine::{QueryContext, QueryEngine};
use soi_index::{PhotoGrid, PoiIndex};
use soi_obs::json::{Json, JsonWriter};
use soi_obs::log::{self, Value};
use std::collections::VecDeque;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serving configuration (every knob has a production-shaped default).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Engine worker threads (0 = resolve automatically).
    pub engine_threads: usize,
    /// IO worker threads parsing requests and writing responses.
    pub io_threads: usize,
    /// Admission-queue capacity; pushes beyond it shed with 503.
    pub queue_capacity: usize,
    /// Deadline applied to queries that do not send `deadline_ms`.
    pub default_deadline: Duration,
    /// Upper cap on client-supplied deadlines.
    pub max_deadline: Duration,
    /// Socket read/write timeout (slow-loris bound).
    pub socket_timeout: Duration,
    /// Max accepted request body size.
    pub max_body_bytes: usize,
    /// Max jobs the dispatcher hands the engine per batch.
    pub batch_max: usize,
    /// Query ε default (also sizes the index grids).
    pub eps: f64,
    /// Describe neighbourhood radius ρ.
    pub rho: f64,
    /// When set, startup loads the index bundle from this snapshot cache
    /// directory (building and persisting it on a miss) instead of always
    /// rebuilding, turning cold start into I/O time.
    pub index_cache: Option<std::path::PathBuf>,
    /// Fail startup on a corrupt cached snapshot instead of transparently
    /// rebuilding it.
    pub index_cache_strict: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            engine_threads: 0,
            io_threads: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_millis(250),
            max_deadline: Duration::from_secs(10),
            socket_timeout: Duration::from_secs(2),
            max_body_bytes: 64 * 1024,
            batch_max: 8,
            eps: 5e-4,
            rho: 1e-4,
            index_cache: None,
            index_cache_strict: false,
        }
    }
}

/// Final counters of one [`serve`] run (written by `--stats-json`).
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// TCP connections accepted.
    pub connections: u64,
    /// Requests that parsed successfully.
    pub requests: u64,
    /// Requests shed by admission control (503).
    pub sheds: u64,
    /// Connections rejected at the HTTP edge.
    pub rejected: u64,
    /// Queries that returned partial (deadline-expired) results.
    pub partials: u64,
    /// Query evaluations that returned an error response.
    pub errors: u64,
    /// Worker panics caught by the isolation guard.
    pub panics: u64,
    /// True when the server drained cleanly on shutdown.
    pub drained: bool,
}

impl ServeReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonWriter::object();
        obj.field_u64("connections", self.connections);
        obj.field_u64("requests", self.requests);
        obj.field_u64("sheds", self.sheds);
        obj.field_u64("rejected", self.rejected);
        obj.field_u64("partials", self.partials);
        obj.field_u64("errors", self.errors);
        obj.field_u64("panics", self.panics);
        obj.field_bool("drained", self.drained);
        obj.finish()
    }
}

/// Run-local counters (the process-global metrics are cumulative across
/// servers in one process, so the report keeps its own).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    sheds: AtomicU64,
    rejected: AtomicU64,
    partials: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
}

/// A bounded handoff queue of accepted connections.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    cv: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (VecDeque<TcpStream>, bool)> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Hands the stream back when the backlog is full (edge shedding).
    fn try_push(&self, stream: TcpStream) -> std::result::Result<(), TcpStream> {
        let mut state = self.lock();
        if state.1 || state.0.len() >= self.capacity {
            return Err(stream);
        }
        state.0.push_back(stream);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    fn pop(&self, timeout: Duration) -> Option<TcpStream> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            state = match self.cv.wait_timeout(state, remaining) {
                Ok((next, _)) => next,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn close(&self) {
        self.lock().1 = true;
        self.cv.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.lock().1
    }
}

/// Everything the IO workers and dispatcher share.
struct Shared<'a> {
    dataset: &'a Dataset,
    index: &'a PoiIndex,
    photo_grid: &'a PhotoGrid,
    engine: &'a QueryEngine,
    queue: &'a AdmissionQueue,
    config: &'a ServeConfig,
    counters: &'a Counters,
    shutdown: &'a AtomicBool,
    started: Instant,
}

/// Runs the server until `shutdown` flips, then drains and reports.
///
/// `on_ready` receives the bound address once the listener is live (so
/// callers binding port 0 learn the real port before traffic starts).
///
/// # Errors
/// Setup failures only (bind, index build); per-request failures are
/// answered over HTTP and never abort the server.
pub fn serve(
    dataset: &Dataset,
    config: &ServeConfig,
    shutdown: &AtomicBool,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<ServeReport> {
    crate::obs::register_metrics();
    soi_engine::obs::register_metrics();

    let cell = 2.0 * config.eps;
    let params = soi_index::BundleParams {
        poi_cell: cell,
        pg_cell: cell,
        eps: Some(config.eps),
        with_ir: false,
        threads: config.engine_threads,
    };
    let index_started = Instant::now();
    let bundle = match &config.index_cache {
        None => soi_index::build_bundle(dataset, &params),
        Some(dir) => {
            let mode = if config.index_cache_strict {
                soi_index::CacheMode::Strict
            } else {
                soi_index::CacheMode::Lenient
            };
            let (bundle, outcome) =
                soi_index::IndexCache::new(dir.clone(), mode).load_or_build(dataset, &params)?;
            log::event(
                "serve.index_cache",
                match outcome {
                    soi_index::CacheOutcome::Hit => "index bundle loaded from snapshot cache",
                    soi_index::CacheOutcome::MissBuilt => "index bundle built and cached",
                    soi_index::CacheOutcome::RebuiltCorrupt => {
                        "corrupt snapshot discarded; index bundle rebuilt"
                    }
                },
                &[
                    ("dir", Value::Str(&dir.display().to_string())),
                    (
                        "ms",
                        Value::F64(index_started.elapsed().as_secs_f64() * 1e3),
                    ),
                ],
            );
            bundle
        }
    };
    let index = bundle.poi;
    let photo_grid = bundle.photo_grid;
    let engine = QueryEngine::new(config.engine_threads);

    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| SoiError::io(e, &config.addr).with_context("binding the serve listener"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| SoiError::io(e, &config.addr))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| SoiError::io(e, &config.addr))?;

    let queue = AdmissionQueue::new(config.queue_capacity);
    let conns = ConnQueue::new(config.io_threads.max(1) * 2);
    let counters = Counters::default();
    let shared = Shared {
        dataset,
        index: &index,
        photo_grid: &photo_grid,
        engine: &engine,
        queue: &queue,
        config,
        counters: &counters,
        shutdown,
        started: Instant::now(),
    };

    log::event(
        "serve.ready",
        "listening",
        &[
            ("addr", Value::Str(&local_addr.to_string())),
            ("queue_capacity", Value::U64(config.queue_capacity as u64)),
            ("io_threads", Value::U64(config.io_threads as u64)),
            ("engine_threads", Value::U64(engine.threads() as u64)),
        ],
    );
    on_ready(local_addr);

    let run = crossbeam::thread::scope(|s| {
        let dispatcher = s.spawn(|_| dispatcher_loop(&shared));
        let workers: Vec<_> = (0..config.io_threads.max(1))
            .map(|_| s.spawn(|_| io_worker_loop(&shared, &conns)))
            .collect();

        accept_loop(&listener, &conns, &shared);

        // Drain: no new connections; finish in-flight ones; then close the
        // admission queue so the dispatcher runs the backlog and exits.
        conns.close();
        for worker in workers {
            let _ = worker.join();
        }
        queue.close();
        let _ = dispatcher.join();
    });
    if run.is_err() {
        // A scope-level panic still produces a report; the panic counter
        // records that something escaped the per-request guards.
        crate::obs::serve_metrics().panics.inc();
        counters.panics.fetch_add(1, Ordering::Relaxed);
    }

    let report = ServeReport {
        connections: counters.connections.load(Ordering::Relaxed),
        requests: counters.requests.load(Ordering::Relaxed),
        sheds: counters.sheds.load(Ordering::Relaxed),
        rejected: counters.rejected.load(Ordering::Relaxed),
        partials: counters.partials.load(Ordering::Relaxed),
        errors: counters.errors.load(Ordering::Relaxed),
        panics: counters.panics.load(Ordering::Relaxed),
        drained: queue.is_drained() && run.is_ok(),
    };
    log::event(
        "serve.drained",
        "server drained",
        &[
            ("requests", Value::U64(report.requests)),
            ("sheds", Value::U64(report.sheds)),
            ("rejected", Value::U64(report.rejected)),
            ("partials", Value::U64(report.partials)),
            ("panics", Value::U64(report.panics)),
        ],
    );
    Ok(report)
}

/// Accepts connections until shutdown; sheds at the edge when the handoff
/// backlog is full.
/// Closes a connection we rejected without reading its full request.
///
/// Closing with unread bytes in the receive buffer makes the kernel send a
/// TCP RST, which can destroy the rejection response before the client
/// reads it. Half-close the write side (flushing the response with a FIN),
/// then drain what the client already sent, bounded by `limit` so a
/// hostile peer cannot hold the worker.
fn graceful_reject_close(stream: &mut TcpStream, limit: Duration) {
    let _ = stream.shutdown(Shutdown::Write);
    let deadline = Instant::now() + limit.min(Duration::from_millis(500));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 4096];
    loop {
        if Instant::now() >= deadline {
            return;
        }
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

fn accept_loop(listener: &TcpListener, conns: &ConnQueue, shared: &Shared<'_>) {
    let metrics = crate::obs::serve_metrics();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                metrics.connections.inc();
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(shared.config.socket_timeout));
                let _ = stream.set_write_timeout(Some(shared.config.socket_timeout));
                if let Err(mut stream) = conns.try_push(stream) {
                    metrics.shed.inc();
                    shared.counters.sheds.fetch_add(1, Ordering::Relaxed);
                    let _ = http::write_error(
                        &mut stream,
                        503,
                        "Service Unavailable",
                        "connection backlog full, shedding load",
                    );
                    graceful_reject_close(&mut stream, shared.config.socket_timeout);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// One IO worker: pops connections and handles them, isolating panics so a
/// poisoned request can never wedge the pool.
fn io_worker_loop(shared: &Shared<'_>, conns: &ConnQueue) {
    let mut scratch = SoiScratch::default();
    loop {
        let Some(mut stream) = conns.pop(Duration::from_millis(50)) else {
            if conns.is_closed() {
                return;
            }
            continue;
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle_connection(shared, &mut stream, &mut scratch);
        }));
        if outcome.is_err() {
            crate::obs::serve_metrics().panics.inc();
            shared.counters.panics.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_error(
                &mut stream,
                500,
                "Internal Server Error",
                "request handler panicked",
            );
            // The scratch may hold state from the interrupted request.
            scratch = SoiScratch::default();
        }
    }
}

/// Parses and answers one connection (one request: `Connection: close`).
fn handle_connection(shared: &Shared<'_>, stream: &mut TcpStream, scratch: &mut SoiScratch) {
    let _span = soi_obs::trace::span(soi_obs::names::spans::SERVE_REQUEST);
    let metrics = crate::obs::serve_metrics();
    let limits = Limits {
        max_body_bytes: shared.config.max_body_bytes,
        // One socket-timeout interval bounds the whole parse, so even a
        // drip-feed client costs a worker at most that long.
        max_parse_time: shared.config.socket_timeout,
        ..Limits::default()
    };
    let request = match http::read_request(stream, &limits) {
        Ok(request) => request,
        Err(e) => {
            metrics.rejected.inc();
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some((status, reason)) = e.status() {
                let _ = http::write_error(stream, status, reason, &e.describe());
                graceful_reject_close(stream, shared.config.socket_timeout);
            }
            return;
        }
    };
    metrics.requests.inc();
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let (status, reason, content_type, body) = route(shared, &request, scratch);
    let _ = http::write_response(stream, status, reason, content_type, body.as_bytes());
    metrics.latency.observe_duration(started.elapsed());
}

/// Routes one parsed request to its handler.
fn route(
    shared: &Shared<'_>,
    request: &crate::http::Request,
    scratch: &mut SoiScratch,
) -> (u16, &'static str, &'static str, String) {
    const JSON: &str = "application/json";
    match (request.method.as_str(), request.path()) {
        ("GET", "/metrics") => (
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            soi_obs::metrics::gather(),
        ),
        ("GET", "/status") => (200, "OK", JSON, status_body(shared)),
        ("GET", "/explain") => match explain_inline(shared, request, scratch) {
            Ok(body) => (200, "OK", JSON, body),
            Err(e) => error_tuple(&e),
        },
        ("POST", "/soi") => match submit_soi(shared, request) {
            Ok(tuple) => tuple,
            Err(e) => error_tuple(&e),
        },
        ("POST", "/describe") => match submit_describe(shared, request) {
            Ok(tuple) => tuple,
            Err(e) => error_tuple(&e),
        },
        ("GET" | "POST", _) => (
            404,
            "Not Found",
            JSON,
            error_body("no such route", "not-found"),
        ),
        _ => (
            405,
            "Method Not Allowed",
            JSON,
            error_body("unsupported method", "usage"),
        ),
    }
}

/// Maps a [`SoiError`] to an HTTP response tuple.
fn error_tuple(e: &SoiError) -> (u16, &'static str, &'static str, String) {
    let (status, reason) = match e.category() {
        ErrorCategory::Usage | ErrorCategory::Data => (400, "Bad Request"),
        ErrorCategory::NotFound => (404, "Not Found"),
        ErrorCategory::Io => (500, "Internal Server Error"),
    };
    (
        status,
        reason,
        "application/json",
        error_body(&e.to_string(), &e.category().to_string()),
    )
}

fn error_body(message: &str, category: &str) -> String {
    let mut obj = JsonWriter::object();
    obj.field_str("error", message);
    obj.field_str("category", category);
    obj.finish()
}

fn status_body(shared: &Shared<'_>) -> String {
    let draining = shared.shutdown.load(Ordering::SeqCst);
    let mut obj = JsonWriter::object();
    obj.field_str("status", if draining { "draining" } else { "serving" });
    obj.field_str("dataset", &shared.dataset.name);
    obj.field_u64("queue_depth", shared.queue.depth() as u64);
    obj.field_u64("queue_capacity", shared.queue.capacity() as u64);
    obj.field_u64("engine_threads", shared.engine.threads() as u64);
    obj.field_u64("requests", shared.counters.requests.load(Ordering::Relaxed));
    obj.field_u64("sheds", shared.counters.sheds.load(Ordering::Relaxed));
    obj.field_u64("partials", shared.counters.partials.load(Ordering::Relaxed));
    obj.field_f64("uptime_seconds", shared.started.elapsed().as_secs_f64());
    obj.finish()
}

/// `GET /explain?keywords=a,b&k=10&eps=0.0005`: runs the query inline with
/// the explain collector (a debugging route — unlimited budget, not queued).
fn explain_inline(
    shared: &Shared<'_>,
    request: &crate::http::Request,
    scratch: &mut SoiScratch,
) -> Result<String> {
    let query = shared
        .config
        .parse_query_string(shared.dataset, request.query().unwrap_or(""))?;
    let mut explain = SoiExplain::default();
    let outcome = run_soi_explained(
        &shared.dataset.network,
        &shared.dataset.pois,
        shared.index,
        &query,
        &Default::default(),
        scratch,
        Some(&mut explain),
    )?;
    let mut obj = JsonWriter::object();
    obj.field_raw("explain", &explain.to_json());
    obj.field_raw("outcome", &soi_outcome_body(shared.dataset, &outcome, None));
    Ok(obj.finish())
}

impl ServeConfig {
    /// Parses `keywords=a,b&k=10&eps=0.0005` into a validated query.
    fn parse_query_string(&self, dataset: &Dataset, raw: &str) -> Result<SoiQuery> {
        let mut keywords = None;
        let mut k = 10usize;
        let mut eps = self.eps;
        for pair in raw.split('&').filter(|p| !p.is_empty()) {
            let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
            match name {
                "keywords" => keywords = Some(value.to_string()),
                "k" => {
                    k = value
                        .parse()
                        .map_err(|_| SoiError::invalid(format!("bad k {value:?}")))?;
                }
                "eps" => {
                    eps = value
                        .parse()
                        .map_err(|_| SoiError::invalid(format!("bad eps {value:?}")))?;
                }
                other => {
                    return Err(SoiError::invalid(format!("unknown parameter {other:?}")));
                }
            }
        }
        let raw_kws = keywords.ok_or_else(|| SoiError::invalid("missing keywords= parameter"))?;
        let words: Vec<&str> = raw_kws
            .split(',')
            .map(str::trim)
            .filter(|w| !w.is_empty())
            .collect();
        if words.is_empty() {
            return Err(SoiError::invalid("keywords= names no keywords"));
        }
        SoiQuery::new(dataset.query_keywords(&words), k, eps)
    }
}

/// Resolves the request's deadline: `deadline_ms` clamped to the cap, or
/// the server default.
fn request_budget(config: &ServeConfig, body: &Json) -> Result<QueryBudget> {
    let timeout = match body.get("deadline_ms") {
        None => config.default_deadline,
        Some(v) => {
            let ms = v
                .as_f64()
                .filter(|ms| *ms > 0.0 && ms.is_finite())
                .ok_or_else(|| SoiError::invalid("deadline_ms must be a positive number"))?;
            Duration::from_secs_f64(ms / 1e3).min(config.max_deadline)
        }
    };
    Ok(QueryBudget::from_timeout(timeout))
}

/// Parses the body, admits a k-SOI job, and waits for its response.
fn submit_soi(
    shared: &Shared<'_>,
    request: &crate::http::Request,
) -> Result<(u16, &'static str, &'static str, String)> {
    let body = parse_body(&request.body)?;
    let keywords = match body.get("keywords").and_then(|v| v.as_arr()) {
        Some(items) if !items.is_empty() => {
            let words: Vec<&str> = items.iter().filter_map(|v| v.as_str()).collect();
            if words.len() != items.len() {
                return Err(SoiError::invalid("keywords must be an array of strings"));
            }
            shared.dataset.query_keywords(&words)
        }
        _ => return Err(SoiError::invalid("body needs a keywords array")),
    };
    let k = match body.get("k") {
        None => 10,
        Some(v) => v
            .as_f64()
            .filter(|k| *k >= 1.0 && k.fract() == 0.0)
            .ok_or_else(|| SoiError::invalid("k must be a positive integer"))?
            as usize,
    };
    let eps = match body.get("eps") {
        None => shared.config.eps,
        Some(v) => v
            .as_f64()
            .ok_or_else(|| SoiError::invalid("eps must be a number"))?,
    };
    let query = SoiQuery::new(keywords, k, eps)?;
    let budget = request_budget(shared.config, &body)?;
    submit_and_wait(shared, JobKind::Soi(query), budget)
}

/// Parses the body, admits a describe job, and waits for its response.
fn submit_describe(
    shared: &Shared<'_>,
    request: &crate::http::Request,
) -> Result<(u16, &'static str, &'static str, String)> {
    let body = parse_body(&request.body)?;
    let street = match body.get("street") {
        Some(Json::Str(name)) => shared
            .dataset
            .street_by_name(name)
            .ok_or_else(|| SoiError::not_found(format!("street {name:?}")))?,
        Some(Json::Num(id)) => {
            let idx = *id as usize;
            if id.fract() != 0.0 || idx >= shared.dataset.network.streets().len() {
                return Err(SoiError::not_found(format!("street id {id}")));
            }
            shared.dataset.network.streets()[idx].id
        }
        _ => return Err(SoiError::invalid("body needs a street (name or id)")),
    };
    let number = |name: &str, default: f64| -> Result<f64> {
        match body.get(name) {
            None => Ok(default),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| SoiError::invalid(format!("{name} must be a number"))),
        }
    };
    let k = number("k", 5.0)?;
    if k < 1.0 || k.fract() != 0.0 {
        return Err(SoiError::invalid("k must be a positive integer"));
    }
    let params = DescribeParams::new(k as usize, number("lambda", 0.5)?, number("w", 0.5)?)?;
    let budget = request_budget(shared.config, &body)?;
    submit_and_wait(shared, JobKind::Describe { street, params }, budget)
}

fn parse_body(bytes: &[u8]) -> Result<Json> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| SoiError::invalid("body must be UTF-8 JSON"))?;
    if text.trim().is_empty() {
        return Err(SoiError::invalid("body must be a JSON object"));
    }
    soi_obs::json::parse(text).map_err(|e| SoiError::invalid(format!("bad JSON body: {e}")))
}

/// Admits the job (shedding with 503 when the queue is full) and waits for
/// the dispatcher's response.
fn submit_and_wait(
    shared: &Shared<'_>,
    kind: JobKind,
    budget: QueryBudget,
) -> Result<(u16, &'static str, &'static str, String)> {
    const JSON: &str = "application/json";
    let metrics = crate::obs::serve_metrics();
    let slot = Arc::new(Slot::default());
    let job = Job {
        kind,
        budget,
        slot: Arc::clone(&slot),
        enqueued: Instant::now(),
    };
    if shared.queue.try_push(job).is_err() {
        metrics.shed.inc();
        shared.counters.sheds.fetch_add(1, Ordering::Relaxed);
        let mut obj = JsonWriter::object();
        obj.field_str("error", "admission queue full, shedding load");
        obj.field_u64("queue_depth", shared.queue.depth() as u64);
        obj.field_u64("queue_capacity", shared.queue.capacity() as u64);
        return Ok((503, "Service Unavailable", JSON, obj.finish()));
    }
    // Backstop only: the dispatcher answers every admitted job (deadlines
    // bound the work), so this grace window fires only if it died.
    let grace = budget.remaining().unwrap_or(shared.config.max_deadline) + Duration::from_secs(30);
    match slot.wait(grace) {
        Some((status, body)) => {
            let reason = match status {
                200 => "OK",
                400 => "Bad Request",
                404 => "Not Found",
                _ => "Internal Server Error",
            };
            Ok((status, reason, JSON, body))
        }
        None => Ok((
            500,
            "Internal Server Error",
            JSON,
            error_body("dispatcher did not answer in time", "io"),
        )),
    }
}

/// The dispatcher: drains admitted jobs in batches and executes them on
/// the engine under their per-request deadlines.
fn dispatcher_loop(shared: &Shared<'_>) {
    let ctx = Arc::new(QueryContext::new(
        &shared.dataset.network,
        &shared.dataset.pois,
        shared.index,
    ));
    loop {
        let batch = shared
            .queue
            .pop_batch(shared.config.batch_max, Duration::from_millis(100));
        if batch.is_empty() {
            if shared.queue.is_drained() {
                return;
            }
            continue;
        }
        let _span = soi_obs::trace::span(soi_obs::names::spans::SERVE_DISPATCH);
        let mut soi_jobs: Vec<(SoiQuery, QueryBudget)> = Vec::new();
        let mut soi_slots: Vec<Arc<Slot>> = Vec::new();
        let mut describe_jobs: Vec<(soi_common::StreetId, DescribeParams, QueryBudget)> =
            Vec::new();
        let mut describe_slots: Vec<Arc<Slot>> = Vec::new();
        for job in batch {
            match job.kind {
                JobKind::Soi(query) => {
                    soi_jobs.push((query, job.budget));
                    soi_slots.push(job.slot);
                }
                JobKind::Describe { street, params } => {
                    describe_jobs.push((street, params, job.budget));
                    describe_slots.push(job.slot);
                }
            }
        }

        if !soi_jobs.is_empty() {
            let outcome = shared.engine.run_soi_batch_with_deadlines(&ctx, &soi_jobs);
            for (result, slot) in outcome.results.into_iter().zip(&soi_slots) {
                publish_soi(shared, result, slot);
            }
        }
        if !describe_jobs.is_empty() {
            run_describe_jobs(shared, &describe_jobs, &describe_slots);
        }
    }
}

/// Builds street contexts and runs the describe sub-batch; jobs whose
/// context cannot be built answer their error individually.
fn run_describe_jobs(
    shared: &Shared<'_>,
    jobs: &[(soi_common::StreetId, DescribeParams, QueryBudget)],
    slots: &[Arc<Slot>],
) {
    // Context construction can fail per street (no photos in range); build
    // first, answer failures immediately, and batch the rest.
    let mut contexts: Vec<Option<StreetContext>> = Vec::with_capacity(jobs.len());
    for ((street, _, _), slot) in jobs.iter().zip(slots) {
        let built = ContextBuilder {
            network: &shared.dataset.network,
            photos: &shared.dataset.photos,
            photo_grid: shared.photo_grid,
            pois: Some(&shared.dataset.pois),
            eps: shared.config.eps,
            rho: shared.config.rho,
            phi_source: PhiSource::Photos,
        }
        .build(*street);
        match built {
            Ok(ctx) => contexts.push(Some(ctx)),
            Err(e) => {
                let (status, _, _, body) = error_tuple(&e);
                slot.put(status, body);
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                contexts.push(None);
            }
        }
    }
    let engine_jobs: Vec<(&StreetContext, DescribeParams, QueryBudget)> = jobs
        .iter()
        .zip(&contexts)
        .filter_map(|((_, params, budget), ctx)| ctx.as_ref().map(|c| (c, *params, *budget)))
        .collect();
    if engine_jobs.is_empty() {
        return;
    }
    let results = shared
        .engine
        .run_describe_batch_with_deadlines(&shared.dataset.photos, &engine_jobs);
    let live_slots = jobs
        .iter()
        .zip(slots)
        .zip(&contexts)
        .filter(|(_, ctx)| ctx.is_some())
        .map(|((_, slot), _)| slot);
    for (result, slot) in results.into_iter().zip(live_slots) {
        match result {
            Ok(outcome) => {
                if outcome.partial {
                    crate::obs::serve_metrics().deadline_expired.inc();
                    shared.counters.partials.fetch_add(1, Ordering::Relaxed);
                }
                let mut obj = JsonWriter::object();
                obj.field_bool("partial", outcome.partial);
                obj.field_f64("objective", outcome.objective);
                let mut selected = JsonWriter::array();
                for pid in &outcome.selected {
                    selected.elem_f64(f64::from(pid.raw()));
                }
                obj.field_raw("selected", &selected.finish());
                slot.put(200, obj.finish());
            }
            Err(e) => {
                let (status, _, _, body) = error_tuple(&e);
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                slot.put(status, body);
            }
        }
    }
}

/// Publishes one k-SOI result (or its error) to the waiting worker.
fn publish_soi(shared: &Shared<'_>, result: Result<SoiOutcome>, slot: &Arc<Slot>) {
    match result {
        Ok(outcome) => {
            if outcome.partial {
                crate::obs::serve_metrics().deadline_expired.inc();
                shared.counters.partials.fetch_add(1, Ordering::Relaxed);
            }
            slot.put(200, soi_outcome_body(shared.dataset, &outcome, None));
        }
        Err(e) => {
            let (status, _, _, body) = error_tuple(&e);
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            slot.put(status, body);
        }
    }
}

/// Renders a k-SOI outcome as the `/soi` response body.
fn soi_outcome_body(dataset: &Dataset, outcome: &SoiOutcome, note: Option<&str>) -> String {
    let mut obj = JsonWriter::object();
    obj.field_bool("partial", outcome.partial);
    obj.field_f64("lbk", outcome.stats.termination_lb);
    obj.field_u64("accesses", outcome.stats.accesses as u64);
    if let Some(note) = note {
        obj.field_str("note", note);
    }
    let mut results = JsonWriter::array();
    for r in &outcome.results {
        let mut entry = JsonWriter::object();
        entry.field_u64("street", u64::from(r.street.raw()));
        entry.field_str("name", &dataset.network.street(r.street).name);
        entry.field_f64("interest", r.interest);
        entry.field_u64("best_segment", u64::from(r.best_segment.raw()));
        entry.field_f64("mass", r.best_segment_mass);
        results.elem_raw(&entry.finish());
    }
    obj.field_raw("results", &results.finish());
    obj.finish()
}
