//! Overload and fault-injection suite: hostile or broken clients must be
//! rejected in bounded time, must never panic a worker, and must never
//! wedge the server — after every abuse the server still answers a clean
//! request and drains with zero recorded panics.

use soi_data::Dataset;
use soi_serve::client::{request, request_with_retry, RetryPolicy};
use soi_serve::{serve, ServeConfig, ServeReport};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, OnceLock};
use std::time::{Duration, Instant};

fn dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| soi_datagen::generate(&soi_datagen::london(0.02)).0)
}

fn with_server<T: Send>(
    config: ServeConfig,
    f: impl FnOnce(SocketAddr) -> T + Send,
) -> (T, ServeReport) {
    let dataset = dataset();
    let shutdown = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve(dataset, &config, &shutdown, |addr| {
                tx.send(addr).expect("ready channel open")
            })
            .expect("server runs")
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server became ready");
        // Catch panics from the test body so the shutdown flag still flips
        // and the server thread joins -- otherwise the scope would wait on
        // it forever and a failing assertion would hang the whole test.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        shutdown.store(true, Ordering::SeqCst);
        let report = server.join().expect("server thread joins");
        match result {
            Ok(result) => (result, report),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// Short socket timeout so every bounded-time assertion runs fast.
fn hostile_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        socket_timeout: Duration::from_millis(300),
        max_body_bytes: 4 * 1024,
        ..ServeConfig::default()
    }
}

/// Sends raw bytes, optionally keeps the socket open, and returns the raw
/// response (may be empty if the server just closed the connection).
fn send_raw(addr: SocketAddr, payload: &[u8], then_close: bool) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.write_all(payload).expect("write");
    if then_close {
        drop(stream);
        return Vec::new();
    }
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

/// The server must still answer a clean request (the abused worker was
/// neither wedged nor killed). Retries cover the instant right after a
/// connection burst, when the backlog may legitimately shed with a 503.
fn assert_still_serving(addr: SocketAddr) {
    let outcome = request_with_retry(
        addr,
        "GET",
        "/status",
        None,
        Duration::from_secs(10),
        RetryPolicy {
            retries: 10,
            backoff: Duration::from_millis(50),
        },
    );
    let r = outcome.response.expect("status");
    assert_eq!(r.status, 200, "server unhealthy after abuse: {}", r.body);
}

/// Regression: a request accepted after N sheds must report the accepted
/// attempt's latency alone, with the sheds counted as events — not one
/// sample inflated by shed round-trips and backoff sleeps. The stand-in
/// server here behaves exactly like an undersized-queue `soi serve` under
/// burst: it sheds the first two attempts with 503 and accepts the third.
#[test]
fn retry_latency_is_timed_from_the_accepted_attempt() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        for attempt in 0..3 {
            let (mut stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(Duration::from_secs(1)))
                .expect("timeout");
            // Drain until the header terminator (the body is irrelevant).
            let mut seen = Vec::new();
            let mut buf = [0u8; 1024];
            while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => seen.extend_from_slice(&buf[..n]),
                }
            }
            let body = if attempt < 2 {
                "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 25\r\nConnection: close\r\n\r\n{\"error\":\"shedding load\"}"
            } else {
                "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}"
            };
            stream.write_all(body.as_bytes()).expect("respond");
        }
    });
    let backoff = Duration::from_millis(150);
    let started = Instant::now();
    let outcome = request_with_retry(
        addr,
        "POST",
        "/soi",
        Some("{}"),
        Duration::from_secs(5),
        RetryPolicy {
            retries: 4,
            backoff,
        },
    );
    let total = started.elapsed();
    server.join().expect("server thread");
    assert!(outcome.accepted(), "third attempt was accepted");
    assert_eq!(outcome.attempts, 3);
    assert_eq!(outcome.sheds, 2, "each shed 503 is one counted event");
    // The whole call spans both backoff sleeps (150ms + 300ms) ...
    assert!(
        total >= backoff * 3,
        "expected two backoff sleeps in {total:?}"
    );
    // ... but the reported latency is the accepted attempt alone. Before
    // the fix this was `total`, so shed-heavy runs skewed accepted tail
    // percentiles by whole backoff windows.
    assert!(
        outcome.last_attempt < backoff,
        "accepted latency {:?} includes shed/backoff time",
        outcome.last_attempt
    );
}

/// Terminal sheds keep their counters honest too: when retries run out
/// while still shed, every attempt is a shed event and `accepted()` is
/// false.
#[test]
fn exhausted_retries_count_every_shed() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        for _ in 0..2 {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            stream
                .write_all(
                    b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 25\r\nConnection: close\r\n\r\n{\"error\":\"shedding load\"}",
                )
                .expect("respond");
        }
    });
    let outcome = request_with_retry(
        addr,
        "POST",
        "/soi",
        Some("{}"),
        Duration::from_secs(5),
        RetryPolicy {
            retries: 1,
            backoff: Duration::from_millis(10),
        },
    );
    server.join().expect("server thread");
    assert!(!outcome.accepted());
    assert_eq!(outcome.attempts, 2);
    assert_eq!(outcome.sheds, 2, "the final shed must be counted as well");
    assert_eq!(
        outcome.response.expect("final response is a 503").status,
        503
    );
}

#[test]
fn hostile_clients_are_rejected_bounded_and_never_wedge() {
    let timeout = hostile_config().socket_timeout;
    let ((), report) = with_server(hostile_config(), |addr| {
        // 1. Malformed request line: prompt 400.
        let started = Instant::now();
        let raw = send_raw(addr, b"GARBAGE\r\n\r\n", false);
        let text = String::from_utf8_lossy(&raw).into_owned();
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text:?}");
        assert!(
            started.elapsed() < timeout * 4,
            "malformed line not bounded"
        );
        assert_still_serving(addr);

        // 2. Oversized declared body: 413 without reading the payload.
        let started = Instant::now();
        let raw = send_raw(
            addr,
            b"POST /soi HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
            false,
        );
        let text = String::from_utf8_lossy(&raw).into_owned();
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text:?}");
        assert!(
            started.elapsed() < timeout * 4,
            "oversized body not bounded"
        );
        assert_still_serving(addr);

        // 3. Chunked transfer: 501, explicitly unsupported.
        let raw = send_raw(
            addr,
            b"POST /soi HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            false,
        );
        let text = String::from_utf8_lossy(&raw).into_owned();
        assert!(text.starts_with("HTTP/1.1 501"), "got: {text:?}");
        assert_still_serving(addr);

        // 4. Abruptly closed socket mid-request: server drops it silently.
        let started = Instant::now();
        send_raw(
            addr,
            b"POST /soi HTTP/1.1\r\ncontent-length: 100\r\n\r\nabc",
            true,
        );
        assert!(started.elapsed() < timeout * 4);
        assert_still_serving(addr);

        // 5. Slow-writing (drip-feed) client: one byte at a time. The
        //    overall parse deadline must cut it off — the per-read socket
        //    timeout alone never fires against a steady drip.
        let started = Instant::now();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let mut response = Vec::new();
        for b in b"GET /status HTTP/1.1\r" {
            if stream.write_all(&[*b]).is_err() {
                break; // server already gave up on us — that's the point
            }
            std::thread::sleep(Duration::from_millis(20));
            // Stop dripping once the server responded.
            stream
                .set_read_timeout(Some(Duration::from_millis(1)))
                .expect("timeout");
            let mut probe = [0u8; 1024];
            match stream.read(&mut probe) {
                Ok(0) => break,
                Ok(n) => {
                    response.extend_from_slice(&probe[..n]);
                    break;
                }
                Err(_) => {}
            }
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.read_to_end(&mut response);
        let elapsed = started.elapsed();
        assert!(
            elapsed < timeout * 4,
            "drip-feed client held a worker for {elapsed:?}"
        );
        let text = String::from_utf8_lossy(&response).into_owned();
        assert!(
            text.is_empty() || text.starts_with("HTTP/1.1 408"),
            "expected timeout rejection, got: {text:?}"
        );
        assert_still_serving(addr);

        // 6. A burst of empty connections (open, send nothing, close).
        for _ in 0..8 {
            let stream = TcpStream::connect(addr).expect("connect");
            drop(stream);
        }
        assert_still_serving(addr);

        // 7. Bad JSON and bad fields in otherwise valid HTTP: 400s, not
        //    panics.
        for body in [
            "not json at all",
            "{\"keywords\":123}",
            "{\"keywords\":[\"shop\"],\"k\":-3}",
            "{\"keywords\":[\"shop\"],\"deadline_ms\":\"soon\"}",
            "{}",
        ] {
            let r = request(addr, "POST", "/soi", Some(body), Duration::from_secs(10))
                .expect("response");
            assert_eq!(r.status, 400, "body {body:?} -> {} {}", r.status, r.body);
        }
        // Unknown street: 404.
        let r = request(
            addr,
            "POST",
            "/describe",
            Some("{\"street\":\"no such street\"}"),
            Duration::from_secs(10),
        )
        .expect("response");
        assert_eq!(r.status, 404, "body: {}", r.body);
        assert_still_serving(addr);
    });
    assert_eq!(report.panics, 0, "a hostile client panicked a worker");
    assert!(report.rejected > 0, "edge rejections were not counted");
    assert!(report.drained, "server failed to drain after abuse");
}
