//! End-to-end tests of the serving layer against a real socket: normal
//! query round-trips, admission-control shedding under an undersized
//! queue, deadline-degraded partial results validating against the
//! recorded LBk, latency bounded by the deadline, and graceful drain.

use soi_data::Dataset;
use soi_obs::json::{parse, Json};
use soi_serve::client::{request, request_with_retry, RetryPolicy};
use soi_serve::{serve, ServeConfig, ServeReport};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, OnceLock};
use std::time::{Duration, Instant};

fn dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| soi_datagen::generate(&soi_datagen::london(0.03)).0)
}

/// Runs `f` against a live server, then flips the shutdown flag and
/// returns `f`'s result alongside the server's drain report.
fn with_server<T: Send>(
    config: ServeConfig,
    f: impl FnOnce(SocketAddr) -> T + Send,
) -> (T, ServeReport) {
    let dataset = dataset();
    let shutdown = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve(dataset, &config, &shutdown, |addr| {
                tx.send(addr).expect("ready channel open")
            })
            .expect("server runs")
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server became ready");
        // Catch panics from the test body so the shutdown flag still flips
        // and the server thread joins -- otherwise the scope would wait on
        // it forever and a failing assertion would hang the whole test.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        shutdown.store(true, Ordering::SeqCst);
        let report = server.join().expect("server thread joins");
        match result {
            Ok(result) => (result, report),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        socket_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    }
}

const TIMEOUT: Duration = Duration::from_secs(10);

/// A query body. `eps` scales the work: the city spans ~0.05 degrees, so
/// 0.002 is a moderate query and 0.01 a heavy one (each segment pulls in
/// POIs from an 8-block radius) — heavy enough for deadlines to bite, but
/// still bounded.
fn soi_body(eps: f64, deadline_ms: f64) -> String {
    format!(
        "{{\"keywords\":[\"shop\",\"food\"],\"k\":5,\"eps\":{eps},\"deadline_ms\":{deadline_ms}}}"
    )
}

#[test]
fn roundtrip_soi_describe_status_metrics_explain() {
    let ((), report) = with_server(test_config(), |addr| {
        // /status
        let status = request(addr, "GET", "/status", None, TIMEOUT).expect("status");
        assert_eq!(status.status, 200);
        assert!(status.body.contains("\"serving\""), "body: {}", status.body);

        // /soi with a generous deadline: complete (non-partial) results.
        let soi = request(
            addr,
            "POST",
            "/soi",
            Some(&soi_body(0.002, 30_000.0)),
            TIMEOUT,
        )
        .expect("soi");
        assert_eq!(soi.status, 200, "body: {}", soi.body);
        let doc = parse(&soi.body).expect("valid JSON");
        assert_eq!(doc.get("partial"), Some(&Json::Bool(false)));
        let results = doc.get("results").and_then(Json::as_arr).expect("results");
        assert!(!results.is_empty(), "no streets for shop/food");
        let street = results[0].get("name").and_then(Json::as_str).expect("name");

        // /describe the top street by name.
        let body = format!("{{\"street\":{:?},\"k\":3,\"deadline_ms\":30000}}", street);
        let describe = request(addr, "POST", "/describe", Some(&body), TIMEOUT).expect("describe");
        assert_eq!(describe.status, 200, "body: {}", describe.body);
        let doc = parse(&describe.body).expect("valid JSON");
        assert_eq!(doc.get("partial"), Some(&Json::Bool(false)));

        // /explain inline.
        let explain =
            request(addr, "GET", "/explain?keywords=shop&k=3", None, TIMEOUT).expect("explain");
        assert_eq!(explain.status, 200, "body: {}", explain.body);
        assert!(explain.body.contains("\"termination\""));

        // /metrics exposes the serve series.
        let metrics = request(addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
        assert_eq!(metrics.status, 200);
        for series in [
            "soi_serve_requests_total",
            "soi_serve_shed_total",
            "soi_serve_panics_total",
        ] {
            assert!(metrics.body.contains(series), "missing {series}");
        }

        // Unknown route.
        let missing = request(addr, "GET", "/nope", None, TIMEOUT).expect("404");
        assert_eq!(missing.status, 404);
    });
    assert!(report.drained, "server did not drain cleanly");
    assert_eq!(report.panics, 0);
    assert!(report.requests >= 6);
}

#[test]
fn undersized_queue_sheds_with_503_and_metrics_show_it() {
    // Deliberately under-provisioned: one-deep admission queue, one engine
    // thread, small connection backlog — heavy concurrent traffic must
    // shed rather than queue unboundedly.
    let config = ServeConfig {
        queue_capacity: 1,
        io_threads: 2,
        engine_threads: 1,
        batch_max: 1,
        ..test_config()
    };
    let (sheds_seen, report) = with_server(config, |addr| {
        let counters = std::sync::Mutex::new((0usize, 0usize, 0usize)); // ok, shed, other
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    for _ in 0..3 {
                        // No retries: a shed must surface as a distinct 503.
                        match request(
                            addr,
                            "POST",
                            "/soi",
                            Some(&soi_body(0.01, 5_000.0)),
                            TIMEOUT,
                        ) {
                            Ok(r) if r.status == 200 => counters.lock().unwrap().0 += 1,
                            Ok(r) if r.status == 503 => {
                                assert!(
                                    r.body.contains("shedding load"),
                                    "503 body lacks shed marker: {}",
                                    r.body
                                );
                                counters.lock().unwrap().1 += 1;
                            }
                            _ => counters.lock().unwrap().2 += 1,
                        }
                    }
                });
            }
        });
        let (ok, shed, other) = *counters.lock().unwrap();
        assert_eq!(other, 0, "unexpected non-200/503 responses");
        assert!(ok > 0, "nothing was served under overload");
        // Overload metrics are visible while the server still runs.
        let metrics = request_with_retry(
            addr,
            "GET",
            "/metrics",
            None,
            TIMEOUT,
            RetryPolicy {
                retries: 10,
                backoff: Duration::from_millis(50),
            },
        )
        .response
        .expect("metrics reachable after load");
        assert!(metrics.body.contains("soi_serve_shed_total"));
        shed
    });
    assert!(
        sheds_seen > 0 && report.sheds >= sheds_seen as u64,
        "expected admission sheds under a size-1 queue (client saw {sheds_seen}, report {})",
        report.sheds
    );
    assert_eq!(report.panics, 0);
    assert!(report.drained);
}

#[test]
fn tiny_deadlines_degrade_to_partial_results_validating_lbk() {
    let (partials, report) = with_server(test_config(), |addr| {
        let mut partials = 0usize;
        for _ in 0..10 {
            // 50µs of budget: expires during (or before) list access.
            let r =
                request(addr, "POST", "/soi", Some(&soi_body(0.002, 0.05)), TIMEOUT).expect("soi");
            assert_eq!(r.status, 200, "body: {}", r.body);
            let doc = parse(&r.body).expect("valid JSON");
            let partial = doc.get("partial") == Some(&Json::Bool(true));
            let lbk = doc.get("lbk").and_then(Json::as_f64).unwrap_or(0.0);
            let results = doc.get("results").and_then(Json::as_arr).expect("results");
            if partial {
                partials += 1;
                // The serving contract: every returned score is a sound
                // lower bound at least the recorded LBk.
                for entry in results {
                    let interest = entry
                        .get("interest")
                        .and_then(Json::as_f64)
                        .expect("interest");
                    assert!(
                        interest >= lbk,
                        "partial result score {interest} below recorded LBk {lbk}"
                    );
                }
            }
        }
        partials
    });
    assert!(
        partials > 0,
        "50µs deadlines never produced a partial result"
    );
    assert!(report.partials >= partials as u64);
    assert_eq!(report.panics, 0);
}

#[test]
fn accepted_request_p99_stays_within_twice_the_deadline() {
    let deadline = Duration::from_millis(200);
    let config = ServeConfig {
        default_deadline: deadline,
        max_deadline: deadline,
        ..test_config()
    };
    let (latencies, report) = with_server(config, |addr| {
        let all = std::sync::Mutex::new(Vec::new());
        // Concurrency stays at the IO worker count: the budget clock starts
        // at parse time, so connections queued behind busy workers would add
        // wait that the deadline cannot bound.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..4 {
                        let started = Instant::now();
                        // Ask for far more budget than the cap: the server
                        // must clamp to max_deadline.
                        let r = request(
                            addr,
                            "POST",
                            "/soi",
                            Some(&soi_body(0.01, 60_000.0)),
                            TIMEOUT,
                        )
                        .expect("request");
                        if r.status == 200 {
                            all.lock().unwrap().push(started.elapsed());
                        }
                    }
                });
            }
        });
        let mut latencies = all.into_inner().unwrap();
        latencies.sort();
        latencies
    });
    assert!(!latencies.is_empty(), "no accepted requests");
    let p99 = latencies[(latencies.len() - 1) * 99 / 100];
    assert!(
        p99 <= deadline * 2,
        "accepted p99 {p99:?} exceeds 2x the {deadline:?} deadline"
    );
    assert_eq!(report.panics, 0);
    assert!(report.drained);
}

#[test]
fn request_scoped_observability_end_to_end() {
    // Zero threshold: every request is "slow", so the log and counter
    // must fire deterministically.
    let config = ServeConfig {
        slow_query: Some(Duration::ZERO),
        ..test_config()
    };
    let ((), report) = with_server(config, |addr| {
        // A traced + explained query embeds both artifacts and its id.
        let body = "{\"keywords\":[\"shop\",\"food\"],\"k\":5,\"eps\":0.002,\
                    \"deadline_ms\":30000,\"trace\":true,\"explain\":true}";
        let traced = request(addr, "POST", "/soi", Some(body), TIMEOUT).expect("traced soi");
        assert_eq!(traced.status, 200, "body: {}", traced.body);
        let header_id: u64 = traced
            .header("x-soi-request-id")
            .expect("x-soi-request-id header")
            .parse()
            .expect("numeric request id");
        assert!(header_id >= 1);
        let doc = parse(&traced.body).expect("valid JSON");
        assert_eq!(
            doc.get("request_id").and_then(Json::as_f64),
            Some(header_id as f64),
            "body id must match the header"
        );
        let trace = doc.get("trace").expect("embedded trace");
        let events = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        assert!(!events.is_empty(), "captured trace has no events");
        let stamped = events
            .iter()
            .filter_map(|ev| ev.get("args").and_then(|a| a.get("request_id")))
            .filter_map(Json::as_f64)
            .collect::<Vec<_>>();
        assert!(!stamped.is_empty(), "no event carries a request id");
        assert!(
            stamped.iter().all(|id| *id == header_id as f64),
            "trace events stamped with a foreign request id: {stamped:?}"
        );
        assert!(doc.get("explain").is_some(), "explain rows not embedded");

        // Concurrent untraced requests: no embedded artifacts, and nothing
        // leaks into the process-global trace buffer (capture is private).
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let r = request(
                        addr,
                        "POST",
                        "/soi",
                        Some(&soi_body(0.002, 30_000.0)),
                        TIMEOUT,
                    )
                    .expect("untraced soi");
                    assert_eq!(r.status, 200, "body: {}", r.body);
                    assert!(r.header("x-soi-request-id").is_some());
                    let doc = parse(&r.body).expect("valid JSON");
                    assert!(
                        doc.get("trace").is_none() && doc.get("explain").is_none(),
                        "untraced response embedded artifacts: {}",
                        r.body
                    );
                    assert!(doc.get("request_id").is_some());
                });
            }
        });
        assert!(
            soi_obs::trace::take_events().is_empty(),
            "request capture leaked events into the global trace buffer"
        );

        // The traced record is retrievable by id, artifacts embedded.
        let by_id = request(
            addr,
            "GET",
            &format!("/debug/requests/{header_id}"),
            None,
            TIMEOUT,
        )
        .expect("debug by id");
        assert_eq!(by_id.status, 200, "body: {}", by_id.body);
        let record = parse(&by_id.body).expect("valid JSON");
        assert_eq!(
            record.get("id").and_then(Json::as_f64),
            Some(header_id as f64)
        );
        assert_eq!(record.get("endpoint").and_then(Json::as_str), Some("/soi"));
        assert_eq!(record.get("traced"), Some(&Json::Bool(true)));
        assert!(
            record.get("trace").is_some() && record.get("explain").is_some(),
            "by-id record must embed artifacts: {}",
            by_id.body
        );

        // The ring list summarizes every request without payloads.
        let list = request(addr, "GET", "/debug/requests", None, TIMEOUT).expect("debug list");
        assert_eq!(list.status, 200);
        let listing = parse(&list.body).expect("valid JSON");
        let entries = listing
            .get("requests")
            .and_then(Json::as_arr)
            .expect("requests array");
        let mine = entries
            .iter()
            .find(|e| e.get("id").and_then(Json::as_f64) == Some(header_id as f64))
            .expect("traced request listed");
        assert_eq!(mine.get("traced"), Some(&Json::Bool(true)));
        assert!(mine.get("trace").is_none(), "list view embeds payloads");

        // Unknown and malformed ids answer 404/400.
        let missing = request(addr, "GET", "/debug/requests/999999", None, TIMEOUT).expect("404");
        assert_eq!(missing.status, 404);
        let bad = request(addr, "GET", "/debug/requests/xyz", None, TIMEOUT).expect("400");
        assert_eq!(bad.status, 400);

        // POST /explain shares the /soi body schema.
        let explain = request(
            addr,
            "POST",
            "/explain",
            Some("{\"keywords\":[\"shop\"],\"k\":3}"),
            TIMEOUT,
        )
        .expect("post explain");
        assert_eq!(explain.status, 200, "body: {}", explain.body);
        assert!(explain.body.contains("\"termination\""));
        assert!(explain.body.contains("\"request_id\""));

        // /status carries the rolling-window SLO summary.
        let status = request(addr, "GET", "/status", None, TIMEOUT).expect("status");
        let doc = parse(&status.body).expect("valid JSON");
        let window = doc.get("window").expect("window summary");
        assert!(
            window.get("requests").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0,
            "window saw no requests: {}",
            status.body
        );
        assert!(window.get("latency_p50_ms").is_some());

        // The zero-threshold slow-query counter fired, and the process /
        // windowed series are exported.
        let metrics = request(addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
        let slow = metrics
            .body
            .lines()
            .find(|l| l.starts_with("soi_serve_slow_queries_total "))
            .expect("slow-query series");
        let fired: f64 = slow
            .split_whitespace()
            .nth(1)
            .expect("value")
            .parse()
            .expect("numeric");
        assert!(fired >= 1.0, "slow-query counter never fired: {slow}");
        for series in [
            "soi_process_uptime_seconds",
            "soi_build_info",
            "soi_trace_dropped_events_total",
            "soi_serve_request_latency_window_seconds",
            "soi_serve_requests_window",
        ] {
            assert!(metrics.body.contains(series), "missing {series}");
        }
    });
    assert!(report.drained);
    assert_eq!(report.panics, 0);
}

#[test]
fn trace_sampling_captures_into_the_ring_without_embedding() {
    let config = ServeConfig {
        trace_sample: 1, // every queued query is sampled
        ..test_config()
    };
    let ((), report) = with_server(config, |addr| {
        let r = request(
            addr,
            "POST",
            "/soi",
            Some(&soi_body(0.002, 30_000.0)),
            TIMEOUT,
        )
        .expect("sampled soi");
        assert_eq!(r.status, 200, "body: {}", r.body);
        let id: u64 = r
            .header("x-soi-request-id")
            .expect("id header")
            .parse()
            .expect("numeric");
        // Sampled: the response does NOT embed the trace...
        let doc = parse(&r.body).expect("valid JSON");
        assert!(doc.get("trace").is_none(), "sampled trace was embedded");
        // ...but the ring record holds it.
        let by_id = request(addr, "GET", &format!("/debug/requests/{id}"), None, TIMEOUT)
            .expect("debug by id");
        assert_eq!(by_id.status, 200, "body: {}", by_id.body);
        let record = parse(&by_id.body).expect("valid JSON");
        assert_eq!(record.get("traced"), Some(&Json::Bool(true)));
        let events = record
            .get("trace")
            .and_then(|t| t.get("traceEvents"))
            .and_then(Json::as_arr)
            .expect("sampled trace in ring");
        assert!(!events.is_empty());
    });
    assert!(report.drained);
    assert_eq!(report.panics, 0);
}

#[test]
fn debug_filters_profile_window_and_metrics_hygiene() {
    // Zero slow-query threshold: every request logs with its endpoint and
    // params digest, and the ring record joins on the same fields.
    let config = ServeConfig {
        slow_query: Some(Duration::ZERO),
        ..test_config()
    };
    let ((), report) = with_server(config, |addr| {
        // Mixed traffic so the endpoint filter has something to separate.
        let mut soi_id = 0u64;
        for _ in 0..3 {
            let r = request(
                addr,
                "POST",
                "/soi",
                Some(&soi_body(0.002, 30_000.0)),
                TIMEOUT,
            )
            .expect("soi");
            assert_eq!(r.status, 200, "body: {}", r.body);
            soi_id = r
                .header("x-soi-request-id")
                .expect("id header")
                .parse()
                .expect("numeric id");
        }
        let r = request(
            addr,
            "POST",
            "/describe",
            Some("{\"street\":\"no-such-street\",\"k\":3}"),
            TIMEOUT,
        )
        .expect("describe");
        assert!(r.status == 200 || r.status == 404, "status {}", r.status);

        // /debug/requests?endpoint=soi keeps only /soi records;
        // limit truncates after filtering and `matched` reports the
        // pre-truncation count.
        let list = request(
            addr,
            "GET",
            "/debug/requests?endpoint=soi&limit=2",
            None,
            TIMEOUT,
        )
        .expect("filtered list");
        assert_eq!(list.status, 200, "body: {}", list.body);
        let doc = parse(&list.body).expect("valid JSON");
        assert_eq!(doc.get("matched").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(2.0));
        let entries = doc
            .get("requests")
            .and_then(Json::as_arr)
            .expect("requests array");
        assert_eq!(entries.len(), 2);
        for e in entries {
            assert_eq!(e.get("endpoint").and_then(Json::as_str), Some("/soi"));
        }
        // Malformed filter values answer 400.
        for bad in [
            "/debug/requests?limit=minus-one",
            "/debug/requests?endpoint=nope",
            "/debug/requests?frobnicate=1",
        ] {
            let r = request(addr, "GET", bad, None, TIMEOUT).expect("bad filter");
            assert_eq!(r.status, 400, "{bad} answered {}", r.status);
        }

        // Slow-query join: the zero threshold logged every request with
        // endpoint= and params=; the by-id record carries the same fields
        // so a log line joins against `/debug/requests/<id>`.
        let by_id = request(
            addr,
            "GET",
            &format!("/debug/requests/{soi_id}"),
            None,
            TIMEOUT,
        )
        .expect("by id");
        assert_eq!(by_id.status, 200, "body: {}", by_id.body);
        let record = parse(&by_id.body).expect("valid JSON");
        assert_eq!(record.get("endpoint").and_then(Json::as_str), Some("/soi"));
        let params = record
            .get("params")
            .and_then(Json::as_str)
            .expect("params digest");
        assert!(
            params.contains("k=5") && params.contains("eps="),
            "params digest missing query shape: {params}"
        );

        // /debug/profile under live load: background /soi traffic while a
        // one-second window runs, then the folded artifact must resolve
        // known span names.
        let stop = AtomicBool::new(false);
        let (folded, overlap, json_profile) = std::thread::scope(|s| {
            let loader = s.spawn(|| {
                while !stop.load(Ordering::SeqCst) {
                    let _ = request(
                        addr,
                        "POST",
                        "/soi",
                        Some(&soi_body(0.002, 30_000.0)),
                        TIMEOUT,
                    );
                }
            });
            let window = s.spawn(|| {
                request(
                    addr,
                    "GET",
                    "/debug/profile?seconds=2&hz=200",
                    None,
                    TIMEOUT,
                )
                .expect("profile window")
            });
            // Overlapping window while the first is live: 503 overload.
            std::thread::sleep(Duration::from_millis(500));
            let overlap = request(addr, "GET", "/debug/profile?seconds=1", None, TIMEOUT)
                .expect("overlapping window");
            let folded = window.join().expect("window thread");
            // A second, non-overlapping window in JSON form.
            let json_profile = request(
                addr,
                "GET",
                "/debug/profile?seconds=1&hz=200&format=json",
                None,
                TIMEOUT,
            )
            .expect("json window");
            stop.store(true, Ordering::SeqCst);
            loader.join().expect("loader thread");
            (folded, overlap, json_profile)
        });
        assert_eq!(overlap.status, 503, "body: {}", overlap.body);
        assert!(overlap.body.contains("overload"), "body: {}", overlap.body);
        assert_eq!(folded.status, 200, "body: {}", folded.body);
        assert!(
            folded
                .header("content-type")
                .unwrap_or("")
                .contains("text/plain"),
            "folded content type"
        );
        // Every folded line is `frame;frame;... count` over known spans,
        // and the load resolves at least one level below `soi.query`.
        let mut saw_below_query = false;
        for line in folded.body.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
            count.parse::<u64>().expect("folded count");
            for frame in stack.split(';') {
                assert!(
                    soi_obs::names::is_known_span(frame),
                    "unknown frame {frame:?} in {line:?}"
                );
            }
            if let Some((_, below)) = stack.split_once("soi.query;") {
                if !below.is_empty() {
                    saw_below_query = true;
                }
            }
        }
        assert!(
            saw_below_query,
            "no stack resolves below soi.query under load:\n{}",
            folded.body
        );
        assert_eq!(json_profile.status, 200, "body: {}", json_profile.body);
        let doc = parse(&json_profile.body).expect("valid profile JSON");
        let profile = doc.get("profile").expect("profile object");
        assert!(profile.get("samples").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        assert!(profile.get("frames").and_then(Json::as_arr).is_some());

        // /status reports the retained window and that profiling is off.
        let status = request(addr, "GET", "/status", None, TIMEOUT).expect("status");
        let doc = parse(&status.body).expect("valid JSON");
        assert_eq!(doc.get("profiling"), Some(&Json::Bool(false)));
        let prof = doc.get("profile").expect("retained profile summary");
        assert!(prof.get("samples").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        assert!(
            prof.get("top_self").and_then(Json::as_arr).is_some(),
            "top_self table missing: {}",
            status.body
        );

        // Metrics hygiene: the full exposition lints clean (every series
        // typed and documented) and the profiler counters are exported.
        let metrics = request(addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
        assert_eq!(metrics.status, 200);
        let problems = soi_obs::metrics::lint_exposition(&metrics.body);
        assert!(problems.is_empty(), "exposition lint: {problems:?}");
        for series in [
            "soi_profile_samples_total",
            "soi_profile_dropped_samples_total",
        ] {
            assert!(metrics.body.contains(series), "missing {series}");
        }
    });
    assert!(report.drained);
    assert_eq!(report.panics, 0);
}

#[test]
fn drain_answers_queued_work_before_exiting() {
    // Requests admitted before shutdown must still be answered during the
    // drain, and the report must say the queue emptied.
    let ((), report) = with_server(test_config(), |addr| {
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        request(
                            addr,
                            "POST",
                            "/soi",
                            Some(&soi_body(0.002, 2_000.0)),
                            TIMEOUT,
                        )
                    })
                })
                .collect();
            for w in workers {
                let r = w.join().expect("join").expect("response");
                assert!(r.status == 200 || r.status == 503, "status {}", r.status);
            }
        });
    });
    assert!(report.drained, "drain left work behind");
    assert_eq!(report.panics, 0);
}

/// A position guaranteed inside the index extent (an existing POI's).
fn in_extent_pos() -> (f64, f64) {
    let p = dataset().pois.iter().next().expect("dataset has POIs").pos;
    (p.x, p.y)
}

#[test]
fn ingest_swaps_epochs_folds_at_threshold_and_replays_on_restart() {
    let dir = std::env::temp_dir().join(format!("soi_serve_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log = dir.join("deltas.jsonl");
    let config = ServeConfig {
        ingest_log: Some(log.clone()),
        epoch_max_delta: 4,
        ..test_config()
    };
    let (x, y) = in_extent_pos();
    let add =
        format!("{{\"op\":\"add_poi\",\"x\":{x},\"y\":{y},\"kw\":[\"shop\"],\"weight\":1.0}}");

    let ((), report) = with_server(config.clone(), |addr| {
        // Boot: empty log, epoch 0, nothing pending.
        let status = request(addr, "GET", "/status", None, TIMEOUT).expect("status");
        let doc = parse(&status.body).expect("valid JSON");
        let epoch = doc.get("epoch").expect("epoch object");
        assert_eq!(epoch.get("id").and_then(Json::as_f64), Some(0.0));
        assert_eq!(epoch.get("pending_ops").and_then(Json::as_f64), Some(0.0));

        // First batch: two inserts -> epoch 1, pending 2, no fold yet.
        let body = format!("{add}\n{add}");
        let r = request(addr, "POST", "/ingest", Some(&body), TIMEOUT).expect("ingest");
        assert_eq!(r.status, 200, "body: {}", r.body);
        let doc = parse(&r.body).expect("valid JSON");
        assert_eq!(doc.get("accepted").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("epoch").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("pending_ops").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("folded"), Some(&Json::Bool(false)));

        // Queries keep answering, reading through base+delta.
        let soi = request(
            addr,
            "POST",
            "/soi",
            Some(&soi_body(0.002, 30_000.0)),
            TIMEOUT,
        )
        .expect("soi");
        assert_eq!(soi.status, 200, "body: {}", soi.body);

        // The inline explain response reports the epoch it pinned.
        let explain =
            request(addr, "GET", "/explain?keywords=shop&k=3", None, TIMEOUT).expect("explain");
        assert_eq!(explain.status, 200);
        let doc = parse(&explain.body).expect("valid JSON");
        assert_eq!(doc.get("epoch").and_then(Json::as_f64), Some(1.0));

        // Second batch reaches the 4-op threshold: the server folds a
        // fresh base and the delta empties.
        let del = "{\"op\":\"del_poi\",\"id\":0}";
        let body = format!("{add}\n{del}");
        let r = request(addr, "POST", "/ingest", Some(&body), TIMEOUT).expect("ingest");
        assert_eq!(r.status, 200, "body: {}", r.body);
        let doc = parse(&r.body).expect("valid JSON");
        assert_eq!(doc.get("folded"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("epoch").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("pending_ops").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("applied_ops").and_then(Json::as_f64), Some(4.0));

        // /status agrees after the swap, and queries still answer.
        let status = request(addr, "GET", "/status", None, TIMEOUT).expect("status");
        let doc = parse(&status.body).expect("valid JSON");
        let epoch = doc.get("epoch").expect("epoch object");
        assert_eq!(epoch.get("id").and_then(Json::as_f64), Some(2.0));
        assert_eq!(epoch.get("folds").and_then(Json::as_f64), Some(1.0));
        let soi = request(
            addr,
            "POST",
            "/soi",
            Some(&soi_body(0.002, 30_000.0)),
            TIMEOUT,
        )
        .expect("soi after fold");
        assert_eq!(soi.status, 200, "body: {}", soi.body);

        // A malformed batch is rejected atomically: 400, state unchanged.
        let r = request(addr, "POST", "/ingest", Some("not json"), TIMEOUT).expect("bad ingest");
        assert_eq!(r.status, 400, "body: {}", r.body);
        // An op referencing an unknown vocabulary term is rejected too.
        let r = request(
            addr,
            "POST",
            "/ingest",
            Some(&format!(
                "{{\"op\":\"add_poi\",\"x\":{x},\"y\":{y},\"kw\":[\"no-such-term-zzz\"]}}"
            )),
            TIMEOUT,
        )
        .expect("unknown term");
        assert_eq!(r.status, 400, "body: {}", r.body);
        let status = request(addr, "GET", "/status", None, TIMEOUT).expect("status");
        let doc = parse(&status.body).expect("valid JSON");
        let epoch = doc.get("epoch").expect("epoch object");
        assert_eq!(
            epoch.get("id").and_then(Json::as_f64),
            Some(2.0),
            "rejected batches must not advance the epoch"
        );
    });
    assert!(report.drained);
    assert_eq!(report.panics, 0);

    // The log journalled all four accepted ops (and none of the rejected
    // ones): a restarted server without an index cache replays them as
    // one boot delta and serves at epoch 1 with 4 pending ops.
    let logged = std::fs::read_to_string(&log).expect("ingest log exists");
    assert_eq!(logged.lines().filter(|l| !l.trim().is_empty()).count(), 4);
    let ((), report) = with_server(config, |addr| {
        let status = request(addr, "GET", "/status", None, TIMEOUT).expect("status");
        let doc = parse(&status.body).expect("valid JSON");
        let epoch = doc.get("epoch").expect("epoch object");
        assert_eq!(epoch.get("id").and_then(Json::as_f64), Some(1.0));
        assert_eq!(epoch.get("pending_ops").and_then(Json::as_f64), Some(4.0));
        let soi = request(
            addr,
            "POST",
            "/soi",
            Some(&soi_body(0.002, 30_000.0)),
            TIMEOUT,
        )
        .expect("soi after replay");
        assert_eq!(soi.status, 200, "body: {}", soi.body);
    });
    assert!(report.drained);
    assert_eq!(report.panics, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ingest_with_index_cache_persists_folds_across_restart() {
    let dir = std::env::temp_dir().join(format!("soi_serve_ingestc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log = dir.join("deltas.jsonl");
    let cache = dir.join("cache");
    let config = ServeConfig {
        ingest_log: Some(log.clone()),
        index_cache: Some(cache.clone()),
        epoch_max_delta: 2,
        ..test_config()
    };
    let (x, y) = in_extent_pos();
    let add =
        format!("{{\"op\":\"add_poi\",\"x\":{x},\"y\":{y},\"kw\":[\"shop\"],\"weight\":1.0}}");

    let ((), report) = with_server(config.clone(), |addr| {
        // Two ops hit the threshold immediately: fold + snapshot.
        let body = format!("{add}\n{add}");
        let r = request(addr, "POST", "/ingest", Some(&body), TIMEOUT).expect("ingest");
        assert_eq!(r.status, 200, "body: {}", r.body);
        let doc = parse(&r.body).expect("valid JSON");
        assert_eq!(doc.get("folded"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("epoch").and_then(Json::as_f64), Some(1.0));
        // One more op stays pending past the snapshot.
        let r = request(addr, "POST", "/ingest", Some(&add), TIMEOUT).expect("ingest");
        assert_eq!(r.status, 200, "body: {}", r.body);
        let doc = parse(&r.body).expect("valid JSON");
        assert_eq!(doc.get("folded"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("epoch").and_then(Json::as_f64), Some(2.0));
    });
    assert!(report.drained);
    assert_eq!(report.panics, 0);

    // Restart with the cache: the folded snapshot restores the first two
    // ops as base (one fold boundary) and only the tail replays as a
    // delta — epoch = 1 boundary + 1 live delta, 1 pending op.
    let ((), report) = with_server(config, |addr| {
        let status = request(addr, "GET", "/status", None, TIMEOUT).expect("status");
        let doc = parse(&status.body).expect("valid JSON");
        let epoch = doc.get("epoch").expect("epoch object");
        assert_eq!(
            epoch.get("applied_ops").and_then(Json::as_f64),
            Some(2.0),
            "snapshot must restore the folded ops: {}",
            status.body
        );
        assert_eq!(epoch.get("pending_ops").and_then(Json::as_f64), Some(1.0));
        assert_eq!(epoch.get("id").and_then(Json::as_f64), Some(2.0));
        let soi = request(
            addr,
            "POST",
            "/soi",
            Some(&soi_body(0.002, 30_000.0)),
            TIMEOUT,
        )
        .expect("soi after cached restart");
        assert_eq!(soi.status, 200, "body: {}", soi.body);
    });
    assert!(report.drained);
    assert_eq!(report.panics, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
