//! Synthetic city generator.
//!
//! The paper evaluates on real crowdsourced data (road networks from
//! OpenStreetMap; POIs from DBpedia, OSM, Wikimapia, Foursquare; photos
//! from Flickr and Panoramio) for London, Berlin, and Vienna (Table 1).
//! Those extracts are not redistributable, so this crate synthesises
//! datasets with the same statistical features the algorithms are
//! sensitive to:
//!
//! - a jittered block-grid **road network** with named multi-segment
//!   streets, breakpoint subdivisions (very short segments), and long
//!   radial avenues (very long segments) — matching Table 1's segment
//!   count and length-range shape at a configurable scale;
//! - **POIs** with category-structured keyword sets whose per-category
//!   shares reproduce the growth of relevant-POI counts in Table 4
//!   (religion ⊂ +education ⊂ +food ⊂ +services), plus planted
//!   high-density *destination streets* per category that serve as ground
//!   truth for the Table 2 effectiveness study;
//! - **photos** with the pathologies Figure 3 exhibits: near-duplicate
//!   landmark bursts (the "HMV effect"), single-event tag floods (the
//!   "demonstration effect"), tourist photos along popular streets, and
//!   background noise.
//!
//! Everything is driven by a single seed: the same [`CityConfig`] always
//! produces the same dataset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod city;
pub mod network_gen;
pub mod photo_gen;
pub mod poi_gen;
pub mod vocab;

pub use city::{berlin, generate, london, vienna, CityConfig, GroundTruth};
pub use vocab::{CategorySpec, CATEGORIES};
