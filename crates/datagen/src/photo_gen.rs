//! Synthetic photo generation.
//!
//! Reproduces the photo pathologies the paper's Figure 3 exercises:
//!
//! - **Landmark bursts** ("HMV effect"): dense clusters of near-duplicate
//!   photos at one spot with nearly identical tags — these dominate a
//!   purely spatial-relevance selection (Fig. 3a);
//! - **Event bursts** ("demonstration effect"): many photos along one
//!   street sharing a high-frequency event tag — these dominate a purely
//!   textual-relevance selection (Fig. 3b);
//! - **Tourist photos** along popular streets with mixed tags;
//! - **Background noise** everywhere.

use crate::city::{CityConfig, GroundTruth};
use crate::poi_gen::{point_near_segment, SegmentSampler};
use crate::vocab::{EVENT_TAGS, LANDMARK_TAGS, TOURIST_TAGS};
use rand::rngs::StdRng;
use rand::RngExt;
use soi_common::{KeywordId, StreetId};
use soi_data::PhotoCollection;
use soi_geo::Point;
use soi_network::RoadNetwork;
use soi_text::{KeywordSet, Vocabulary};

/// Generates the photo collection.
pub fn generate_photos(
    rng: &mut StdRng,
    config: &CityConfig,
    network: &RoadNetwork,
    vocab: &mut Vocabulary,
    truth: &GroundTruth,
) -> PhotoCollection {
    let mut photos = PhotoCollection::new();
    let n = config.n_photos;
    if n == 0 {
        return photos;
    }

    let tourist_ids: Vec<KeywordId> = TOURIST_TAGS.iter().map(|t| vocab.intern(t)).collect();
    let landmark_ids: Vec<KeywordId> = LANDMARK_TAGS.iter().map(|t| vocab.intern(t)).collect();
    let event_ids: Vec<KeywordId> = EVENT_TAGS.iter().map(|t| vocab.intern(t)).collect();

    // All destination streets (with their category keyword).
    let destinations: Vec<(StreetId, KeywordId)> = truth
        .destinations
        .iter()
        .flat_map(|(cat, streets)| {
            let kw = vocab.intern(cat);
            streets.iter().map(move |&s| (s, kw))
        })
        .collect();
    let dest_samplers: Vec<SegmentSampler> = destinations
        .iter()
        .map(|&(s, _)| SegmentSampler::of_street(network, s))
        .collect();
    let background_sampler = SegmentSampler::popularity_weighted(rng, network);
    let extent = network.extent();
    let near = (config.block_size * 0.32).max(1e-9);

    let n_tourist = if destinations.is_empty() {
        0
    } else {
        n * 35 / 100
    };
    let n_landmark = if destinations.is_empty() {
        0
    } else {
        n * 20 / 100
    };
    let n_event = if destinations.is_empty() {
        0
    } else {
        n * 10 / 100
    };

    // --- Tourist photos along destination streets.
    for i in 0..n_tourist {
        let d = i % destinations.len();
        let Some(seg) = dest_samplers[d].sample(rng) else {
            continue;
        };
        let pos = point_near_segment(rng, network, seg, near);
        let mut tags = vec![
            destinations[d].1,
            tourist_ids[rng.random_range(0..tourist_ids.len())],
        ];
        if rng.random_range(0..2) == 0 {
            tags.push(tourist_ids[rng.random_range(0..tourist_ids.len())]);
        }
        photos.add(pos, KeywordSet::from_ids(tags));
    }

    // --- Landmark bursts: few spots, many near-duplicates each.
    if n_landmark > 0 {
        let n_spots = (n_landmark / 60).clamp(1, 50);
        let per_spot = n_landmark / n_spots;
        for spot in 0..n_spots {
            let d = spot % destinations.len();
            let Some(seg) = dest_samplers[d].sample(rng) else {
                continue;
            };
            let center = point_near_segment(rng, network, seg, near * 0.5);
            let spot_tag = vocab.intern(&format!("landmark{spot}"));
            // The burst's shared tag set.
            let shared: Vec<KeywordId> = vec![
                spot_tag,
                landmark_ids[rng.random_range(0..landmark_ids.len())],
                landmark_ids[rng.random_range(0..landmark_ids.len())],
                destinations[d].1,
            ];
            for _ in 0..per_spot {
                let jitter = config.block_size * 0.02;
                let pos = Point::new(
                    center.x + rng.random_range(-jitter..jitter),
                    center.y + rng.random_range(-jitter..jitter),
                );
                photos.add(pos, KeywordSet::from_ids(shared.iter().copied()));
            }
        }
    }

    // --- Event bursts: photos spread along one street, one loud tag.
    if n_event > 0 {
        let n_events = (n_event / 150).clamp(1, EVENT_TAGS.len());
        let per_event = n_event / n_events;
        for e in 0..n_events {
            let d = (e * 3 + 1) % destinations.len();
            let event_tag = event_ids[e % event_ids.len()];
            for _ in 0..per_event {
                let Some(seg) = dest_samplers[d].sample(rng) else {
                    continue;
                };
                let pos = point_near_segment(rng, network, seg, near);
                let mut tags = vec![event_tag, destinations[d].1];
                if rng.random_range(0..2) == 0 {
                    tags.push(tourist_ids[rng.random_range(0..tourist_ids.len())]);
                }
                photos.add(pos, KeywordSet::from_ids(tags));
            }
        }
    }

    // --- Background noise fills the remainder.
    while photos.len() < n {
        let pos = if rng.random_range(0..3) == 0 {
            match extent {
                Some(ext) => Point::new(
                    rng.random_range(ext.min.x..ext.max.x),
                    rng.random_range(ext.min.y..ext.max.y),
                ),
                None => Point::ORIGIN,
            }
        } else {
            match background_sampler.sample(rng) {
                Some(seg) => point_near_segment(rng, network, seg, config.block_size * 0.8),
                None => Point::ORIGIN,
            }
        };
        let n_tags = rng.random_range(0..4usize);
        let tags = KeywordSet::from_ids(
            (0..n_tags).map(|_| tourist_ids[rng.random_range(0..tourist_ids.len())]),
        );
        photos.add(pos, tags);
    }

    photos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::vienna;
    use crate::network_gen::generate_network;
    use crate::poi_gen::generate_pois;
    use rand::SeedableRng;

    fn setup() -> (CityConfig, RoadNetwork, Vocabulary, GroundTruth) {
        let mut cfg = vienna(0.01);
        cfg.n_pois = 2_000;
        cfg.n_photos = 3_000;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let net = generate_network(&mut rng, &cfg);
        let mut vocab = Vocabulary::new();
        let (_, truth) = generate_pois(&mut rng, &cfg, &net, &mut vocab);
        (cfg, net, vocab, truth)
    }

    #[test]
    fn photo_count_exact() {
        let (cfg, net, mut vocab, truth) = setup();
        let mut rng = StdRng::seed_from_u64(99);
        let photos = generate_photos(&mut rng, &cfg, &net, &mut vocab, &truth);
        assert_eq!(photos.len(), cfg.n_photos);
    }

    #[test]
    fn destination_streets_attract_photos() {
        let (cfg, net, mut vocab, truth) = setup();
        let mut rng = StdRng::seed_from_u64(99);
        let photos = generate_photos(&mut rng, &cfg, &net, &mut vocab, &truth);
        let planted = truth.for_category("shop")[0];
        let eps = 0.0005;
        let near = photos
            .iter()
            .filter(|p| net.dist_point_to_street(p.pos, planted) <= eps)
            .count();
        // A planted street should have a substantial photo set Rs.
        assert!(near > 30, "only {near} photos near planted street");
    }

    #[test]
    fn landmark_bursts_are_near_duplicates() {
        let (cfg, net, mut vocab, truth) = setup();
        let mut rng = StdRng::seed_from_u64(99);
        let photos = generate_photos(&mut rng, &cfg, &net, &mut vocab, &truth);
        let lm = vocab.lookup("landmark0").expect("burst tag interned");
        let burst: Vec<_> = photos.iter().filter(|p| p.tags.contains(lm)).collect();
        assert!(burst.len() >= 10, "burst too small: {}", burst.len());
        // All burst photos share identical tag sets and sit within a tiny
        // radius.
        let first = &burst[0];
        for p in &burst {
            assert_eq!(p.tags, first.tags);
            assert!(p.pos.dist(first.pos) < cfg.block_size * 0.2);
        }
    }

    #[test]
    fn event_burst_shares_tag_across_street() {
        let (cfg, net, mut vocab, truth) = setup();
        let mut rng = StdRng::seed_from_u64(99);
        let photos = generate_photos(&mut rng, &cfg, &net, &mut vocab, &truth);
        let tag = vocab.lookup(EVENT_TAGS[0]).unwrap();
        let burst: Vec<_> = photos.iter().filter(|p| p.tags.contains(tag)).collect();
        assert!(burst.len() >= 20);
        // Spread out (unlike a landmark burst).
        let spread = burst
            .iter()
            .map(|p| p.pos.dist(burst[0].pos))
            .fold(0.0f64, f64::max);
        assert!(spread > cfg.block_size, "event burst not spread: {spread}");
    }

    #[test]
    fn zero_photos_config() {
        let (mut cfg, net, mut vocab, truth) = setup();
        cfg.n_photos = 0;
        let mut rng = StdRng::seed_from_u64(99);
        let photos = generate_photos(&mut rng, &cfg, &net, &mut vocab, &truth);
        assert!(photos.is_empty());
    }
}
