//! City configurations, presets, and the top-level generator.

use crate::network_gen::generate_network;
use crate::photo_gen::generate_photos;
use crate::poi_gen::generate_pois;
use rand::rngs::StdRng;
use rand::SeedableRng;
use soi_common::StreetId;
use soi_data::Dataset;
use soi_text::Vocabulary;

/// Parameters of a synthetic city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Dataset name.
    pub name: String,
    /// Master seed; the entire dataset is a deterministic function of it.
    pub seed: u64,
    /// Grid blocks along x.
    pub blocks_x: usize,
    /// Grid blocks along y.
    pub blocks_y: usize,
    /// Block side length in coordinate units (degrees; the paper's ε of
    /// 0.0005° ≈ 55 m corresponds to ~0.4 blocks at the default 0.00125°).
    pub block_size: f64,
    /// Probability that a grid segment is subdivided by breakpoints.
    pub breakpoint_prob: f64,
    /// Number of long diagonal avenues.
    pub avenues: usize,
    /// Total POIs to generate.
    pub n_pois: usize,
    /// Total photos to generate.
    pub n_photos: usize,
}

impl CityConfig {
    /// The extent width of the generated city.
    pub fn width(&self) -> f64 {
        self.blocks_x as f64 * self.block_size
    }

    /// The extent height of the generated city.
    pub fn height(&self) -> f64 {
        self.blocks_y as f64 * self.block_size
    }
}

/// Ground truth recorded by the generator: the planted destination streets
/// per category (used as the authoritative lists of the Table 2 study).
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// `(category name, planted street ids)` pairs.
    pub destinations: Vec<(String, Vec<StreetId>)>,
}

impl GroundTruth {
    /// The planted streets for a category (empty if none).
    pub fn for_category(&self, name: &str) -> &[StreetId] {
        self.destinations
            .iter()
            .find(|(c, _)| c == name)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Generates a complete dataset plus its ground truth from a config.
pub fn generate(config: &CityConfig) -> (Dataset, GroundTruth) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let network = generate_network(&mut rng, config);
    let mut vocab = Vocabulary::new();
    let (pois, truth) = generate_pois(&mut rng, config, &network, &mut vocab);
    let photos = generate_photos(&mut rng, config, &network, &mut vocab, &truth);
    (
        Dataset::new(config.name.clone(), network, vocab, pois, photos),
        truth,
    )
}

fn scaled(base_blocks: usize, scale: f64) -> usize {
    ((base_blocks as f64) * scale.sqrt()).round().max(4.0) as usize
}

fn scaled_n(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).round().max(100.0) as usize
}

/// London-like preset (Table 1: 113,885 segments, 2,114,264 POIs at
/// `scale = 1.0`). `scale` shrinks both area and entity counts.
pub fn london(scale: f64) -> CityConfig {
    CityConfig {
        name: "london".into(),
        seed: 0x10_0d_01,
        blocks_x: scaled(225, scale),
        blocks_y: scaled(225, scale),
        block_size: 0.00125,
        breakpoint_prob: 0.12,
        avenues: 8,
        n_pois: scaled_n(2_114_264, scale),
        n_photos: scaled_n(500_000, scale),
    }
}

/// Berlin-like preset (Table 1: 47,755 segments, 797,244 POIs at scale 1).
pub fn berlin(scale: f64) -> CityConfig {
    CityConfig {
        name: "berlin".into(),
        seed: 0xbe_71_10,
        blocks_x: scaled(146, scale),
        blocks_y: scaled(146, scale),
        block_size: 0.00125,
        breakpoint_prob: 0.12,
        avenues: 6,
        n_pois: scaled_n(797_244, scale),
        n_photos: scaled_n(160_000, scale),
    }
}

/// Vienna-like preset (Table 1: 22,211 segments, 408,712 POIs at scale 1).
pub fn vienna(scale: f64) -> CityConfig {
    CityConfig {
        name: "vienna".into(),
        seed: 0x71_e2_2a,
        blocks_x: scaled(100, scale),
        blocks_y: scaled(100, scale),
        block_size: 0.00125,
        breakpoint_prob: 0.12,
        avenues: 4,
        n_pois: scaled_n(408_712, scale),
        n_photos: scaled_n(100_000, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = vienna(0.01);
        let (a, truth_a) = generate(&cfg);
        let (b, truth_b) = generate(&cfg);
        assert_eq!(a.network.num_segments(), b.network.num_segments());
        assert_eq!(a.pois.len(), b.pois.len());
        assert_eq!(a.photos.len(), b.photos.len());
        assert_eq!(a.vocab.len(), b.vocab.len());
        assert_eq!(truth_a.destinations.len(), truth_b.destinations.len());
        for (pa, pb) in a.pois.iter().zip(b.pois.iter()) {
            assert_eq!(pa.pos, pb.pos);
            assert_eq!(pa.keywords, pb.keywords);
        }
    }

    #[test]
    fn presets_scale_entity_counts() {
        let small = london(0.01);
        let big = london(0.04);
        assert!(big.n_pois > small.n_pois * 3);
        assert!(big.blocks_x > small.blocks_x);
        assert_eq!(small.name, "london");
    }

    #[test]
    fn generated_city_has_expected_shape() {
        let cfg = berlin(0.01);
        let (data, truth) = generate(&cfg);
        assert_eq!(data.name, "berlin");
        assert!(data.network.num_segments() > 100);
        assert_eq!(data.pois.len(), cfg.n_pois);
        assert_eq!(data.photos.len(), cfg.n_photos);
        // Shop destinations planted.
        assert_eq!(truth.for_category("shop").len(), 5);
        assert!(truth.for_category("nonexistent").is_empty());
        // Query keywords resolvable.
        for kw in ["shop", "food", "religion", "education", "services"] {
            assert!(data.vocab.lookup(kw).is_some(), "missing keyword {kw}");
        }
    }

    #[test]
    fn ground_truth_streets_are_distinct_and_valid() {
        let cfg = vienna(0.02);
        let (data, truth) = generate(&cfg);
        let mut all: Vec<StreetId> = truth
            .destinations
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "destination streets reused across categories");
        for id in all {
            assert!(id.index() < data.network.num_streets());
        }
    }
}
