//! Category vocabulary for synthetic POIs and photos.
//!
//! Query keywords in the paper's experiments are category names
//! ("religion", "education", "food", "services" for Table 4; "shop" for
//! Table 2). Each synthetic POI carries its category name plus one or two
//! sub-keywords; the per-category share parameters reproduce the ratio of
//! relevant POIs per |Ψ| reported in Table 4 (~0.5%, 1.5%, 5.4%, 9.6%
//! cumulative for the four benchmark keywords).

/// Specification of one POI category.
#[derive(Debug, Clone, Copy)]
pub struct CategorySpec {
    /// Category name — also the keyword users query for.
    pub name: &'static str,
    /// Fraction of all POIs in this category.
    pub share: f64,
    /// Sub-keywords attached to the category's POIs.
    pub sub_keywords: &'static [&'static str],
    /// Number of destination streets to plant for this category
    /// (ground truth for the effectiveness study).
    pub destination_streets: usize,
    /// Fraction of the category's POIs concentrated on destinations.
    pub destination_share: f64,
    /// Fraction of streets this category occurs on at all (churches
    /// cluster on few streets; offices are everywhere). 1.0 = no
    /// restriction.
    pub street_affinity: f64,
}

/// The category mix. Shares sum to 1.0 (enforced by a test).
pub const CATEGORIES: &[CategorySpec] = &[
    CategorySpec {
        name: "religion",
        share: 0.005,
        sub_keywords: &["church", "chapel", "temple", "mosque", "synagogue"],
        destination_streets: 0,
        destination_share: 0.0,
        street_affinity: 0.08,
    },
    CategorySpec {
        name: "education",
        share: 0.011,
        sub_keywords: &["school", "university", "college", "library", "kindergarten"],
        destination_streets: 0,
        destination_share: 0.0,
        street_affinity: 0.12,
    },
    CategorySpec {
        name: "food",
        share: 0.038,
        sub_keywords: &["restaurant", "cafe", "bar", "bakery", "bistro", "pub"],
        destination_streets: 3,
        destination_share: 0.25,
        street_affinity: 0.30,
    },
    CategorySpec {
        name: "services",
        share: 0.042,
        sub_keywords: &["bank", "pharmacy", "salon", "laundry", "post", "clinic"],
        destination_streets: 0,
        destination_share: 0.0,
        street_affinity: 0.40,
    },
    CategorySpec {
        name: "shop",
        share: 0.060,
        sub_keywords: &[
            "clothing",
            "shoes",
            "books",
            "electronics",
            "jewelry",
            "boutique",
            "mall",
        ],
        destination_streets: 5,
        destination_share: 0.45,
        street_affinity: 0.30,
    },
    CategorySpec {
        name: "culture",
        share: 0.030,
        sub_keywords: &["museum", "gallery", "theatre", "cinema", "monument"],
        destination_streets: 2,
        destination_share: 0.3,
        street_affinity: 0.15,
    },
    CategorySpec {
        name: "entertainment",
        share: 0.034,
        sub_keywords: &["club", "casino", "arcade", "park", "stadium"],
        destination_streets: 2,
        destination_share: 0.25,
        street_affinity: 0.20,
    },
    CategorySpec {
        name: "transport",
        share: 0.050,
        sub_keywords: &["station", "stop", "parking", "terminal"],
        destination_streets: 0,
        destination_share: 0.0,
        street_affinity: 0.35,
    },
    CategorySpec {
        name: "misc",
        share: 0.730,
        sub_keywords: &[
            "office",
            "residential",
            "building",
            "company",
            "warehouse",
            "studio",
            "agency",
            "workshop",
        ],
        destination_streets: 0,
        destination_share: 0.0,
        street_affinity: 1.0,
    },
];

/// Tags used by photo "event bursts" (the demonstration effect of Fig. 3b).
pub const EVENT_TAGS: &[&str] = &[
    "demonstration",
    "protest",
    "march",
    "parade",
    "festival",
    "marathon",
    "concert",
];

/// Tags used by landmark photo bursts (the HMV effect of Fig. 3a).
pub const LANDMARK_TAGS: &[&str] = &[
    "landmark",
    "famous",
    "storefront",
    "queue",
    "release",
    "crowd",
    "flagship",
];

/// Generic tourist-photo tags.
pub const TOURIST_TAGS: &[&str] = &[
    "travel",
    "city",
    "street",
    "architecture",
    "walk",
    "sightseeing",
    "holiday",
    "urban",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = CATEGORIES.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn benchmark_keywords_present_in_order() {
        // Table 4's keyword prefix: religion, education, food, services.
        let names: Vec<&str> = CATEGORIES.iter().map(|c| c.name).collect();
        for kw in ["religion", "education", "food", "services", "shop"] {
            assert!(names.contains(&kw), "missing category {kw}");
        }
        // Cumulative shares grow like Table 4 (each step adds more).
        let share = |n: &str| CATEGORIES.iter().find(|c| c.name == n).unwrap().share;
        assert!(share("religion") < share("education"));
        assert!(share("education") < share("food"));
        assert!(share("food") < share("services"));
    }

    #[test]
    fn shop_has_destinations_for_table2() {
        let shop = CATEGORIES.iter().find(|c| c.name == "shop").unwrap();
        assert!(shop.destination_streets >= 4);
        assert!(shop.destination_share > 0.0);
    }

    #[test]
    fn all_categories_have_sub_keywords() {
        for c in CATEGORIES {
            assert!(!c.sub_keywords.is_empty(), "{} has no sub keywords", c.name);
        }
    }
}
