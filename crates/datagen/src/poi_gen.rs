//! Synthetic POI generation with planted destination streets.

use crate::city::{CityConfig, GroundTruth};
use crate::vocab::CATEGORIES;
use rand::rngs::StdRng;
use rand::RngExt;
use soi_common::{SegmentId, StreetId};
use soi_data::PoiCollection;
use soi_geo::Point;
use soi_network::RoadNetwork;
use soi_text::{KeywordSet, Vocabulary};

/// Samples segments with probability proportional to their length.
pub(crate) struct SegmentSampler {
    cumulative: Vec<f64>,
    ids: Vec<SegmentId>,
}

impl SegmentSampler {
    pub(crate) fn over_segments(network: &RoadNetwork, ids: Vec<SegmentId>) -> Self {
        let weights: Vec<f64> = ids.iter().map(|&id| network.segment(id).len()).collect();
        Self::over_weighted(ids, &weights)
    }

    pub(crate) fn over_weighted(ids: Vec<SegmentId>, weights: &[f64]) -> Self {
        debug_assert_eq!(ids.len(), weights.len());
        let mut cumulative = Vec::with_capacity(ids.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w.max(0.0);
            cumulative.push(acc);
        }
        Self { cumulative, ids }
    }

    #[allow(dead_code)] // exercised by tests; kept as the unskewed variant
    pub(crate) fn whole_network(network: &RoadNetwork) -> Self {
        Self::over_segments(network, network.segments().iter().map(|s| s.id).collect())
    }

    /// Restricts a popularity-weighted sampler to a random `affinity`
    /// fraction of streets (deterministic given the rng state): categories
    /// like "religion" occur on few streets, "misc" everywhere.
    pub(crate) fn restricted_to_affinity(
        rng: &mut StdRng,
        network: &RoadNetwork,
        base: &SegmentSampler,
        affinity: f64,
    ) -> Self {
        if affinity >= 1.0 {
            return Self {
                cumulative: base.cumulative.clone(),
                ids: base.ids.clone(),
            };
        }
        let include: Vec<bool> = (0..network.num_streets())
            .map(|_| rng.random_range(0.0..1.0) < affinity)
            .collect();
        // Recover per-segment weights from the base cumulative sums and
        // zero out segments of excluded streets.
        let mut weights = Vec::with_capacity(base.ids.len());
        let mut prev = 0.0;
        for (i, &id) in base.ids.iter().enumerate() {
            let w = base.cumulative[i] - prev;
            prev = base.cumulative[i];
            let street = network.segment(id).street.index();
            weights.push(if include[street] { w } else { 0.0 });
        }
        Self::over_weighted(base.ids.clone(), &weights)
    }

    /// A sampler over all segments, weighted by segment length × street
    /// popularity. Popularity follows a Zipf-like law over a seeded random
    /// permutation of streets, attenuated by distance from the city centre —
    /// reproducing the heavy skew of real urban POI densities (a few busy
    /// high streets, a long quiet tail).
    pub(crate) fn popularity_weighted(rng: &mut StdRng, network: &RoadNetwork) -> Self {
        let n_streets = network.num_streets();
        let mut rank: Vec<usize> = (0..n_streets).collect();
        // Fisher-Yates with the seeded rng.
        for i in (1..n_streets).rev() {
            let j = rng.random_range(0..=i);
            rank.swap(i, j);
        }
        let center = network
            .extent()
            .map(|e| e.center())
            .unwrap_or(soi_geo::Point::ORIGIN);
        let radius = network
            .extent()
            .map(|e| e.diagonal() / 2.0)
            .unwrap_or(1.0)
            .max(1e-12);
        let street_weight: Vec<f64> = (0..n_streets)
            .map(|i| {
                let zipf = 1.0 / (rank[i] as f64 + 1.0).powf(0.8);
                let mid = network
                    .street_mbr(soi_common::StreetId::from_index(i))
                    .map(|m| m.center())
                    .unwrap_or(center);
                let d = mid.dist(center) / radius;
                zipf * (-1.5 * d * d).exp()
            })
            .collect();
        let ids: Vec<SegmentId> = network.segments().iter().map(|s| s.id).collect();
        let weights: Vec<f64> = network
            .segments()
            .iter()
            .map(|s| s.len() * street_weight[s.street.index()])
            .collect();
        Self::over_weighted(ids, &weights)
    }

    pub(crate) fn of_street(network: &RoadNetwork, street: StreetId) -> Self {
        Self::over_segments(network, network.street(street).segments.clone())
    }

    /// Draws a segment id (None if the sampler is empty or degenerate).
    pub(crate) fn sample(&self, rng: &mut StdRng) -> Option<SegmentId> {
        let total = *self.cumulative.last()?;
        if total <= 0.0 {
            return None;
        }
        let x = rng.random_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c < x);
        Some(self.ids[idx.min(self.ids.len() - 1)])
    }
}

/// A random point at distance ≤ `max_offset` from a random (length-weighted)
/// position on the sampled segment.
pub(crate) fn point_near_segment(
    rng: &mut StdRng,
    network: &RoadNetwork,
    seg: SegmentId,
    max_offset: f64,
) -> Point {
    let geom = network.segment(seg).geom;
    let on = geom.a.lerp(geom.b, rng.random_range(0.0..1.0));
    let angle = rng.random_range(0.0..std::f64::consts::TAU);
    let dist = rng.random_range(0.0..max_offset);
    Point::new(on.x + dist * angle.cos(), on.y + dist * angle.sin())
}

/// Picks `count` distinct destination streets, preferring substantial ones
/// (several segments, decent total length), excluding `taken`.
fn pick_destination_streets(
    rng: &mut StdRng,
    network: &RoadNetwork,
    count: usize,
    taken: &mut Vec<StreetId>,
) -> Vec<StreetId> {
    let mut candidates: Vec<StreetId> = network
        .streets()
        .iter()
        .filter(|s| s.num_segments() >= 3 && !taken.contains(&s.id))
        .map(|s| s.id)
        .collect();
    let mut picked = Vec::with_capacity(count);
    for _ in 0..count {
        if candidates.is_empty() {
            break;
        }
        let idx = rng.random_range(0..candidates.len());
        let street = candidates.swap_remove(idx);
        picked.push(street);
        taken.push(street);
    }
    picked
}

/// Generates the POI set and the destination-street ground truth.
pub fn generate_pois(
    rng: &mut StdRng,
    config: &CityConfig,
    network: &RoadNetwork,
    vocab: &mut Vocabulary,
) -> (PoiCollection, GroundTruth) {
    let mut pois = PoiCollection::new();
    let mut truth = GroundTruth::default();
    let background_sampler = SegmentSampler::popularity_weighted(rng, network);
    let extent = network.extent();
    // Offsets chosen so destination POIs sit well within the paper's
    // ε = 0.0005° of their street, background POIs mostly don't.
    let dest_offset = (config.block_size * 0.32).max(1e-9);
    let bg_offset = (config.block_size * 0.8).max(1e-9);

    let mut taken: Vec<StreetId> = Vec::new();

    for (cat_idx, cat) in CATEGORIES.iter().enumerate() {
        let cat_kw = vocab.intern(cat.name);
        let sub_kws: Vec<_> = cat.sub_keywords.iter().map(|s| vocab.intern(s)).collect();
        // The last (misc) category absorbs rounding so counts are exact.
        let n_cat = if cat_idx + 1 == CATEGORIES.len() {
            config.n_pois.saturating_sub(pois.len())
        } else {
            ((config.n_pois as f64) * cat.share).round() as usize
        };

        let category_sampler = SegmentSampler::restricted_to_affinity(
            rng,
            network,
            &background_sampler,
            cat.street_affinity,
        );
        let dest_streets =
            pick_destination_streets(rng, network, cat.destination_streets, &mut taken);
        if !dest_streets.is_empty() {
            truth
                .destinations
                .push((cat.name.to_string(), dest_streets.clone()));
        }
        let n_dest = if dest_streets.is_empty() {
            0
        } else {
            ((n_cat as f64) * cat.destination_share).round() as usize
        };
        let samplers: Vec<SegmentSampler> = dest_streets
            .iter()
            .map(|&s| SegmentSampler::of_street(network, s))
            .collect();

        for i in 0..n_cat {
            let pos = if i < n_dest && !samplers.is_empty() {
                // Round-robin across the category's destination streets.
                let sampler = &samplers[i % samplers.len()];
                match sampler.sample(rng) {
                    Some(seg) => point_near_segment(rng, network, seg, dest_offset),
                    None => continue,
                }
            } else if rng.random_range(0..5) == 0 {
                // Fully uniform background.
                match extent {
                    Some(e) => Point::new(
                        rng.random_range(e.min.x..e.max.x),
                        rng.random_range(e.min.y..e.max.y),
                    ),
                    None => Point::ORIGIN,
                }
            } else {
                // Street-adjacent background, restricted to the streets
                // this category has affinity with.
                match category_sampler
                    .sample(rng)
                    .or_else(|| background_sampler.sample(rng))
                {
                    Some(seg) => point_near_segment(rng, network, seg, bg_offset),
                    None => Point::ORIGIN,
                }
            };

            let mut kws = vec![cat_kw, sub_kws[rng.random_range(0..sub_kws.len())]];
            if rng.random_range(0..10) < 3 {
                kws.push(sub_kws[rng.random_range(0..sub_kws.len())]);
            }
            // ~2% flagship POIs carry importance weights (the remark after
            // Definition 1: ratings/check-ins as weights), exercising the
            // weighted-mass path at dataset scale.
            if rng.random_range(0..50) == 0 {
                pois.add_weighted(pos, KeywordSet::from_ids(kws), rng.random_range(2.0..6.0));
            } else {
                pois.add(pos, KeywordSet::from_ids(kws));
            }
        }
    }

    debug_assert_eq!(pois.len(), config.n_pois);
    (pois, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::vienna;
    use crate::network_gen::generate_network;
    use rand::SeedableRng;

    fn setup() -> (CityConfig, RoadNetwork) {
        let mut cfg = vienna(0.01);
        cfg.n_pois = 5_000;
        let net = generate_network(&mut StdRng::seed_from_u64(cfg.seed), &cfg);
        (cfg, net)
    }

    #[test]
    fn category_shares_roughly_hold() {
        let (cfg, net) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let mut vocab = Vocabulary::new();
        let (pois, _) = generate_pois(&mut rng, &cfg, &net, &mut vocab);
        assert!(pois.len() >= cfg.n_pois);

        for (name, share) in [("religion", 0.005), ("shop", 0.060), ("food", 0.038)] {
            let kw = vocab.lookup(name).unwrap();
            let q = KeywordSet::from_ids([kw]);
            let got = pois.count_relevant(&q) as f64 / pois.len() as f64;
            assert!(
                (got - share).abs() < share * 0.5 + 0.002,
                "{name}: got share {got}, want ~{share}"
            );
        }
    }

    #[test]
    fn destination_streets_attract_density() {
        let (cfg, net) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let mut vocab = Vocabulary::new();
        let (pois, truth) = generate_pois(&mut rng, &cfg, &net, &mut vocab);
        let shop = vocab.lookup("shop").unwrap();
        let q = KeywordSet::from_ids([shop]);
        let eps = 0.0005;

        // Density of shop POIs near a planted street must dwarf the density
        // near an arbitrary street.
        let planted = truth.for_category("shop")[0];
        let near_planted = pois
            .iter()
            .filter(|p| p.keywords.intersects(&q))
            .filter(|p| net.dist_point_to_street(p.pos, planted) <= eps)
            .count() as f64
            / net.street_len(planted);

        let mut background_total = 0.0;
        let mut background_len = 0.0;
        for street in net.streets().iter().take(40) {
            if truth.for_category("shop").contains(&street.id) {
                continue;
            }
            background_total += pois
                .iter()
                .filter(|p| p.keywords.intersects(&q))
                .filter(|p| net.dist_point_to_street(p.pos, street.id) <= eps)
                .count() as f64;
            background_len += net.street_len(street.id);
        }
        let background = background_total / background_len.max(1e-12);
        assert!(
            near_planted > background * 2.0,
            "planted density {near_planted} vs background {background}"
        );
    }

    #[test]
    fn sampler_respects_lengths() {
        let (_, net) = setup();
        let sampler = SegmentSampler::whole_network(&net);
        let mut rng = StdRng::seed_from_u64(3);
        // Just exercise: samples are valid ids.
        for _ in 0..100 {
            let seg = sampler.sample(&mut rng).unwrap();
            assert!(seg.index() < net.num_segments());
        }
    }

    #[test]
    fn points_near_segment_are_near() {
        let (_, net) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let seg = net.segments()[0].id;
        for _ in 0..50 {
            let p = point_near_segment(&mut rng, &net, seg, 0.001);
            assert!(net.segment(seg).geom.dist_to_point(p) <= 0.001 + 1e-12);
        }
    }
}
