//! Synthetic road-network generation.
//!
//! A jittered block grid of streets, with three realism features matching
//! the segment statistics of the paper's Table 1:
//!
//! - street chains are split into independently named streets of a few
//!   consecutive segments each (real streets rarely span a whole city);
//! - a fraction of segments receive mid-segment *breakpoints*, producing
//!   the sub-metre minimum segment lengths of Table 1;
//! - a handful of long diagonal *avenues* cross the grid without
//!   breakpoints, producing kilometre-scale maximum segment lengths.

use crate::city::CityConfig;
use rand::rngs::StdRng;
use rand::RngExt;
use soi_geo::Point;
use soi_network::RoadNetwork;

/// Street-name fragments for synthetic names.
const NAME_HEADS: &[&str] = &[
    "High", "Station", "Church", "Park", "Market", "Mill", "King", "Queen", "Garden", "Bridge",
    "North", "South", "West", "East", "Old", "New", "Long", "Short", "Green", "River",
];
const NAME_TAILS: &[&str] = &[
    "Street", "Road", "Lane", "Avenue", "Way", "Row", "Walk", "Gate",
];

fn street_name(rng: &mut StdRng, idx: usize) -> String {
    let head = NAME_HEADS[rng.random_range(0..NAME_HEADS.len())];
    let tail = NAME_TAILS[rng.random_range(0..NAME_TAILS.len())];
    format!("{head} {tail} {idx}")
}

/// Splits `points` (a full grid row/column chain) into consecutive runs of
/// 2–8 points and adds each as its own street; a fraction of segments get
/// breakpoints.
fn add_chain(
    b: &mut soi_network::NetworkBuilder,
    rng: &mut StdRng,
    points: &[Point],
    breakpoint_prob: f64,
    street_counter: &mut usize,
) {
    let mut i = 0;
    while i + 1 < points.len() {
        let run_len = rng.random_range(2..=8usize).min(points.len() - i);
        let chain = &points[i..i + run_len];
        // Insert breakpoints: subdivide some segments into 2–3 pieces.
        let mut refined: Vec<Point> = Vec::with_capacity(chain.len() * 2);
        refined.push(chain[0]);
        for w in chain.windows(2) {
            if rng.random_range(0.0..1.0) < breakpoint_prob {
                let pieces = rng.random_range(2..=3usize);
                for p in 1..pieces {
                    // Skewed split positions create very short segments.
                    let t: f64 = if rng.random_range(0..4) == 0 {
                        rng.random_range(0.0005..0.02)
                    } else {
                        p as f64 / pieces as f64 + rng.random_range(-0.1..0.1)
                    };
                    refined.push(w[0].lerp(w[1], t.clamp(0.0005, 0.9995)));
                }
            }
            refined.push(w[1]);
        }
        *street_counter += 1;
        let name = street_name(rng, *street_counter);
        b.add_street_from_points(name, &refined);
        i += run_len - 1;
        // Runs share their boundary point so the grid stays visually
        // contiguous even though streets are separate graph components
        // (duplicated nodes; the k-SOI problem never traverses the graph
        // across streets).
        if run_len == 1 {
            break;
        }
    }
}

/// Generates the road network for `config`.
pub fn generate_network(rng: &mut StdRng, config: &CityConfig) -> RoadNetwork {
    let mut b = RoadNetwork::builder();
    let bx = config.blocks_x;
    let by = config.blocks_y;
    let s = config.block_size;
    let jitter = s * 0.18;

    // Jittered grid node positions.
    let mut pos = vec![vec![Point::ORIGIN; bx + 1]; by + 1];
    for (r, row) in pos.iter_mut().enumerate() {
        for (c, p) in row.iter_mut().enumerate() {
            *p = Point::new(
                c as f64 * s + rng.random_range(-jitter..jitter),
                r as f64 * s + rng.random_range(-jitter..jitter),
            );
        }
    }

    let mut street_counter = 0usize;
    for row in &pos {
        add_chain(
            &mut b,
            rng,
            row,
            config.breakpoint_prob,
            &mut street_counter,
        );
    }
    for col_idx in 0..=bx {
        let col: Vec<Point> = pos.iter().map(|row| row[col_idx]).collect();
        add_chain(
            &mut b,
            rng,
            &col,
            config.breakpoint_prob,
            &mut street_counter,
        );
    }

    // Long diagonal avenues with no breakpoints: few, long segments.
    let w = bx as f64 * s;
    let h = by as f64 * s;
    for a in 0..config.avenues {
        street_counter += 1;
        let name = format!("Avenue {}", street_counter);
        let t = (a as f64 + 0.5) / config.avenues as f64;
        let (from, to) = if a % 2 == 0 {
            (Point::new(0.0, h * t), Point::new(w, h * (1.0 - t)))
        } else {
            (Point::new(w * t, 0.0), Point::new(w * (1.0 - t), h))
        };
        // 2–4 long segments per avenue.
        let pieces = rng.random_range(2..=4usize);
        let pts: Vec<Point> = (0..=pieces)
            .map(|i| from.lerp(to, i as f64 / pieces as f64))
            .collect();
        b.add_street_from_points(name, &pts);
    }

    b.build().expect("generated network is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;
    use rand::SeedableRng;
    use soi_network::NetworkStats;

    fn small_config() -> CityConfig {
        CityConfig {
            name: "test".into(),
            seed: 7,
            blocks_x: 12,
            blocks_y: 10,
            block_size: 0.00125,
            breakpoint_prob: 0.2,
            avenues: 3,
            n_pois: 0,
            n_photos: 0,
        }
    }

    #[test]
    fn network_is_deterministic() {
        let cfg = small_config();
        let a = generate_network(&mut StdRng::seed_from_u64(cfg.seed), &cfg);
        let b = generate_network(&mut StdRng::seed_from_u64(cfg.seed), &cfg);
        assert_eq!(a.num_segments(), b.num_segments());
        assert_eq!(a.num_streets(), b.num_streets());
        for (x, y) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(x.pos, y.pos);
        }
    }

    #[test]
    fn segment_count_scales_with_grid() {
        let cfg = small_config();
        let net = generate_network(&mut StdRng::seed_from_u64(1), &cfg);
        let expected_base = 2 * cfg.blocks_x * cfg.blocks_y; // rough
        assert!(net.num_segments() >= expected_base);
        assert!(net.num_segments() < expected_base * 4);
    }

    #[test]
    fn length_distribution_has_short_and_long_tail() {
        let cfg = small_config();
        let net = generate_network(&mut StdRng::seed_from_u64(2), &cfg);
        let stats = NetworkStats::of(&net);
        // Breakpoints create segments much shorter than a block.
        assert!(stats.min_segment_len < cfg.block_size * 0.1);
        // Avenues create segments much longer than a block.
        assert!(stats.max_segment_len > cfg.block_size * 2.0);
    }

    #[test]
    fn streets_have_bounded_runs() {
        let cfg = small_config();
        let net = generate_network(&mut StdRng::seed_from_u64(3), &cfg);
        for street in net.streets() {
            assert!(street.num_segments() >= 1);
            // Runs of <=8 points, subdivided up to 3x.
            assert!(street.num_segments() <= 7 * 3 + 2, "{}", street.name);
        }
    }
}
