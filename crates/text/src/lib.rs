//! Text processing for the streets-of-interest system.
//!
//! POIs and photos carry keyword sets (`Ψp`, `Ψr` in the paper); streets
//! carry keyword frequency vectors (`Φs`). This crate provides:
//!
//! - [`tokenize()`](tokenize()): normalisation of raw names/tags into keyword tokens;
//! - [`Vocabulary`]: string ↔ [`KeywordId`](soi_common::KeywordId) interning,
//!   so all hot-path keyword operations work on dense `u32` ids;
//! - [`KeywordSet`]: a sorted, deduplicated keyword-id set with the set
//!   operations the measures need (intersection counts, Jaccard distance of
//!   Definition 7);
//! - [`FreqVector`]: the keyword frequency vector `Φs` with its L1 norm
//!   (Definition 6);
//! - [`InvertedIndex`]: generic postings lists sorted by document id, plus
//!   the k-way *distinct* union traversal the paper uses to count
//!   multi-keyword matches exactly once (Sec. 3.2.2);
//! - [`FlatPostings`]: the same mapping in a contiguous CSR layout, the
//!   allocation-lean representation bulk index builds produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod flat;
pub mod freq;
pub mod inverted;
pub mod keyword_set;
pub mod snapshot;
pub mod tokenize;
pub mod vocab;

pub use flat::FlatPostings;
pub use freq::FreqVector;
pub use inverted::{union_distinct, InvertedIndex};
pub use keyword_set::KeywordSet;
pub use tokenize::tokenize;
pub use vocab::Vocabulary;
