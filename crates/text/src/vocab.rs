//! Keyword interning.

use soi_common::{FxHashMap, KeywordId};

/// A bidirectional string ↔ [`KeywordId`] mapping.
///
/// Every keyword occurring in the dataset (POI keywords, photo tags, query
/// terms) is interned once; all downstream structures store dense `u32` ids.
/// Ids are assigned in first-intern order and are stable for the lifetime of
/// the vocabulary.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    terms: Vec<String>,
    by_term: FxHashMap<String, KeywordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or freshly assigned).
    ///
    /// The term is stored as given; callers should normalise via
    /// [`tokenize()`](crate::tokenize()) first.
    pub fn intern(&mut self, term: &str) -> KeywordId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = KeywordId::from_index(self.terms.len());
        self.terms.push(term.to_owned());
        self.by_term.insert(term.to_owned(), id);
        id
    }

    /// Looks up the id of `term` without interning.
    pub fn lookup(&self, term: &str) -> Option<KeywordId> {
        self.by_term.get(term).copied()
    }

    /// Returns the term for `id`, if it exists.
    pub fn term(&self, id: KeywordId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns true if no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (KeywordId::from_index(i), t.as_str()))
    }

    /// Interns every token of `text` (after tokenisation) and returns the ids
    /// in token order (duplicates preserved).
    pub fn intern_text(&mut self, text: &str) -> Vec<KeywordId> {
        crate::tokenize(text)
            .into_iter()
            .map(|t| self.intern(&t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("shop");
        let b = v.intern("shop");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let a = v.intern("alpha");
        let b = v.intern("beta");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(v.term(a), Some("alpha"));
        assert_eq!(v.term(b), Some("beta"));
        assert_eq!(v.term(KeywordId(99)), None);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut v = Vocabulary::new();
        assert_eq!(v.lookup("ghost"), None);
        assert!(v.is_empty());
        v.intern("ghost");
        assert!(v.lookup("ghost").is_some());
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("one");
        v.intern("two");
        let collected: Vec<(u32, &str)> = v.iter().map(|(id, t)| (id.raw(), t)).collect();
        assert_eq!(collected, vec![(0, "one"), (1, "two")]);
    }

    #[test]
    fn intern_text_tokenises() {
        let mut v = Vocabulary::new();
        let ids = v.intern_text("Shoe Shop & Shoe Repair");
        assert_eq!(ids.len(), 4); // shoe shop shoe repair
        assert_eq!(ids[0], ids[2]);
        assert_eq!(v.len(), 3);
    }
}
