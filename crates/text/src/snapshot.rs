//! Snapshot encode/decode for [`FlatPostings`].
//!
//! A `FlatPostings` is already the on-disk shape — a run directory plus a
//! flat postings array — so a snapshot stores exactly four sections under a
//! caller-chosen prefix:
//!
//! | section          | type  | content                                   |
//! |------------------|-------|-------------------------------------------|
//! | `{p}.meta`       | `u64` | `[num_docs]`                              |
//! | `{p}.run_kw`     | `u32` | run keywords, ascending                   |
//! | `{p}.run_end`    | `u32` | run **end** offsets into `{p}.docs`       |
//! | `{p}.docs`       | `u32` | concatenated postings (raw document ids)  |
//!
//! Decoding validates the CSR invariants (ascending keywords,
//! non-decreasing ends, final end = docs len, strictly ascending postings
//! within each run) so a structurally plausible but inconsistent file is a
//! categorized error, never a later panic.

use soi_common::{KeywordId, PhotoId, PoiId, Result};
use soi_snapshot::{corrupt, Snapshot, SnapshotWriter};

use crate::FlatPostings;

/// A document id storable in a snapshot as a raw `u32`.
pub trait SnapshotDoc: Copy + Ord {
    /// The raw on-disk value.
    fn to_raw(self) -> u32;
    /// Rebuilds the id from the raw on-disk value.
    fn from_raw(raw: u32) -> Self;
}

impl SnapshotDoc for u32 {
    fn to_raw(self) -> u32 {
        self
    }
    fn from_raw(raw: u32) -> Self {
        raw
    }
}

impl SnapshotDoc for PoiId {
    fn to_raw(self) -> u32 {
        self.raw()
    }
    fn from_raw(raw: u32) -> Self {
        PoiId(raw)
    }
}

impl SnapshotDoc for PhotoId {
    fn to_raw(self) -> u32 {
        PhotoId::raw(self)
    }
    fn from_raw(raw: u32) -> Self {
        PhotoId(raw)
    }
}

/// Writes `postings` under `prefix` into `writer`.
///
/// # Errors
/// Writer-side section errors (duplicate prefix, oversized name).
pub fn write_flat_postings<D: SnapshotDoc>(
    writer: &mut SnapshotWriter,
    prefix: &str,
    postings: &FlatPostings<D>,
) -> Result<()> {
    let runs = postings.raw_runs();
    let run_kw: Vec<u32> = runs.iter().map(|&(k, _)| k.raw()).collect();
    let run_end: Vec<u32> = runs.iter().map(|&(_, e)| e).collect();
    let docs: Vec<u32> = postings.raw_docs().iter().map(|d| d.to_raw()).collect();
    writer.u64s(
        &format!("{prefix}.meta"),
        &[postings.num_documents() as u64],
    )?;
    writer.u32s(&format!("{prefix}.run_kw"), &run_kw)?;
    writer.u32s(&format!("{prefix}.run_end"), &run_end)?;
    writer.u32s(&format!("{prefix}.docs"), &docs)?;
    Ok(())
}

/// Reads the postings stored under `prefix` from `snapshot`.
///
/// # Errors
/// Missing sections or violated CSR invariants (`Data` category).
pub fn read_flat_postings<D: SnapshotDoc>(
    snapshot: &Snapshot,
    prefix: &str,
) -> Result<FlatPostings<D>> {
    let meta = snapshot.u64s(&format!("{prefix}.meta"))?;
    let run_kw = snapshot.u32s(&format!("{prefix}.run_kw"))?;
    let run_end = snapshot.u32s(&format!("{prefix}.run_end"))?;
    let docs_raw = snapshot.u32s(&format!("{prefix}.docs"))?;
    let bad = |msg: String| corrupt(snapshot.path(), msg);

    let &[num_docs] = meta else {
        return Err(bad(format!("`{prefix}.meta` must hold exactly one value")));
    };
    if run_kw.len() != run_end.len() {
        return Err(bad(format!(
            "`{prefix}`: {} run keywords but {} run ends",
            run_kw.len(),
            run_end.len()
        )));
    }
    let runs: Vec<(KeywordId, u32)> = run_kw
        .iter()
        .zip(run_end)
        .map(|(&k, &e)| (KeywordId(k), e))
        .collect();
    validate_csr(&runs, docs_raw).map_err(bad)?;
    let docs: Vec<D> = docs_raw.iter().map(|&d| D::from_raw(d)).collect();
    Ok(FlatPostings::from_raw_parts(num_docs as usize, runs, docs))
}

/// Checks the `FlatPostings` CSR invariants on untrusted arrays: strictly
/// ascending run keywords, non-decreasing run ends terminating at the docs
/// length, and non-empty strictly-ascending runs. Exposed so downstream
/// codecs that flatten many postings lists into one section pair (e.g. the
/// per-cell postings of `soi-index`) can re-validate each slice on decode.
pub fn validate_csr(runs: &[(KeywordId, u32)], docs: &[u32]) -> std::result::Result<(), String> {
    for w in runs.windows(2) {
        if w[0].0 >= w[1].0 {
            return Err(format!(
                "postings run keywords not strictly ascending at {}",
                w[1].0
            ));
        }
        if w[0].1 > w[1].1 {
            return Err("postings run ends decrease".to_string());
        }
    }
    if runs.last().map_or(0, |&(_, e)| e as usize) != docs.len() {
        return Err(format!(
            "postings runs end at {} but docs array has {} entries",
            runs.last().map_or(0, |&(_, e)| e),
            docs.len()
        ));
    }
    let mut start = 0usize;
    for &(k, end) in runs {
        let run = &docs[start..end as usize];
        if run.is_empty() {
            return Err(format!("empty postings run for keyword {k}"));
        }
        if run.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("postings for keyword {k} not strictly ascending"));
        }
        start = end as usize;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "soi-textsnap-{}-{name}.soisnap",
            std::process::id()
        ))
    }

    fn sample() -> FlatPostings<PoiId> {
        let pairs: Vec<(KeywordId, PoiId)> = vec![
            (KeywordId(0), PoiId(3)),
            (KeywordId(0), PoiId(9)),
            (KeywordId(2), PoiId(1)),
            (KeywordId(5), PoiId(0)),
            (KeywordId(5), PoiId(1)),
            (KeywordId(5), PoiId(7)),
        ];
        FlatPostings::from_sorted_pairs(10, &pairs)
    }

    fn round_trip(fp: &FlatPostings<PoiId>, name: &str) -> FlatPostings<PoiId> {
        let path = temp_path(name);
        let mut w = SnapshotWriter::new();
        write_flat_postings(&mut w, "fp", fp).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let back = read_flat_postings(&snap, "fp").unwrap();
        std::fs::remove_file(&path).ok();
        back
    }

    #[test]
    fn round_trip_is_identical() {
        let fp = sample();
        let back = round_trip(&fp, "ident");
        assert_eq!(back.raw_runs(), fp.raw_runs());
        assert_eq!(back.raw_docs(), fp.raw_docs());
        assert_eq!(back.num_documents(), fp.num_documents());
        for k in 0..8 {
            assert_eq!(back.postings(KeywordId(k)), fp.postings(KeywordId(k)));
        }
    }

    #[test]
    fn empty_round_trips() {
        let fp = FlatPostings::<PoiId>::new();
        let back = round_trip(&fp, "empty");
        assert_eq!(back.num_documents(), 0);
        assert_eq!(back.num_keywords(), 0);
    }

    #[test]
    fn inconsistent_csr_is_rejected() {
        // Write sections whose checksums are fine but whose CSR shape is
        // not: run ends exceed the docs array.
        let path = temp_path("badcsr");
        let mut w = SnapshotWriter::new();
        w.u64s("fp.meta", &[4]).unwrap();
        w.u32s("fp.run_kw", &[0, 1]).unwrap();
        w.u32s("fp.run_end", &[2, 9]).unwrap();
        w.u32s("fp.docs", &[1, 2, 3]).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let err = read_flat_postings::<PoiId>(&snap, "fp").unwrap_err();
        assert_eq!(err.category(), soi_common::ErrorCategory::Data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsorted_postings_are_rejected() {
        let path = temp_path("unsorted");
        let mut w = SnapshotWriter::new();
        w.u64s("fp.meta", &[4]).unwrap();
        w.u32s("fp.run_kw", &[0]).unwrap();
        w.u32s("fp.run_end", &[2]).unwrap();
        w.u32s("fp.docs", &[3, 1]).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert!(read_flat_postings::<PoiId>(&snap, "fp").is_err());
        std::fs::remove_file(&path).ok();
    }
}
