//! Keyword frequency vectors (`Φs`).

use crate::keyword_set::KeywordSet;
use soi_common::{FxHashMap, KeywordId};

/// A sparse keyword frequency vector with a cached L1 norm.
///
/// The textual aspect of a street `s` is captured by `Φs`, which records the
/// strength of each keyword associated with `s` (Sec. 4.1.2). The textual
/// relevance of a photo (Definition 6) divides the summed frequencies of its
/// tags by `‖Φs‖₁`.
#[derive(Debug, Clone, Default)]
pub struct FreqVector {
    weights: FxHashMap<KeywordId, f64>,
    l1: f64,
}

impl FreqVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from `(keyword, weight)` pairs, summing duplicates.
    ///
    /// Non-positive weights are ignored (a keyword with zero frequency is
    /// "not present", per the paper's `Ψs` = keywords with non-zero
    /// frequency).
    pub fn from_weights<I: IntoIterator<Item = (KeywordId, f64)>>(pairs: I) -> Self {
        let mut v = Self::new();
        for (k, w) in pairs {
            v.add(k, w);
        }
        v
    }

    /// Adds `weight` to keyword `k` (no-op for non-positive weights).
    pub fn add(&mut self, k: KeywordId, weight: f64) {
        if weight <= 0.0 || !weight.is_finite() {
            return;
        }
        *self.weights.entry(k).or_insert(0.0) += weight;
        self.l1 += weight;
    }

    /// Increments keyword `k` by 1 (counting semantics).
    pub fn increment(&mut self, k: KeywordId) {
        self.add(k, 1.0);
    }

    /// The weight of keyword `k` (0 if absent).
    pub fn weight(&self, k: KeywordId) -> f64 {
        self.weights.get(&k).copied().unwrap_or(0.0)
    }

    /// The L1 norm `‖Φ‖₁ = Σ_ψ Φ(ψ)`.
    pub fn l1_norm(&self) -> f64 {
        self.l1
    }

    /// Number of keywords with non-zero weight.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns true if the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The support `Ψs`: keywords with non-zero frequency, as a set.
    pub fn support(&self) -> KeywordSet {
        KeywordSet::from_ids(self.weights.keys().copied())
    }

    /// Iterates over `(keyword, weight)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, f64)> + '_ {
        self.weights.iter().map(|(&k, &w)| (k, w))
    }

    /// Summed weight of all keywords in `set`:
    /// the numerator `Σ_{ψ∈Ψr} Φs(ψ)` of Definition 6.
    pub fn sum_over(&self, set: &KeywordSet) -> f64 {
        set.iter().map(|k| self.weight(k)).sum()
    }

    /// Keywords of this vector sorted by ascending weight, then ascending id.
    ///
    /// Used to pick the lowest-frequency keywords when constructing the
    /// bound sets `Ψ−(c|s)` of Eq. 13.
    pub fn keywords_by_weight_asc(&self) -> Vec<(KeywordId, f64)> {
        let mut v: Vec<(KeywordId, f64)> = self.iter().collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

impl FromIterator<(KeywordId, f64)> for FreqVector {
    fn from_iter<T: IntoIterator<Item = (KeywordId, f64)>>(iter: T) -> Self {
        Self::from_weights(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kid(i: u32) -> KeywordId {
        KeywordId(i)
    }

    #[test]
    fn add_accumulates_and_tracks_l1() {
        let mut v = FreqVector::new();
        v.add(kid(1), 2.0);
        v.add(kid(1), 3.0);
        v.add(kid(2), 1.0);
        assert_eq!(v.weight(kid(1)), 5.0);
        assert_eq!(v.weight(kid(2)), 1.0);
        assert_eq!(v.weight(kid(9)), 0.0);
        assert_eq!(v.l1_norm(), 6.0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn nonpositive_weights_ignored() {
        let mut v = FreqVector::new();
        v.add(kid(1), 0.0);
        v.add(kid(1), -2.0);
        v.add(kid(1), f64::NAN);
        assert!(v.is_empty());
        assert_eq!(v.l1_norm(), 0.0);
    }

    #[test]
    fn support_is_nonzero_keywords() {
        let v = FreqVector::from_weights([(kid(3), 1.0), (kid(1), 2.0)]);
        let s = v.support();
        assert!(s.contains(kid(1)));
        assert!(s.contains(kid(3)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn sum_over_set() {
        let v = FreqVector::from_weights([(kid(1), 2.0), (kid(2), 3.0), (kid(3), 5.0)]);
        let s = KeywordSet::from_ids([kid(1), kid(3), kid(7)]);
        assert_eq!(v.sum_over(&s), 7.0);
        assert_eq!(v.sum_over(&KeywordSet::empty()), 0.0);
    }

    #[test]
    fn keywords_by_weight_asc_breaks_ties_by_id() {
        let v = FreqVector::from_weights([(kid(5), 1.0), (kid(2), 1.0), (kid(9), 0.5)]);
        let order: Vec<u32> = v
            .keywords_by_weight_asc()
            .into_iter()
            .map(|(k, _)| k.raw())
            .collect();
        assert_eq!(order, vec![9, 2, 5]);
    }

    #[test]
    fn increment_counts() {
        let mut v = FreqVector::new();
        v.increment(kid(0));
        v.increment(kid(0));
        assert_eq!(v.weight(kid(0)), 2.0);
        assert_eq!(v.l1_norm(), 2.0);
    }
}
