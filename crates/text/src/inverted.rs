//! Generic inverted indexes with id-sorted postings.
//!
//! The paper's indexes keep, inside every grid cell, "a local inverted index
//! on the set of keywords among the cell POIs. The entry for keyword ψ is a
//! list of POIs sorted increasingly on POI id" (Sec. 3.2.1), and count
//! multi-keyword matches by traversing the per-keyword lists "in parallel"
//! (Sec. 3.2.2) so each document is counted once. [`InvertedIndex`] is that
//! structure, generic over the document id type; [`union_distinct`] is the
//! synchronous k-way traversal.

use soi_common::{FxHashMap, KeywordId};

/// An inverted index mapping keywords to id-sorted postings lists.
#[derive(Debug, Clone)]
pub struct InvertedIndex<D> {
    postings: FxHashMap<KeywordId, Vec<D>>,
    num_docs: usize,
}

impl<D> Default for InvertedIndex<D> {
    fn default() -> Self {
        Self {
            postings: FxHashMap::default(),
            num_docs: 0,
        }
    }
}

impl<D: Copy + Ord> InvertedIndex<D> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document with its keyword set.
    ///
    /// Documents must be added in ascending id order (postings stay sorted
    /// without per-insert sorting); this is debug-asserted.
    pub fn add_document<I: IntoIterator<Item = KeywordId>>(&mut self, doc: D, keywords: I) {
        for k in keywords {
            let list = self.postings.entry(k).or_default();
            debug_assert!(
                list.last().is_none_or(|&last| last <= doc),
                "documents must be added in ascending id order"
            );
            if list.last() != Some(&doc) {
                list.push(doc);
            }
        }
        self.num_docs += 1;
    }

    /// Builds an index from `(keyword, doc)` pairs sorted ascending by
    /// `(keyword, doc)`, with `num_docs` the number of documents the pairs
    /// were drawn from.
    ///
    /// Produces exactly the index that [`add_document`](Self::add_document)
    /// calls over the same documents would: duplicate adjacent pairs
    /// collapse, postings stay id-sorted. This is the bulk path used by the
    /// grouped (and parallel) index builds, which gather each cell's
    /// `(keyword, doc)` pairs and sort once instead of hashing per keyword
    /// per document.
    pub fn from_sorted_pairs(num_docs: usize, pairs: &[(KeywordId, D)]) -> Self {
        debug_assert!(
            pairs
                .windows(2)
                .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)),
            "pairs must be sorted by (keyword, doc)"
        );
        let mut postings: FxHashMap<KeywordId, Vec<D>> = FxHashMap::default();
        let mut i = 0;
        while i < pairs.len() {
            let k = pairs[i].0;
            let run_end = pairs[i..]
                .iter()
                .position(|&(kk, _)| kk != k)
                .map_or(pairs.len(), |off| i + off);
            let mut list: Vec<D> = Vec::with_capacity(run_end - i);
            for &(_, d) in &pairs[i..run_end] {
                if list.last() != Some(&d) {
                    list.push(d);
                }
            }
            postings.insert(k, list);
            i = run_end;
        }
        Self { postings, num_docs }
    }

    /// Builds an index from ready-made per-keyword postings runs.
    ///
    /// Each run is `(keyword, docs)` with `docs` strictly ascending (distinct
    /// ids), and keywords must be distinct across runs; both are
    /// debug-asserted. This is the zero-rehash bulk path: the grouped index
    /// build carves each cell's postings directly out of a globally sorted
    /// entry array, so the lists arrive already sorted and deduplicated.
    pub fn from_runs(num_docs: usize, runs: Vec<(KeywordId, Vec<D>)>) -> Self {
        let mut postings: FxHashMap<KeywordId, Vec<D>> = FxHashMap::default();
        postings.reserve(runs.len());
        for (k, list) in runs {
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "postings must be strictly ascending"
            );
            let prev = postings.insert(k, list);
            debug_assert!(prev.is_none(), "duplicate keyword run");
        }
        Self { postings, num_docs }
    }

    /// The postings list for `k` (empty slice if absent).
    pub fn postings(&self, k: KeywordId) -> &[D] {
        self.postings.get(&k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of documents containing `k`.
    pub fn doc_frequency(&self, k: KeywordId) -> usize {
        self.postings(k).len()
    }

    /// Number of documents added.
    pub fn num_documents(&self) -> usize {
        self.num_docs
    }

    /// Number of distinct keywords.
    pub fn num_keywords(&self) -> usize {
        self.postings.len()
    }

    /// Iterates over `(keyword, postings)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &[D])> {
        self.postings.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Calls `f` once per distinct document appearing in the postings of any
    /// of `keywords`, in ascending document order.
    ///
    /// This is the paper's synchronous multi-list traversal: a document with
    /// several matching keywords is visited exactly once.
    pub fn for_each_matching<F: FnMut(D)>(&self, keywords: &[KeywordId], f: F) {
        let lists: Vec<&[D]> = keywords.iter().map(|&k| self.postings(k)).collect();
        union_distinct(&lists, f);
    }

    /// Counts distinct documents matching any of `keywords`.
    pub fn count_matching(&self, keywords: &[KeywordId]) -> usize {
        let mut n = 0;
        self.for_each_matching(keywords, |_| n += 1);
        n
    }
}

/// K-way distinct union of id-sorted lists: calls `f` exactly once per
/// distinct element, in ascending order.
///
/// Lists must each be sorted ascending (duplicates within a list allowed).
pub fn union_distinct<D: Copy + Ord, F: FnMut(D)>(lists: &[&[D]], mut f: F) {
    let mut cursors: Vec<usize> = vec![0; lists.len()];
    loop {
        // Find the smallest head among all lists.
        let mut smallest: Option<D> = None;
        for (li, list) in lists.iter().enumerate() {
            if let Some(&head) = list.get(cursors[li]) {
                smallest = Some(match smallest {
                    Some(s) if s <= head => s,
                    _ => head,
                });
            }
        }
        let Some(value) = smallest else { break };
        f(value);
        // Advance every cursor past this value (handles duplicates).
        for (li, list) in lists.iter().enumerate() {
            let c = &mut cursors[li];
            while *c < list.len() && list[*c] == value {
                *c += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kid(i: u32) -> KeywordId {
        KeywordId(i)
    }

    #[test]
    fn postings_sorted_and_queryable() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.add_document(1, [kid(0), kid(1)]);
        idx.add_document(2, [kid(1)]);
        idx.add_document(5, [kid(0)]);
        assert_eq!(idx.postings(kid(0)), &[1, 5]);
        assert_eq!(idx.postings(kid(1)), &[1, 2]);
        assert_eq!(idx.postings(kid(9)), &[] as &[u32]);
        assert_eq!(idx.doc_frequency(kid(0)), 2);
        assert_eq!(idx.num_documents(), 3);
        assert_eq!(idx.num_keywords(), 2);
    }

    #[test]
    fn duplicate_keywords_in_one_document_stored_once() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.add_document(3, [kid(0), kid(0), kid(0)]);
        assert_eq!(idx.postings(kid(0)), &[3]);
    }

    #[test]
    fn bulk_constructors_match_incremental() {
        let mut inc: InvertedIndex<u32> = InvertedIndex::new();
        inc.add_document(1, [kid(0), kid(1)]);
        inc.add_document(2, [kid(1)]);
        inc.add_document(5, [kid(0), kid(0)]);

        let pairs = [
            (kid(0), 1u32),
            (kid(0), 5),
            (kid(0), 5),
            (kid(1), 1),
            (kid(1), 2),
        ];
        let from_pairs = InvertedIndex::from_sorted_pairs(3, &pairs);
        let from_runs =
            InvertedIndex::from_runs(3, vec![(kid(0), vec![1, 5]), (kid(1), vec![1, 2])]);
        for idx in [&from_pairs, &from_runs] {
            assert_eq!(idx.num_documents(), inc.num_documents());
            assert_eq!(idx.num_keywords(), inc.num_keywords());
            assert_eq!(idx.postings(kid(0)), inc.postings(kid(0)));
            assert_eq!(idx.postings(kid(1)), inc.postings(kid(1)));
        }
    }

    #[test]
    fn union_distinct_merges_without_duplicates() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 3, 4, 7];
        let c = [7u32, 8];
        let mut out = Vec::new();
        union_distinct(&[&a, &b, &c], |d| out.push(d));
        assert_eq!(out, vec![1, 2, 3, 4, 5, 7, 8]);
    }

    #[test]
    fn union_distinct_handles_empty_and_single() {
        let mut out = Vec::new();
        union_distinct::<u32, _>(&[], |d| out.push(d));
        assert!(out.is_empty());
        union_distinct(&[&[] as &[u32]], |d| out.push(d));
        assert!(out.is_empty());
        union_distinct(&[&[4u32, 4, 4] as &[u32]], |d| out.push(d));
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn for_each_matching_counts_docs_once() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.add_document(1, [kid(0), kid(1)]);
        idx.add_document(2, [kid(0)]);
        idx.add_document(3, [kid(1)]);
        idx.add_document(4, [kid(2)]);
        assert_eq!(idx.count_matching(&[kid(0), kid(1)]), 3);
        assert_eq!(idx.count_matching(&[kid(2)]), 1);
        assert_eq!(idx.count_matching(&[kid(7)]), 0);
        let mut seen = Vec::new();
        idx.for_each_matching(&[kid(0), kid(1)], |d| seen.push(d));
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
