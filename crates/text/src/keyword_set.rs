//! Sorted keyword-id sets.

use soi_common::KeywordId;

/// A sorted, deduplicated set of keyword ids.
///
/// This is the representation of `Ψp` (POI keywords), `Ψr` (photo tags), and
/// query keyword sets `Ψ`. Sorted storage makes the hot operations —
/// emptiness of `Ψp ∩ Ψ` (Definition 1) and the Jaccard distance
/// (Definition 7) — linear merges without hashing.
///
/// ```
/// use soi_common::KeywordId;
/// use soi_text::KeywordSet;
///
/// let a = KeywordSet::from_ids([KeywordId(1), KeywordId(2), KeywordId(3)]);
/// let b = KeywordSet::from_ids([KeywordId(3), KeywordId(4)]);
/// assert!(a.intersects(&b));
/// assert_eq!(a.intersection_size(&b), 1);
/// assert_eq!(a.jaccard_distance(&b), 1.0 - 1.0 / 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeywordSet {
    ids: Vec<KeywordId>,
}

impl KeywordSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a set from arbitrary ids (sorted and deduplicated).
    pub fn from_ids<I: IntoIterator<Item = KeywordId>>(ids: I) -> Self {
        let mut ids: Vec<KeywordId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// Number of keywords in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns true if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted ids.
    pub fn ids(&self) -> &[KeywordId] {
        &self.ids
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = KeywordId> + '_ {
        self.ids.iter().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: KeywordId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_size(&self, other: &KeywordSet) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Size of the union with `other`.
    pub fn union_size(&self, other: &KeywordSet) -> usize {
        self.ids.len() + other.ids.len() - self.intersection_size(other)
    }

    /// Returns true if the sets share at least one keyword
    /// (`Ψp ∩ Ψ ≠ ∅`, the relevance predicate of Definition 1).
    pub fn intersects(&self, other: &KeywordSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Jaccard distance `1 − |A∩B| / |A∪B|` (Definition 7).
    ///
    /// The distance of two empty sets is defined as 0 (identical).
    pub fn jaccard_distance(&self, other: &KeywordSet) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            return 0.0;
        }
        1.0 - self.intersection_size(other) as f64 / union as f64
    }

    /// The intersection as a new set.
    pub fn intersection(&self, other: &KeywordSet) -> KeywordSet {
        let mut out = Vec::with_capacity(self.ids.len().min(other.ids.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        KeywordSet { ids: out }
    }

    /// The union as a new set.
    pub fn union(&self, other: &KeywordSet) -> KeywordSet {
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        KeywordSet { ids: out }
    }
}

impl FromIterator<KeywordId> for KeywordSet {
    fn from_iter<T: IntoIterator<Item = KeywordId>>(iter: T) -> Self {
        Self::from_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        let raw: Vec<u32> = s.iter().map(u32::from).collect();
        assert_eq!(raw, vec![1, 3, 5]);
    }

    #[test]
    fn membership() {
        let s = set(&[2, 4, 6]);
        assert!(s.contains(KeywordId(4)));
        assert!(!s.contains(KeywordId(5)));
        assert!(!KeywordSet::empty().contains(KeywordId(0)));
    }

    #[test]
    fn intersection_and_union_sizes() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&set(&[9, 10])));
        assert!(!a.intersects(&KeywordSet::empty()));
    }

    #[test]
    fn jaccard_distance_cases() {
        let a = set(&[1, 2]);
        assert_eq!(a.jaccard_distance(&a), 0.0);
        assert_eq!(a.jaccard_distance(&set(&[3, 4])), 1.0);
        assert!((a.jaccard_distance(&set(&[2, 3])) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        // Both empty: identical by convention.
        assert_eq!(
            KeywordSet::empty().jaccard_distance(&KeywordSet::empty()),
            0.0
        );
        // One empty, one not: maximally distant.
        assert_eq!(a.jaccard_distance(&KeywordSet::empty()), 1.0);
    }

    #[test]
    fn intersection_and_union_sets() {
        let a = set(&[1, 3, 5]);
        let b = set(&[2, 3, 4, 5]);
        assert_eq!(a.intersection(&b), set(&[3, 5]));
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 5]));
        assert_eq!(a.union(&KeywordSet::empty()), a);
        assert_eq!(a.intersection(&KeywordSet::empty()), KeywordSet::empty());
    }

    #[test]
    fn from_iterator() {
        let s: KeywordSet = [KeywordId(2), KeywordId(1), KeywordId(2)]
            .into_iter()
            .collect();
        assert_eq!(s, set(&[1, 2]));
    }
}
