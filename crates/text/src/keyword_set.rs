//! Sorted keyword-id sets.

use soi_common::KeywordId;

/// Sets of at most this many keywords are stored inline, without a heap
/// allocation. Real POIs and photos carry one to a handful of keywords, so
/// the inline path covers the overwhelming majority of the millions of
/// sets an index build or snapshot load materialises; six ids keep the
/// whole set within 32 bytes (the size the heap variant forces anyway).
const INLINE_CAP: usize = 6;

/// Backing storage: a fixed inline buffer for small sets, a `Vec` beyond.
#[derive(Clone)]
enum Ids {
    Inline {
        len: u8,
        buf: [KeywordId; INLINE_CAP],
    },
    Heap(Vec<KeywordId>),
}

/// A sorted, deduplicated set of keyword ids.
///
/// This is the representation of `Ψp` (POI keywords), `Ψr` (photo tags), and
/// query keyword sets `Ψ`. Sorted storage makes the hot operations —
/// emptiness of `Ψp ∩ Ψ` (Definition 1) and the Jaccard distance
/// (Definition 7) — linear merges without hashing. Small sets (the common
/// case by far) live inline: constructing or cloning them never touches
/// the allocator, which is what keeps bulk paths — index builds, IR-tree
/// entry clones, snapshot decodes — off the malloc floor.
///
/// ```
/// use soi_common::KeywordId;
/// use soi_text::KeywordSet;
///
/// let a = KeywordSet::from_ids([KeywordId(1), KeywordId(2), KeywordId(3)]);
/// let b = KeywordSet::from_ids([KeywordId(3), KeywordId(4)]);
/// assert!(a.intersects(&b));
/// assert_eq!(a.intersection_size(&b), 1);
/// assert_eq!(a.jaccard_distance(&b), 1.0 - 1.0 / 4.0);
/// ```
#[derive(Clone)]
pub struct KeywordSet {
    ids: Ids,
}

impl KeywordSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Wraps ids that are already strictly ascending, choosing inline or
    /// heap storage by length. Callers guarantee canonical order.
    fn from_canonical_vec(ids: Vec<KeywordId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        if ids.len() <= INLINE_CAP {
            let mut buf = [KeywordId(0); INLINE_CAP];
            buf[..ids.len()].copy_from_slice(&ids);
            Self {
                ids: Ids::Inline {
                    len: ids.len() as u8,
                    buf,
                },
            }
        } else {
            Self {
                ids: Ids::Heap(ids),
            }
        }
    }

    /// Builds a set from arbitrary ids (sorted and deduplicated).
    pub fn from_ids<I: IntoIterator<Item = KeywordId>>(ids: I) -> Self {
        let mut ids: Vec<KeywordId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self::from_canonical_vec(ids)
    }

    /// Wraps ids that are already strictly ascending (the canonical sorted,
    /// deduplicated order this type maintains), or returns `None` if they
    /// are not.
    ///
    /// This is the decode-side counterpart of [`Self::iter`]: snapshot
    /// codecs persist sets in iteration order and reload millions of tiny
    /// sets, where re-sorting each one is pure overhead and an
    /// out-of-order run indicates corruption rather than unnormalised
    /// input.
    pub fn from_ascending_ids(ids: Vec<KeywordId>) -> Option<Self> {
        if ids.windows(2).all(|w| w[0] < w[1]) {
            Some(Self::from_canonical_vec(ids))
        } else {
            None
        }
    }

    /// Like [`Self::from_ascending_ids`], but from an iterator of known
    /// length: small sets are written straight into inline storage, so the
    /// common case allocates nothing at all.
    pub fn from_ascending_iter<I>(mut ids: I) -> Option<Self>
    where
        I: ExactSizeIterator<Item = KeywordId>,
    {
        let n = ids.len();
        if n > INLINE_CAP {
            return Self::from_ascending_ids(ids.collect());
        }
        let mut buf = [KeywordId(0); INLINE_CAP];
        for i in 0..n {
            let k = ids.next()?;
            if i > 0 && buf[i - 1] >= k {
                return None;
            }
            buf[i] = k;
        }
        Some(Self {
            ids: Ids::Inline { len: n as u8, buf },
        })
    }

    /// Number of keywords in the set.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns true if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The sorted ids.
    pub fn ids(&self) -> &[KeywordId] {
        self.as_slice()
    }

    #[inline]
    fn as_slice(&self) -> &[KeywordId] {
        match &self.ids {
            Ids::Inline { len, buf } => &buf[..*len as usize],
            Ids::Heap(v) => v,
        }
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = KeywordId> + '_ {
        self.as_slice().iter().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: KeywordId) -> bool {
        self.as_slice().binary_search(&id).is_ok()
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_size(&self, other: &KeywordSet) -> usize {
        let (a, b) = (self.as_slice(), other.as_slice());
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Size of the union with `other`.
    pub fn union_size(&self, other: &KeywordSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Returns true if the sets share at least one keyword
    /// (`Ψp ∩ Ψ ≠ ∅`, the relevance predicate of Definition 1).
    pub fn intersects(&self, other: &KeywordSet) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Jaccard distance `1 − |A∩B| / |A∪B|` (Definition 7).
    ///
    /// The distance of two empty sets is defined as 0 (identical).
    pub fn jaccard_distance(&self, other: &KeywordSet) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            return 0.0;
        }
        1.0 - self.intersection_size(other) as f64 / union as f64
    }

    /// The intersection as a new set.
    pub fn intersection(&self, other: &KeywordSet) -> KeywordSet {
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        KeywordSet::from_canonical_vec(out)
    }

    /// The union as a new set.
    pub fn union(&self, other: &KeywordSet) -> KeywordSet {
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        KeywordSet::from_canonical_vec(out)
    }
}

impl Default for KeywordSet {
    fn default() -> Self {
        Self {
            ids: Ids::Inline {
                len: 0,
                buf: [KeywordId(0); INLINE_CAP],
            },
        }
    }
}

// Equality, ordering-sensitive hashing, and debug formatting all go
// through the id slice, so inline and heap storage of the same ids are
// indistinguishable.
impl PartialEq for KeywordSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for KeywordSet {}

impl std::hash::Hash for KeywordSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for KeywordSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.as_slice()).finish()
    }
}

impl FromIterator<KeywordId> for KeywordSet {
    fn from_iter<T: IntoIterator<Item = KeywordId>>(iter: T) -> Self {
        Self::from_ids(iter)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for KeywordSet {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.as_slice())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for KeywordSet {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let ids = Vec::<KeywordId>::deserialize(deserializer)?;
        Ok(Self::from_ids(ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        let raw: Vec<u32> = s.iter().map(u32::from).collect();
        assert_eq!(raw, vec![1, 3, 5]);
    }

    #[test]
    fn inline_and_heap_storage_agree() {
        // Small sets stay inline, large ones spill; behaviour and equality
        // must not depend on which storage a set landed in.
        let small: Vec<u32> = (0..INLINE_CAP as u32).collect();
        let large: Vec<u32> = (0..INLINE_CAP as u32 + 3).collect();
        for raw in [small, large] {
            let a = set(&raw);
            assert_eq!(a.len(), raw.len());
            let b = KeywordSet::from_ascending_ids(raw.iter().map(|&i| KeywordId(i)).collect())
                .unwrap();
            let c = KeywordSet::from_ascending_iter(raw.iter().map(|&i| KeywordId(i))).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
            assert_eq!(a.ids(), b.ids());
            assert!(a.contains(KeywordId(raw[raw.len() - 1])));
            assert_eq!(a.intersection_size(&b), raw.len());
            let mut hash = std::collections::hash_map::DefaultHasher::new();
            use std::hash::{Hash, Hasher};
            a.hash(&mut hash);
            let ha = hash.finish();
            let mut hash = std::collections::hash_map::DefaultHasher::new();
            b.hash(&mut hash);
            assert_eq!(ha, hash.finish());
        }
    }

    #[test]
    fn from_ascending_requires_canonical_order() {
        let ids = |raw: &[u32]| raw.iter().map(|&i| KeywordId(i)).collect::<Vec<_>>();
        assert_eq!(
            KeywordSet::from_ascending_ids(ids(&[1, 3, 5])),
            Some(set(&[1, 3, 5]))
        );
        assert_eq!(
            KeywordSet::from_ascending_ids(Vec::new()),
            Some(KeywordSet::empty())
        );
        assert_eq!(KeywordSet::from_ascending_ids(ids(&[3, 1])), None);
        assert_eq!(KeywordSet::from_ascending_ids(ids(&[1, 1, 2])), None);
        // The iterator variant applies the same rules, inline and spilled.
        assert_eq!(
            KeywordSet::from_ascending_iter(ids(&[2, 2]).into_iter()),
            None
        );
        assert_eq!(
            KeywordSet::from_ascending_iter(ids(&[3, 2, 4, 5, 6, 7, 8, 9]).into_iter()),
            None
        );
        assert_eq!(
            KeywordSet::from_ascending_iter(std::iter::empty()),
            Some(KeywordSet::empty())
        );
    }

    #[test]
    fn membership() {
        let s = set(&[2, 4, 6]);
        assert!(s.contains(KeywordId(4)));
        assert!(!s.contains(KeywordId(5)));
        assert!(!KeywordSet::empty().contains(KeywordId(0)));
    }

    #[test]
    fn intersection_and_union_sizes() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&set(&[9, 10])));
        assert!(!a.intersects(&KeywordSet::empty()));
    }

    #[test]
    fn jaccard_distance_cases() {
        let a = set(&[1, 2]);
        assert_eq!(a.jaccard_distance(&a), 0.0);
        assert_eq!(a.jaccard_distance(&set(&[3, 4])), 1.0);
        assert!((a.jaccard_distance(&set(&[2, 3])) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        // Both empty: identical by convention.
        assert_eq!(
            KeywordSet::empty().jaccard_distance(&KeywordSet::empty()),
            0.0
        );
        // One empty, one not: maximally distant.
        assert_eq!(a.jaccard_distance(&KeywordSet::empty()), 1.0);
    }

    #[test]
    fn intersection_and_union_sets() {
        let a = set(&[1, 3, 5]);
        let b = set(&[2, 3, 4, 5]);
        assert_eq!(a.intersection(&b), set(&[3, 5]));
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 5]));
        assert_eq!(a.union(&KeywordSet::empty()), a);
        assert_eq!(a.intersection(&KeywordSet::empty()), KeywordSet::empty());
        // Unions that cross the inline capacity spill correctly.
        let big = set(&[10, 11, 12, 13]);
        let merged = a.union(&big);
        assert_eq!(merged.len(), 7);
        assert!(merged.contains(KeywordId(13)));
    }

    #[test]
    fn from_iterator() {
        let s: KeywordSet = [KeywordId(2), KeywordId(1), KeywordId(2)]
            .into_iter()
            .collect();
        assert_eq!(s, set(&[1, 2]));
    }
}
