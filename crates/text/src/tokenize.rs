//! Keyword tokenisation.
//!
//! Crowdsourced names, descriptions, and photo tags are noisy; the paper
//! derives keyword sets "from its name, description, tags". We normalise the
//! same way for every source so that POI keywords, photo tags, and query
//! keywords land in one vocabulary: Unicode-lowercase, split on
//! non-alphanumeric characters, drop one-character tokens and a small
//! English stopword list.

/// Minimal English stopword list: frequent glue words that carry no topical
/// signal for street ranking.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "at", "by", "de", "for", "in", "la", "le", "of", "on", "or", "the", "to",
    "with",
];

/// Returns true if `token` is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

/// Tokenises raw text into normalised keywords.
///
/// Splits on any non-alphanumeric character, lowercases, and drops
/// single-character tokens and stopwords. The output preserves first-seen
/// order and may contain duplicates (deduplication happens when building a
/// [`KeywordSet`](crate::KeywordSet)).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        if raw.len() <= 1 {
            continue;
        }
        let token = raw.to_lowercase();
        if token.len() <= 1 || is_stopword(&token) {
            continue;
        }
        out.push(token);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("Oxford Street, Shopping-Mall"),
            vec!["oxford", "street", "shopping", "mall"]
        );
    }

    #[test]
    fn drops_stopwords_and_short_tokens() {
        assert_eq!(
            tokenize("The Church of St X at London"),
            vec!["church", "st", "london"]
        );
    }

    #[test]
    fn handles_unicode() {
        assert_eq!(
            tokenize("Schönhauser Straße"),
            vec!["schönhauser", "straße"]
        );
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! -- ..").is_empty());
    }

    #[test]
    fn keeps_duplicates() {
        assert_eq!(tokenize("shop shop"), vec!["shop", "shop"]);
    }

    #[test]
    fn numeric_tokens_survive() {
        assert_eq!(tokenize("route 66 cafe"), vec!["route", "66", "cafe"]);
    }
}
