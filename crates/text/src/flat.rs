//! Flat (CSR) inverted postings for bulk-built, read-mostly indexes.
//!
//! [`FlatPostings`] stores the same keyword → id-sorted postings mapping as
//! [`InvertedIndex`](crate::InvertedIndex), but in two contiguous arrays: a
//! keyword-ascending run directory and one shared document array. Compared to
//! the hash-map representation this removes the per-keyword allocation and
//! hashing from the offline build (the paper's per-cell local indexes number
//! in the thousands, each with a handful of keywords) and makes lookups a
//! binary search over a cache-resident directory.

use crate::inverted::union_distinct;
use soi_common::KeywordId;

/// A compact inverted index: keyword → id-sorted postings, CSR layout.
#[derive(Debug, Clone)]
pub struct FlatPostings<D> {
    /// Per distinct keyword, ascending: the keyword and the **end** offset of
    /// its run in `docs` (the start is the previous entry's end, or 0).
    runs: Vec<(KeywordId, u32)>,
    /// All postings, concatenated in run order; id-sorted within each run.
    docs: Vec<D>,
    num_docs: usize,
}

impl<D> Default for FlatPostings<D> {
    fn default() -> Self {
        Self {
            runs: Vec::new(),
            docs: Vec::new(),
            num_docs: 0,
        }
    }
}

impl<D: Copy + Ord> FlatPostings<D> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(keyword, doc)` pairs sorted ascending by
    /// `(keyword, doc)`, with `num_docs` the number of documents the pairs
    /// were drawn from. Adjacent duplicate pairs collapse, so the result
    /// matches the incremental `add_document` path of
    /// [`InvertedIndex`](crate::InvertedIndex) over the same documents.
    pub fn from_sorted_pairs(num_docs: usize, pairs: &[(KeywordId, D)]) -> Self {
        debug_assert!(
            pairs
                .windows(2)
                .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)),
            "pairs must be sorted by (keyword, doc)"
        );
        let mut runs: Vec<(KeywordId, u32)> = Vec::new();
        let mut docs: Vec<D> = Vec::with_capacity(pairs.len());
        for &(k, d) in pairs {
            match runs.last_mut() {
                Some(&mut (rk, _)) if rk == k => {
                    if docs.last() != Some(&d) {
                        docs.push(d);
                    }
                }
                _ => {
                    runs.push((k, 0));
                    docs.push(d);
                }
            }
            if let Some(run) = runs.last_mut() {
                run.1 = docs.len() as u32;
            }
        }
        Self {
            runs,
            docs,
            num_docs,
        }
    }

    /// Builds from pre-assembled CSR arrays: `runs` holds each distinct
    /// keyword (ascending) with the **end** offset of its postings in
    /// `docs`; postings are id-sorted and distinct within each run.
    ///
    /// This is the zero-copy path for builders that already produce the CSR
    /// layout (the grouped index build derives both arrays from one sorted
    /// pair array in a single pass). Invariants are debug-asserted.
    pub fn from_raw_parts(num_docs: usize, runs: Vec<(KeywordId, u32)>, docs: Vec<D>) -> Self {
        debug_assert!(
            runs.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
            "runs must have ascending keywords and non-decreasing offsets"
        );
        debug_assert_eq!(
            runs.last().map_or(0, |&(_, end)| end as usize),
            docs.len(),
            "last run must end at docs.len()"
        );
        debug_assert!({
            let flat = Self {
                runs: runs.clone(),
                docs: Vec::new(),
                num_docs,
            };
            let mut ok = true;
            let mut start = 0usize;
            for &(_, end) in &flat.runs {
                ok &= docs[start..end as usize].windows(2).all(|w| w[0] < w[1]);
                start = end as usize;
            }
            ok
        });
        Self {
            runs,
            docs,
            num_docs,
        }
    }

    /// The raw run directory: each distinct keyword (ascending) with the
    /// **end** offset of its postings in [`raw_docs`](Self::raw_docs).
    ///
    /// This is the snapshot-encoding view: together with `raw_docs` and
    /// [`num_documents`](Self::num_documents) it captures the whole index,
    /// and [`from_raw_parts`](Self::from_raw_parts) rebuilds it exactly.
    pub fn raw_runs(&self) -> &[(KeywordId, u32)] {
        &self.runs
    }

    /// The raw concatenated postings array (see [`raw_runs`](Self::raw_runs)).
    pub fn raw_docs(&self) -> &[D] {
        &self.docs
    }

    /// Adds a document with its keyword set (the maintenance path; the bulk
    /// path is [`from_sorted_pairs`](Self::from_sorted_pairs)).
    ///
    /// Cost is linear in the index size: the flat arrays are rebuilt. The
    /// result is identical to having included the document in the bulk build.
    pub fn add_document<I: IntoIterator<Item = KeywordId>>(&mut self, doc: D, keywords: I) {
        let mut pairs: Vec<(KeywordId, D)> = self
            .iter()
            .flat_map(|(k, ds)| ds.iter().map(move |&d| (k, d)))
            .collect();
        pairs.extend(keywords.into_iter().map(|k| (k, doc)));
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        *self = Self::from_sorted_pairs(self.num_docs + 1, &pairs);
    }

    /// The postings run for `k` (empty slice if absent).
    pub fn postings(&self, k: KeywordId) -> &[D] {
        match self.runs.binary_search_by_key(&k, |&(rk, _)| rk) {
            Ok(i) => {
                let end = self.runs[i].1 as usize;
                let start = if i == 0 {
                    0
                } else {
                    self.runs[i - 1].1 as usize
                };
                &self.docs[start..end]
            }
            Err(_) => &[],
        }
    }

    /// Number of documents containing `k`.
    pub fn doc_frequency(&self, k: KeywordId) -> usize {
        self.postings(k).len()
    }

    /// Number of documents indexed.
    pub fn num_documents(&self) -> usize {
        self.num_docs
    }

    /// Number of distinct keywords.
    pub fn num_keywords(&self) -> usize {
        self.runs.len()
    }

    /// Iterates over `(keyword, postings)` in ascending keyword order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &[D])> {
        self.runs.iter().enumerate().map(move |(i, &(k, end))| {
            let start = if i == 0 {
                0
            } else {
                self.runs[i - 1].1 as usize
            };
            (k, &self.docs[start..end as usize])
        })
    }

    /// Calls `f` once per distinct document appearing in the postings of any
    /// of `keywords`, in ascending document order (the paper's synchronous
    /// multi-list traversal).
    pub fn for_each_matching<F: FnMut(D)>(&self, keywords: &[KeywordId], f: F) {
        let lists: Vec<&[D]> = keywords.iter().map(|&k| self.postings(k)).collect();
        union_distinct(&lists, f);
    }

    /// Counts distinct documents matching any of `keywords`.
    pub fn count_matching(&self, keywords: &[KeywordId]) -> usize {
        let mut n = 0;
        self.for_each_matching(keywords, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InvertedIndex;

    fn kid(i: u32) -> KeywordId {
        KeywordId(i)
    }

    #[test]
    fn from_sorted_pairs_matches_hash_index() {
        let mut hash: InvertedIndex<u32> = InvertedIndex::new();
        hash.add_document(1, [kid(0), kid(2)]);
        hash.add_document(2, [kid(2)]);
        hash.add_document(5, [kid(0), kid(1)]);
        let pairs = [
            (kid(0), 1u32),
            (kid(0), 5),
            (kid(1), 5),
            (kid(2), 1),
            (kid(2), 2),
            (kid(2), 2), // duplicate collapses
        ];
        let flat = FlatPostings::from_sorted_pairs(3, &pairs);
        assert_eq!(flat.num_documents(), hash.num_documents());
        assert_eq!(flat.num_keywords(), hash.num_keywords());
        for k in [0, 1, 2, 9] {
            assert_eq!(flat.postings(kid(k)), hash.postings(kid(k)), "k={k}");
            assert_eq!(flat.doc_frequency(kid(k)), hash.doc_frequency(kid(k)));
        }
        let flat_runs: Vec<(KeywordId, Vec<u32>)> =
            flat.iter().map(|(k, d)| (k, d.to_vec())).collect();
        assert_eq!(
            flat_runs,
            vec![
                (kid(0), vec![1, 5]),
                (kid(1), vec![5]),
                (kid(2), vec![1, 2]),
            ]
        );
    }

    #[test]
    fn add_document_matches_bulk() {
        let mut inc: FlatPostings<u32> = FlatPostings::new();
        inc.add_document(1, [kid(0), kid(1)]);
        inc.add_document(3, [kid(1)]);
        let bulk = FlatPostings::from_sorted_pairs(2, &[(kid(0), 1), (kid(1), 1), (kid(1), 3)]);
        assert_eq!(inc.num_documents(), bulk.num_documents());
        assert_eq!(inc.postings(kid(0)), bulk.postings(kid(0)));
        assert_eq!(inc.postings(kid(1)), bulk.postings(kid(1)));
    }

    #[test]
    fn from_raw_parts_matches_from_sorted_pairs() {
        let pairs = [
            (kid(0), 1u32),
            (kid(0), 5),
            (kid(1), 5),
            (kid(2), 1),
            (kid(2), 2),
        ];
        let bulk = FlatPostings::from_sorted_pairs(3, &pairs);
        let raw = FlatPostings::from_raw_parts(
            3,
            vec![(kid(0), 2), (kid(1), 3), (kid(2), 5)],
            vec![1u32, 5, 5, 1, 2],
        );
        assert_eq!(raw.num_documents(), bulk.num_documents());
        assert_eq!(raw.num_keywords(), bulk.num_keywords());
        for k in [0, 1, 2, 9] {
            assert_eq!(raw.postings(kid(k)), bulk.postings(kid(k)), "k={k}");
        }
        let empty = FlatPostings::<u32>::from_raw_parts(0, Vec::new(), Vec::new());
        assert_eq!(empty.num_keywords(), 0);
    }

    #[test]
    fn matching_traversal_counts_once() {
        let flat = FlatPostings::from_sorted_pairs(
            4,
            &[
                (kid(0), 1u32),
                (kid(0), 2),
                (kid(1), 1),
                (kid(1), 3),
                (kid(2), 4),
            ],
        );
        assert_eq!(flat.count_matching(&[kid(0), kid(1)]), 3);
        assert_eq!(flat.count_matching(&[kid(2)]), 1);
        assert_eq!(flat.count_matching(&[kid(9)]), 0);
        let mut seen = Vec::new();
        flat.for_each_matching(&[kid(0), kid(1)], |d| seen.push(d));
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn empty_index() {
        let flat: FlatPostings<u32> = FlatPostings::new();
        assert_eq!(flat.num_documents(), 0);
        assert_eq!(flat.num_keywords(), 0);
        assert_eq!(flat.postings(kid(0)), &[] as &[u32]);
        assert_eq!(flat.count_matching(&[kid(0)]), 0);
    }
}
