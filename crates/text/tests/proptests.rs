//! Property-based tests for keyword sets, frequency vectors, and postings.

use proptest::prelude::*;
use soi_common::KeywordId;
use soi_text::{union_distinct, FreqVector, InvertedIndex, KeywordSet};
use std::collections::BTreeSet;

fn kwset() -> impl Strategy<Value = KeywordSet> {
    proptest::collection::vec(0u32..40, 0..12)
        .prop_map(|ids| KeywordSet::from_ids(ids.into_iter().map(KeywordId)))
}

proptest! {
    #[test]
    fn jaccard_distance_is_a_bounded_semimetric(a in kwset(), b in kwset()) {
        let d = a.jaccard_distance(&b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - b.jaccard_distance(&a)).abs() < 1e-12);
        prop_assert_eq!(a.jaccard_distance(&a), 0.0);
    }

    #[test]
    fn jaccard_triangle_inequality(a in kwset(), b in kwset(), c in kwset()) {
        // Jaccard distance is a true metric; check the triangle inequality.
        let ab = a.jaccard_distance(&b);
        let bc = b.jaccard_distance(&c);
        let ac = a.jaccard_distance(&c);
        prop_assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn set_ops_match_btreeset(xs in proptest::collection::vec(0u32..30, 0..15),
                              ys in proptest::collection::vec(0u32..30, 0..15)) {
        let a = KeywordSet::from_ids(xs.iter().map(|&i| KeywordId(i)));
        let b = KeywordSet::from_ids(ys.iter().map(|&i| KeywordId(i)));
        let sa: BTreeSet<u32> = xs.into_iter().collect();
        let sb: BTreeSet<u32> = ys.into_iter().collect();
        prop_assert_eq!(a.intersection_size(&b), sa.intersection(&sb).count());
        prop_assert_eq!(a.union_size(&b), sa.union(&sb).count());
        prop_assert_eq!(a.intersects(&b), !sa.is_disjoint(&sb));
        let inter: Vec<u32> = a.intersection(&b).iter().map(u32::from).collect();
        let expect: Vec<u32> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(inter, expect);
        let uni: Vec<u32> = a.union(&b).iter().map(u32::from).collect();
        let expect: Vec<u32> = sa.union(&sb).copied().collect();
        prop_assert_eq!(uni, expect);
    }

    #[test]
    fn freq_vector_l1_matches_sum(pairs in proptest::collection::vec((0u32..20, 0.0f64..10.0), 0..20)) {
        let v = FreqVector::from_weights(pairs.iter().map(|&(k, w)| (KeywordId(k), w)));
        let manual: f64 = v.iter().map(|(_, w)| w).sum();
        prop_assert!((v.l1_norm() - manual).abs() < 1e-9);
        // sum over full support equals the norm.
        prop_assert!((v.sum_over(&v.support()) - v.l1_norm()).abs() < 1e-9);
    }

    #[test]
    fn union_distinct_matches_btreeset(lists in proptest::collection::vec(
        proptest::collection::vec(0u32..50, 0..20), 0..5)) {
        let sorted: Vec<Vec<u32>> = lists
            .iter()
            .map(|l| {
                let mut l = l.clone();
                l.sort_unstable();
                l
            })
            .collect();
        let refs: Vec<&[u32]> = sorted.iter().map(Vec::as_slice).collect();
        let mut got = Vec::new();
        union_distinct(&refs, |d| got.push(d));
        let expect: Vec<u32> = sorted
            .iter()
            .flatten()
            .copied()
            .collect::<BTreeSet<u32>>()
            .into_iter()
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn inverted_index_count_matches_naive(
        docs in proptest::collection::vec(proptest::collection::vec(0u32..10, 0..5), 0..25),
        query in proptest::collection::vec(0u32..10, 0..4),
    ) {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        for (i, kws) in docs.iter().enumerate() {
            idx.add_document(i as u32, kws.iter().map(|&k| KeywordId(k)));
        }
        let qk: Vec<KeywordId> = query.iter().map(|&k| KeywordId(k)).collect();
        let naive = docs
            .iter()
            .filter(|kws| kws.iter().any(|k| query.contains(k)))
            .count();
        prop_assert_eq!(idx.count_matching(&qk), naive);
    }
}
