//! End-to-end tests of the `soi` binary: generate a dataset into a temp
//! dir, then exercise every subcommand through the real executable.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::OnceLock;

fn soi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_soi"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Generates the shared test dataset once per test binary run.
fn dataset_dir() -> &'static str {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("soi_cli_test_{}", std::process::id()));
        let out = soi(&[
            "generate",
            "--city",
            "vienna",
            "--scale",
            "0.01",
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "generate failed: {}", stderr(&out));
        dir
    })
    .to_str()
    .unwrap()
}

#[test]
fn help_lists_all_commands() {
    let out = soi(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "generate", "stats", "query", "describe", "route", "export", "poi",
    ] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = soi(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn missing_required_option_fails() {
    let out = soi(&["stats"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--data"));
}

#[test]
fn stats_prints_counts() {
    let out = soi(&["stats", "--data", dataset_dir()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("dataset: vienna"));
    assert!(text.contains("segments:"));
    assert!(text.contains("POIs:"));
}

#[test]
fn query_ranks_streets_and_agrees_with_baseline() {
    let a = soi(&[
        "query",
        "--data",
        dataset_dir(),
        "--keywords",
        "shop",
        "--k",
        "5",
    ]);
    assert!(a.status.success(), "{}", stderr(&a));
    let soi_out = stdout(&a);
    assert!(soi_out.lines().count() >= 2, "no results: {soi_out}");

    let b = soi(&[
        "query",
        "--data",
        dataset_dir(),
        "--keywords",
        "shop",
        "--k",
        "5",
        "--algo",
        "bl",
    ]);
    assert!(b.status.success());
    // Both algorithms print the same ranked street table.
    assert_eq!(soi_out, stdout(&b));
}

#[test]
fn describe_selects_photos() {
    let out = soi(&[
        "describe",
        "--data",
        dataset_dir(),
        "--keywords",
        "shop",
        "--photos",
        "3",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("summary of 3 photos"));
    assert_eq!(text.matches("photo #").count(), 3);
}

#[test]
fn route_visits_streets() {
    let out = soi(&[
        "route",
        "--data",
        dataset_dir(),
        "--keywords",
        "food",
        "--k",
        "4",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("suggested exploration route"));
}

#[test]
fn export_writes_valid_geojson() {
    let path = std::env::temp_dir().join(format!("soi_cli_export_{}.geojson", std::process::id()));
    let out = soi(&[
        "export",
        "--data",
        dataset_dir(),
        "--keywords",
        "shop",
        "--k",
        "3",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = std::fs::read_to_string(&path).unwrap();
    assert!(doc.starts_with("{\"type\":\"FeatureCollection\""));
    assert!(doc.contains("\"interest\""));
    let photos = std::fs::read_to_string(format!("{}.photos.geojson", path.display())).unwrap();
    assert!(photos.contains("\"photo_id\""));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(format!("{}.photos.geojson", path.display())).ok();
}

#[test]
fn poi_query_returns_nearest_relevant() {
    let out = soi(&[
        "poi",
        "--data",
        dataset_dir(),
        "--keywords",
        "food",
        "--at",
        "0.01,0.01",
        "--k",
        "3",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("rank"));
    assert!(text.contains("food"));
}

#[test]
fn generate_rejects_unknown_city() {
    let out = soi(&["generate", "--city", "atlantis", "--out", "/tmp/nowhere"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown city"));
}

// --- exit-code contract -------------------------------------------------
//
// 2 = usage error, 3 = corrupt/invalid data, 4 = not found, 1 = other I/O.

fn code(out: &Output) -> i32 {
    out.status.code().expect("exited normally")
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &["frobnicate"][..],
        &["stats"][..],                                             // missing --data
        &["query", "--data", "x", "--keywords"][..],                // option without value
        &["generate", "--city", "atlantis", "--out", "/tmp/n"][..], // bad value
    ] {
        let out = soi(args);
        assert_eq!(code(&out), 2, "args {args:?}: {}", stderr(&out));
    }
}

#[test]
fn invalid_query_parameters_exit_2() {
    let out = soi(&[
        "query",
        "--data",
        dataset_dir(),
        "--keywords",
        "shop",
        "--k",
        "0",
    ]);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("k must be at least 1"));

    let out = soi(&[
        "query",
        "--data",
        dataset_dir(),
        "--keywords",
        "shop",
        "--eps",
        "-1.0",
    ]);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("eps must be positive"));
}

#[test]
fn missing_dataset_exits_4() {
    let out = soi(&["stats", "--data", "/definitely/not/a/dataset"]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    assert!(stderr(&out).contains("network.tsv"), "{}", stderr(&out));
}

#[test]
fn unknown_street_exits_4() {
    let out = soi(&[
        "describe",
        "--data",
        dataset_dir(),
        "--street",
        "No Such Street",
    ]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    assert!(stderr(&out).contains("No Such Street"));
}

#[test]
fn corrupt_dataset_exits_3() {
    // Copy the generated dataset, then poison one record of pois.tsv.
    let src = PathBuf::from(dataset_dir());
    let dir = std::env::temp_dir().join(format!("soi_cli_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(&src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    std::fs::write(dir.join("pois.tsv"), "not-a-coordinate\t0\t1\t2\n").unwrap();

    let out = soi(&["stats", "--data", dir.to_str().unwrap()]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("pois.tsv"), "error names the file: {err}");
    assert!(err.contains("record 1"), "error names the record: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn piped_truncation_is_not_a_panic() {
    // `soi route ... | head -n 1` closes stdout early; the CLI must treat
    // the broken pipe as a clean exit (like cat), not panic with exit 101.
    let script = format!(
        "set -o pipefail; {} route --data {} --keywords food --k 4 | head -n 1",
        env!("CARGO_BIN_EXE_soi"),
        dataset_dir()
    );
    let out = Command::new("bash")
        .args(["-c", &script])
        .output()
        .expect("shell runs");
    let err = stderr(&out);
    assert!(!err.contains("panicked"), "broken pipe panicked: {err}");
    assert!(out.status.success(), "pipeline failed: {err}");
}

#[test]
fn error_messages_name_the_failing_file_and_record() {
    let src = PathBuf::from(dataset_dir());
    let dir = std::env::temp_dir().join(format!("soi_cli_truncnet_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(&src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    // Truncate the network file mid-stream.
    let net = std::fs::read_to_string(dir.join("network.tsv")).unwrap();
    let cut: String = net.lines().take(5).map(|l| format!("{l}\n")).collect();
    std::fs::write(dir.join("network.tsv"), cut).unwrap();

    let out = soi(&["stats", "--data", dir.to_str().unwrap()]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(stderr(&out).contains("network.tsv"), "{}", stderr(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_writes_trace_and_stats_artifacts() {
    let dir = std::env::temp_dir().join(format!("soi_cli_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let queries = dir.join("queries.tsv");
    std::fs::write(&queries, "shop\t5\nfood\t3\n").unwrap();
    let trace = dir.join("trace.json");
    let stats = dir.join("stats.json");

    let out = soi(&[
        "batch",
        queries.to_str().unwrap(),
        "--data",
        dataset_dir(),
        "--trace-out",
        trace.to_str().unwrap(),
        "--stats-json",
        stats.to_str().unwrap(),
        "--log-json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // --log-json turns every stderr event into a JSON line; each line must
    // be a standalone valid JSON object.
    let err = stderr(&out);
    let mut events = 0;
    for line in err.lines().filter(|l| l.starts_with('{')) {
        let doc = soi_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("stderr line is not valid JSON ({e}): {line}"));
        assert!(doc.get("event").is_some(), "log line lacks event: {line}");
        events += 1;
    }
    assert!(events > 0, "no JSON log lines in stderr: {err}");
    let batch_done = err
        .lines()
        .find(|l| l.contains("\"event\":\"batch.done\""))
        .unwrap_or_else(|| panic!("no batch.done JSON event in stderr: {err}"));
    assert!(batch_done.starts_with('{'), "not a JSON line: {batch_done}");
    assert!(batch_done.contains("\"queries\":2"), "{batch_done}");

    // The trace covers the whole command (cli.batch span) and the engine's
    // per-query spans.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.contains("\"cli.batch\""), "{trace_text}");
    assert!(trace_text.contains("\"engine.query\""), "{trace_text}");
    assert!(trace_text.contains("\"soi.query\""), "{trace_text}");

    // The stats file records the batch telemetry.
    let stats_text = std::fs::read_to_string(&stats).unwrap();
    assert!(stats_text.contains("\"queries\":2"), "{stats_text}");
    assert!(stats_text.contains("\"p50_ms\""), "{stats_text}");

    // check-artifacts accepts both files.
    let check = soi(&[
        "check-artifacts",
        "--trace",
        trace.to_str().unwrap(),
        "--stats",
        stats.to_str().unwrap(),
    ]);
    assert!(check.status.success(), "{}", stderr(&check));
    let text = stdout(&check);
    assert!(text.contains("trace ok"), "{text}");
    assert!(text.contains("stats ok: "), "{text}");
    assert!(text.contains("(2 queries)"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_out_writes_validating_artifacts() {
    let dir = std::env::temp_dir().join(format!("soi_cli_prof_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let queries = dir.join("queries.tsv");
    // Enough repeated work for a 900 Hz sampler to land on real stacks.
    let mut lines = String::new();
    for _ in 0..40 {
        lines.push_str("shop,food\t5\t0.002\n");
    }
    std::fs::write(&queries, lines).unwrap();
    let profile = dir.join("profile.json");

    let out = soi(&[
        "batch",
        queries.to_str().unwrap(),
        "--data",
        dataset_dir(),
        "--profile-out",
        profile.to_str().unwrap(),
        "--profile-hz",
        "900",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // All three artifacts exist; the folded text resolves the span
    // taxonomy below soi.query, and the SVG is a standalone flamegraph.
    let json_text = std::fs::read_to_string(&profile).unwrap();
    assert!(json_text.contains("\"profile\""), "{json_text}");
    let folded = std::fs::read_to_string(dir.join("profile.json.folded")).unwrap();
    assert!(
        folded.contains("soi.query;"),
        "no frame below soi.query:\n{folded}"
    );
    let svg = std::fs::read_to_string(dir.join("profile.json.svg")).unwrap();
    assert!(svg.starts_with("<svg") || svg.contains("<svg"), "{svg}");

    // check-artifacts validates the JSON artifact.
    let check = soi(&["check-artifacts", "--profile", profile.to_str().unwrap()]);
    assert!(check.status.success(), "{}", stderr(&check));
    assert!(stdout(&check).contains("profile ok"), "{}", stdout(&check));

    // A bad rate is a usage error (exit 2), not a panic.
    let bad = soi(&[
        "query",
        "--data",
        dataset_dir(),
        "--keywords",
        "shop",
        "--profile-out",
        profile.to_str().unwrap(),
        "--profile-hz",
        "0",
    ]);
    assert_eq!(bad.status.code(), Some(2), "{}", stderr(&bad));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_prints_prometheus_text() {
    let out = soi(&["metrics", "--data", dataset_dir(), "--keywords", "shop"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Mandatory series, fully formed exposition.
    assert!(
        text.contains("# TYPE soi_query_latency_seconds histogram"),
        "{text}"
    );
    assert!(text.contains("soi_query_latency_seconds_count 1"), "{text}");
    assert!(
        text.contains("# TYPE soi_epsilon_cache_hits_total counter"),
        "{text}"
    );
    // The workload performs one ε-map miss then one hit.
    assert!(text.contains("soi_epsilon_cache_hits_total 1"), "{text}");
    assert!(text.contains("soi_epsilon_cache_misses_total 1"), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");

    // Without --data the series still appear, at zero.
    let bare = soi(&["metrics"]);
    assert!(bare.status.success(), "{}", stderr(&bare));
    let bare_text = stdout(&bare);
    assert!(
        bare_text.contains("soi_query_latency_seconds_count 0"),
        "{bare_text}"
    );
    assert!(
        bare_text.contains("soi_epsilon_cache_hits_total 0"),
        "{bare_text}"
    );
}

#[test]
fn explain_prints_converged_bound_table_and_writes_artifact() {
    let dir = std::env::temp_dir().join(format!("soi_cli_explain_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = dir.join("explain.json");

    let out = soi(&[
        "explain",
        "--data",
        dataset_dir(),
        "--keywords",
        "shop",
        "--k",
        "5",
        "--describe",
        "--json",
        artifact.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("k-SOI explain: k=5"), "{text}");
    assert!(text.contains("bound convergence"), "{text}");
    assert!(text.contains("memory: "), "{text}");
    assert!(text.contains("allocations"), "{text}");
    assert!(text.contains("describe explain for"), "{text}");

    // The printed termination line must show a converged UB <= LBk pair.
    let term = text
        .lines()
        .find(|l| l.starts_with("termination: UB"))
        .unwrap_or_else(|| panic!("no termination line: {text}"));
    let nums: Vec<f64> = term
        .split_whitespace()
        .filter_map(|w| w.parse::<f64>().ok())
        .collect();
    assert!(nums.len() >= 2, "termination line lacks bounds: {term}");
    assert!(nums[0] <= nums[1] + 1e-9, "UB > LBk in: {term}");

    // The JSON artifact parses, converged, and validates via check-artifacts.
    let doc = soi_obs::json::parse(&std::fs::read_to_string(&artifact).unwrap()).unwrap();
    let soi_section = doc.get("soi").expect("soi section");
    assert_eq!(
        soi_section
            .get("termination")
            .and_then(|t| t.get("converged")),
        Some(&soi_obs::json::Json::Bool(true))
    );
    assert!(!soi_section
        .get("rows")
        .and_then(soi_obs::json::Json::as_arr)
        .expect("rows array")
        .is_empty());
    assert!(doc.get("describe").is_some(), "describe section missing");
    assert!(
        doc.get("alloc")
            .and_then(|a| a.get("peak_bytes"))
            .and_then(soi_obs::json::Json::as_f64)
            .is_some_and(|b| b > 0.0),
        "alloc.peak_bytes missing or zero"
    );

    let check = soi(&["check-artifacts", "--explain", artifact.to_str().unwrap()]);
    assert!(check.status.success(), "{}", stderr(&check));
    assert!(stdout(&check).contains("explain ok"), "{}", stdout(&check));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_artifacts_rejects_unconverged_explain() {
    let dir = std::env::temp_dir().join(format!("soi_cli_badexp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("explain.json");
    // A trajectory whose recorded termination never reached UB <= LBk.
    std::fs::write(
        &bad,
        "{\"soi\":{\"rows\":[{\"access\":1,\"ub\":9.0,\"lbk\":1.0}],\
         \"termination\":{\"accesses\":1,\"ub\":9.0,\"lbk\":1.0,\"converged\":false}}}",
    )
    .unwrap();
    let out = soi(&["check-artifacts", "--explain", bad.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("converge"), "{}", stderr(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_exposes_allocation_series() {
    let out = soi(&["metrics", "--data", dataset_dir(), "--keywords", "shop"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Per-query engine allocation histograms carry the one-query workload.
    assert!(
        text.contains("# TYPE soi_engine_query_allocations histogram"),
        "{text}"
    );
    assert!(
        text.contains("soi_engine_query_allocations_count 1"),
        "{text}"
    );
    assert!(
        text.contains("soi_engine_query_alloc_peak_bytes_count 1"),
        "{text}"
    );
    // Index-build gauges record the build's process-wide deltas.
    assert!(text.contains("soi_index_build_alloc_bytes"), "{text}");
    // Process-wide allocator gauges are exported by the final publish.
    assert!(text.contains("soi_alloc_live_bytes"), "{text}");
    assert!(text.contains("soi_alloc_peak_bytes"), "{text}");
}

#[test]
fn batch_reports_per_query_errors_without_aborting() {
    let dir = std::env::temp_dir().join(format!("soi_cli_batcherr_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let queries = dir.join("queries.tsv");
    // Line 2 has an unparsable k: the batch must still run lines 1 and 3
    // and report the failure against its input slot.
    std::fs::write(&queries, "shop\t5\nfood\tnot-a-number\nfood\t3\n").unwrap();
    let stats = dir.join("stats.json");

    let out = soi(&[
        "batch",
        queries.to_str().unwrap(),
        "--data",
        dataset_dir(),
        "--stats-json",
        stats.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("query 2: parse error:"),
        "bad line not reported: {text}"
    );
    assert!(text.contains("invalid k"), "{text}");
    assert!(text.contains("query 1: k=5"), "good line 1 skipped: {text}");
    assert!(text.contains("query 3: k=3"), "good line 3 skipped: {text}");

    // The stats artifact carries the categorized error record at the
    // 0-based input slot, and still validates.
    let stats_text = std::fs::read_to_string(&stats).unwrap();
    assert!(stats_text.contains("\"error_records\""), "{stats_text}");
    assert!(stats_text.contains("\"index\":1"), "{stats_text}");
    assert!(stats_text.contains("\"stage\":\"parse\""), "{stats_text}");
    assert!(stats_text.contains("\"queries\":2"), "{stats_text}");
    let check = soi(&["check-artifacts", "--stats", stats.to_str().unwrap()]);
    assert!(check.status.success(), "{}", stderr(&check));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_with_all_lines_bad_fails_with_count() {
    let dir = std::env::temp_dir().join(format!("soi_cli_batchall_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let queries = dir.join("queries.tsv");
    std::fs::write(&queries, "\t\nshop\tNaN-k\n").unwrap();
    let out = soi(&["batch", queries.to_str().unwrap(), "--data", dataset_dir()]);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(
        stderr(&out).contains("every query line failed"),
        "{}",
        stderr(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_drains_gracefully_on_sigterm() {
    use std::io::BufRead;

    let dir = std::env::temp_dir().join(format!("soi_cli_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stats = dir.join("serve.json");
    let mut child = Command::new(env!("CARGO_BIN_EXE_soi"))
        .args([
            "serve",
            "--data",
            dataset_dir(),
            "--addr",
            "127.0.0.1:0",
            "--stats-json",
            stats.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");

    // Scrape the bound address from the ready line (port 0 picks a port).
    let out = child.stdout.take().expect("stdout piped");
    let (tx, rx) = std::sync::mpsc::channel();
    let reader = std::thread::spawn(move || {
        for line in std::io::BufReader::new(out).lines() {
            let Ok(line) = line else { break };
            if let Some(addr) = line.strip_prefix("listening on ") {
                let _ = tx.send(addr.trim().to_string());
            }
        }
    });
    let addr: std::net::SocketAddr = rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("serve printed its ready line")
        .parse()
        .expect("ready line carries an address");

    // Real traffic over the socket before the signal.
    let timeout = std::time::Duration::from_secs(10);
    let status = soi_serve::client::request(addr, "GET", "/status", None, timeout).expect("status");
    assert_eq!(status.status, 200, "body: {}", status.body);
    let soi_resp = soi_serve::client::request(
        addr,
        "POST",
        "/soi",
        Some("{\"keywords\":[\"shop\"],\"k\":3,\"deadline_ms\":5000}"),
        timeout,
    )
    .expect("soi");
    assert_eq!(soi_resp.status, 200, "body: {}", soi_resp.body);

    // bench-serve drives the live server and writes its own artifact.
    let bench_stats = dir.join("bench.json");
    let bench = soi(&[
        "bench-serve",
        "--addr",
        &addr.to_string(),
        "--keywords",
        "shop",
        "--requests",
        "8",
        "--concurrency",
        "2",
        "--stats-json",
        bench_stats.to_str().unwrap(),
    ]);
    assert!(bench.status.success(), "{}", stderr(&bench));
    let bench_text = std::fs::read_to_string(&bench_stats).unwrap();
    assert!(bench_text.contains("\"requests\":8"), "{bench_text}");
    assert!(bench_text.contains("\"p99_ms\""), "{bench_text}");

    // SIGTERM must drain and exit 0 with the report flushed to disk.
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .output()
        .expect("kill runs");
    assert!(kill.status.success());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let status = loop {
        match child.try_wait().expect("wait works") {
            Some(status) => break status,
            None if std::time::Instant::now() > deadline => {
                let _ = child.kill();
                panic!("serve did not exit within 60s of SIGTERM");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    };
    reader.join().expect("reader joins");
    assert!(status.success(), "serve exited nonzero: {status:?}");

    let report = std::fs::read_to_string(&stats).expect("stats artifact written");
    assert!(report.contains("\"drained\":true"), "{report}");
    assert!(!report.contains("\"requests\":0"), "{report}");
    assert!(report.contains("\"panics\":0"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_artifacts_rejects_garbage() {
    let dir = std::env::temp_dir().join(format!("soi_cli_badart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"traceEvents\": 7}").unwrap();
    let out = soi(&["check-artifacts", "--trace", bad.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("traceEvents"), "{}", stderr(&out));
    // No file at all is a usage error.
    let none = soi(&["check-artifacts"]);
    assert_eq!(code(&none), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_strict_exits_3_lenient_rebuilds() {
    let cache = std::env::temp_dir().join(format!("soi_cli_snapcache_{}", std::process::id()));
    let run = |extra: &[&str]| {
        let mut args = vec![
            "query",
            "--data",
            dataset_dir(),
            "--keywords",
            "shop",
            "--k",
            "5",
            "--index-cache",
            cache.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        soi(&args)
    };

    // Cold run builds the bundle and persists the snapshot.
    let cold = run(&[]);
    assert!(cold.status.success(), "{}", stderr(&cold));
    let snap = std::fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "soisnap"))
        .expect("cache dir holds a snapshot");

    // Warm run hits the snapshot and prints the same ranked table.
    let warm = run(&[]);
    assert!(warm.status.success(), "{}", stderr(&warm));
    assert_eq!(stdout(&cold), stdout(&warm));

    // Storage bitrot: flip one payload byte in place.
    let mut bytes = std::fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&snap, &bytes).unwrap();

    // Strict mode refuses with the corrupt-data exit code, naming the file.
    let strict = run(&["--index-cache-mode", "strict"]);
    assert_eq!(code(&strict), 3, "{}", stderr(&strict));
    assert!(
        stderr(&strict).contains(".soisnap"),
        "error names the snapshot: {}",
        stderr(&strict)
    );

    // Lenient (default) mode rebuilds transparently: same results, and the
    // rewritten snapshot hits on the next run.
    let lenient = run(&[]);
    assert!(lenient.status.success(), "{}", stderr(&lenient));
    assert_eq!(stdout(&cold), stdout(&lenient));

    std::fs::remove_dir_all(&cache).ok();
}
