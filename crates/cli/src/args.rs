//! Minimal command-line argument parsing (no external dependencies).

use soi_common::{Result, SoiError};
use std::collections::BTreeMap;

/// Options that are boolean flags: they take no value, and their presence
/// means `true`. Every other `--key` consumes the next argument.
const BOOL_FLAGS: &[&str] = &["log-json", "describe", "with-ir"];

/// Parsed invocation: a subcommand, at most one positional argument, plus
/// `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// The optional positional argument (e.g. the queries file of `batch`).
    positional: Option<String>,
    /// `--key value` pairs.
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses an argument list (without the program name).
    ///
    /// Grammar: `<command> [positional] (--key value | --flag)*`. Every
    /// option takes a value except the boolean flags in [`BOOL_FLAGS`]
    /// (e.g. `--log-json`); at most one positional argument is accepted.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args> {
        let mut it = args.into_iter();
        let command = it
            .next()
            .ok_or_else(|| SoiError::invalid("missing subcommand; try `soi help`"))?;
        let mut positional = None;
        let mut options = BTreeMap::new();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                if positional.is_some() {
                    return Err(SoiError::invalid(format!(
                        "unexpected extra positional argument {key:?}"
                    )));
                }
                positional = Some(key);
                continue;
            };
            let value = if BOOL_FLAGS.contains(&name) {
                "true".to_string()
            } else {
                it.next()
                    .ok_or_else(|| SoiError::invalid(format!("option --{name} needs a value")))?
            };
            if options.insert(name.to_string(), value).is_some() {
                return Err(SoiError::invalid(format!("option --{name} given twice")));
            }
        }
        Ok(Args {
            command,
            positional,
            options,
        })
    }

    /// The positional argument, if one was given.
    pub fn positional(&self) -> Option<&str> {
        self.positional.as_deref()
    }

    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| SoiError::invalid(format!("missing required option --{name}")))
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether a boolean flag (see [`BOOL_FLAGS`]) was given.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// An optional parsed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.options.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<T>().map_err(|_| {
                SoiError::invalid(format!("option --{name} has invalid value {raw:?}"))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["query", "--k", "10", "--keywords", "shop,food"]).unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.require("k").unwrap(), "10");
        assert_eq!(a.get("keywords"), Some("shop,food"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.get_parsed("k", 0usize).unwrap(), 10);
        assert_eq!(a.get_parsed("eps", 0.5f64).unwrap(), 0.5);
    }

    #[test]
    fn accepts_one_positional() {
        let a = parse(&["batch", "queries.tsv", "--data", "d"]).unwrap();
        assert_eq!(a.command, "batch");
        assert_eq!(a.positional(), Some("queries.tsv"));
        assert_eq!(a.require("data").unwrap(), "d");
        assert_eq!(parse(&["stats"]).unwrap().positional(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["query", "one", "two"]).is_err());
        assert!(parse(&["query", "--k"]).is_err());
        assert!(parse(&["query", "--k", "1", "--k", "2"]).is_err());
        assert!(parse(&["query", "--k", "x"])
            .unwrap()
            .get_parsed("k", 0usize)
            .is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        // `--log-json` must not swallow the next token.
        let a = parse(&["batch", "--log-json", "queries.tsv", "--data", "d"]).unwrap();
        assert!(a.flag("log-json"));
        assert_eq!(a.positional(), Some("queries.tsv"));
        assert_eq!(a.require("data").unwrap(), "d");
        let b = parse(&["stats", "--data", "d"]).unwrap();
        assert!(!b.flag("log-json"));
        // Trailing position works too.
        assert!(parse(&["stats", "--data", "d", "--log-json"])
            .unwrap()
            .flag("log-json"));
        // Duplicates remain rejected.
        assert!(parse(&["stats", "--log-json", "--log-json"]).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&["stats"]).unwrap();
        assert!(a.require("data").is_err());
    }
}
