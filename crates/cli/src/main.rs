//! `soi` — command-line interface to the streets-of-interest library.
//!
//! ```text
//! soi generate --city london --scale 0.05 --out data/london
//! soi stats    --data data/london
//! soi query    --data data/london --keywords shop --k 10
//! soi batch    queries.tsv --data data/london --threads 4
//! soi describe --data data/london --keywords shop --photos 5
//! soi route    --data data/london --keywords food --k 8
//! ```

// The CLI must always exit with a structured error, never a panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod args;

use std::io::Write;

use args::Args;
use soi_common::{Result, ResultExt, SoiError};
use soi_core::describe::{st_rel_div, ContextBuilder, DescribeParams, PhiSource};
use soi_core::route::{improve_route_2opt, route_length, sketch_route};
use soi_core::soi::{run_baseline, run_soi, SoiConfig, SoiOutcome, SoiQuery, StreetAggregate};
use soi_data::Dataset;
use soi_engine::{QueryContext, QueryEngine};
use soi_index::{IrTree, PhotoGrid, PoiIndex};
use soi_network::NetworkStats;
use soi_obs::log::{self, LogMode, Value};
use soi_obs::names::{phases, spans};
use soi_obs::{json, trace};

const DEFAULT_EPS: f64 = 0.0005;
const DEFAULT_RHO: f64 = 0.0001;
const POI_CELL: f64 = 2.0 * DEFAULT_EPS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(args) {
        // A closed stdout (e.g. `soi query ... | head`) is not a failure of
        // the command itself: stop writing and exit cleanly, like cat(1).
        if e.is_broken_pipe() {
            return;
        }
        eprintln!("error: {e}");
        std::process::exit(e.category().exit_code());
    }
}

fn run(raw: Vec<String>) -> Result<()> {
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" {
        return print_help();
    }
    let args = Args::parse(raw)?;

    // Observability plumbing shared by every subcommand: `--log-json`
    // switches stderr events to JSON lines (the SOI_LOG env var applies
    // otherwise), and `--trace-out FILE` records a Chrome trace of the
    // whole invocation.
    if args.flag("log-json") {
        log::set_mode(LogMode::Json);
    } else {
        log::init_from_env();
    }
    let trace_out = args.get("trace-out").map(str::to_string);
    if trace_out.is_some() {
        trace::set_enabled(true);
    }

    let result = {
        // One span covering the whole command, so the trace accounts for
        // (nearly) the entire process wall time.
        let _cmd_span = trace::span(command_span_name(&args.command));
        dispatch(&args)
    };
    match trace_out {
        None => result,
        // Write the trace even when the command failed — a trace of a slow
        // run that ultimately errored is still useful — but let the
        // command's own error take precedence.
        Some(path) => {
            let written = write_trace(&path);
            result.and(written)
        }
    }
}

fn dispatch(args: &Args) -> Result<()> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "stats" => cmd_stats(args),
        "query" => cmd_query(args),
        "batch" => cmd_batch(args),
        "describe" => cmd_describe(args),
        "route" => cmd_route(args),
        "export" => cmd_export(args),
        "poi" => cmd_poi(args),
        "metrics" => cmd_metrics(args),
        "check-artifacts" => cmd_check_artifacts(args),
        other => Err(SoiError::invalid(format!(
            "unknown command {other:?}; try `soi help`"
        ))),
    }
}

/// The static span name of a subcommand (span names are `&'static str`,
/// so the known commands are enumerated rather than formatted).
fn command_span_name(command: &str) -> &'static str {
    match command {
        "generate" => "cli.generate",
        "stats" => "cli.stats",
        "query" => "cli.query",
        "batch" => "cli.batch",
        "describe" => "cli.describe",
        "route" => "cli.route",
        "export" => "cli.export",
        "poi" => "cli.poi",
        "metrics" => "cli.metrics",
        "check-artifacts" => "cli.check_artifacts",
        _ => "cli.command",
    }
}

/// Drains the recorded trace events and writes them as Chrome
/// `trace_event` JSON (load via `chrome://tracing` or Perfetto).
fn write_trace(path: &str) -> Result<()> {
    trace::set_enabled(false);
    let events = trace::take_events();
    let doc = trace::chrome_trace_json(&events);
    std::fs::write(path, doc).at_path(path)?;
    log::event(
        "cli.trace",
        &format!("wrote trace to {path}"),
        &[
            ("events", Value::U64(events.len() as u64)),
            ("dropped", Value::U64(trace::dropped_events())),
        ],
    );
    Ok(())
}

fn print_help() -> Result<()> {
    let mut out = std::io::stdout().lock();
    writeln!(
        out,
        "soi — identify and describe Streets of Interest (EDBT 2016)\n\n\
         USAGE: soi <command> [--option value]...\n\n\
         COMMANDS\n\
         generate  --city london|berlin|vienna --out DIR [--scale 0.05] [--seed N]\n\
         \u{20}          Generate a synthetic city dataset and save it.\n\
         stats     --data DIR\n\
         \u{20}          Print dataset statistics (paper Table 1 columns).\n\
         query     --data DIR --keywords w1,w2 [--k 10] [--eps 0.0005] [--algo soi|bl]\n\
         \u{20}          Run a k-SOI query and print the ranked streets.\n\
         batch     FILE.tsv --data DIR [--threads N] [--eps 0.0005]\n\
         \u{20}          Run a file of k-SOI queries through the multi-threaded\n\
         \u{20}          engine (one query per line: keywords<TAB>k[<TAB>eps]).\n\
         describe  --data DIR --keywords w1,w2 [--photos 5] [--lambda 0.5] [--w 0.5]\n\
         \u{20}          [--rho 0.0001] [--street NAME]\n\
         \u{20}          Select a diversified photo summary for the top street\n\
         \u{20}          (or a named street).\n\
         route     --data DIR --keywords w1,w2 [--k 8] [--eps 0.0005]\n\
         \u{20}          Sketch an exploration route over the top-k streets.\n\
         export    --data DIR --keywords w1,w2 --out FILE.geojson [--k 10]\n\
         \u{20}          [--photos 5] Export the top-k streets (and a photo\n\
         \u{20}          summary of the winner) as GeoJSON for any web map.\n\
         poi       --data DIR --keywords w1,w2 --at X,Y [--k 5] [--match any|all]\n\
         \u{20}          Single-POI retrieval: the k nearest POIs matching the\n\
         \u{20}          keywords (hybrid spatio-textual R-tree).\n\
         metrics   [--data DIR] [--keywords w1,w2] [--eps 0.0005]\n\
         \u{20}          Print process metrics in Prometheus text format (with\n\
         \u{20}          --data, first runs a small workload to populate them).\n\
         check-artifacts [--trace FILE.json] [--stats FILE.json]\n\
         \u{20}          Validate observability artifacts: a Chrome trace from\n\
         \u{20}          --trace-out and/or a telemetry file from --stats-json.\n\n\
         OBSERVABILITY (any command)\n\
         --trace-out FILE   Record a Chrome trace_event JSON file of the run\n\
         \u{20}                  (open in chrome://tracing or ui.perfetto.dev).\n\
         --log-json         Emit stderr events as JSON lines (also SOI_LOG=json).\n\
         batch also accepts --stats-json FILE to dump engine telemetry\n\
         (latency percentiles, work counters, \u{3b5}-cache hits) as JSON."
    )?;
    Ok(())
}

fn load(args: &Args) -> Result<Dataset> {
    let _span = trace::span(spans::CLI_LOAD);
    soi_data::io::load_dataset(args.require("data")?)
}

fn parse_keywords(dataset: &Dataset, args: &Args) -> Result<soi_text::KeywordSet> {
    let raw = args.require("keywords")?;
    let words: Vec<&str> = raw
        .split(',')
        .map(str::trim)
        .filter(|w| !w.is_empty())
        .collect();
    if words.is_empty() {
        return Err(SoiError::invalid(
            "--keywords must name at least one keyword",
        ));
    }
    let set = dataset.query_keywords(&words);
    if set.is_empty() {
        log::event(
            "cli.keywords",
            "note: none of the keywords occur in this dataset",
            &[("keywords", Value::Str(raw))],
        );
    }
    Ok(set)
}

fn cmd_generate(args: &Args) -> Result<()> {
    let city = args.require("city")?;
    let out = args.require("out")?;
    let scale: f64 = args.get_parsed("scale", 0.05)?;
    let mut config = match city {
        "london" => soi_datagen::london(scale),
        "berlin" => soi_datagen::berlin(scale),
        "vienna" => soi_datagen::vienna(scale),
        other => {
            return Err(SoiError::invalid(format!(
                "unknown city {other:?} (expected london, berlin, or vienna)"
            )))
        }
    };
    if let Some(seed) = args.get("seed") {
        config.seed = seed
            .parse()
            .map_err(|_| SoiError::invalid("--seed must be an integer"))?;
    }
    log::event(
        "cli.generate",
        &format!("generating {} at scale {scale}", config.name),
        &[
            ("city", Value::Str(&config.name)),
            ("scale", Value::F64(scale)),
            ("pois", Value::U64(config.n_pois as u64)),
            ("photos", Value::U64(config.n_photos as u64)),
        ],
    );
    let (dataset, truth) = soi_datagen::generate(&config);
    soi_data::io::save_dataset(&dataset, out)?;
    let mut stdout = std::io::stdout().lock();
    writeln!(
        stdout,
        "wrote {} to {out}: {} segments, {} streets, {} POIs, {} photos",
        dataset.name,
        dataset.network.num_segments(),
        dataset.network.num_streets(),
        dataset.pois.len(),
        dataset.photos.len()
    )?;
    for (category, streets) in &truth.destinations {
        let names: Vec<&str> = streets
            .iter()
            .map(|&s| dataset.network.street(s).name.as_str())
            .collect();
        writeln!(
            stdout,
            "planted {category} destinations: {}",
            names.join(", ")
        )?;
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let stats = NetworkStats::of(&dataset.network);
    let mut out = std::io::stdout().lock();
    writeln!(out, "dataset: {}", dataset.name)?;
    writeln!(out, "{stats}")?;
    writeln!(out, "POIs:     {}", dataset.pois.len())?;
    writeln!(out, "photos:   {}", dataset.photos.len())?;
    writeln!(out, "keywords: {}", dataset.vocab.len())?;
    Ok(())
}

fn print_outcome(dataset: &Dataset, outcome: &SoiOutcome) -> Result<()> {
    let mut out = std::io::stdout().lock();
    writeln!(out, "rank  interest      mass  street")?;
    for (i, r) in outcome.results.iter().enumerate() {
        writeln!(
            out,
            "{:>4}  {:>12.1}  {:>6.1}  {}",
            i + 1,
            r.interest,
            r.best_segment_mass,
            dataset.network.street(r.street).name
        )?;
    }
    let t = &outcome.stats.timer;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    log::event(
        "query.done",
        "query done",
        &[
            ("results", Value::U64(outcome.results.len() as u64)),
            ("total_ms", Value::F64(ms(t.total()))),
            (
                "construction_ms",
                Value::F64(ms(t.duration(phases::CONSTRUCTION))),
            ),
            (
                "filtering_ms",
                Value::F64(ms(t.duration(phases::FILTERING))),
            ),
            (
                "refinement_ms",
                Value::F64(ms(t.duration(phases::REFINEMENT))),
            ),
        ],
    );
    Ok(())
}

fn cmd_query(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let keywords = parse_keywords(&dataset, args)?;
    let k: usize = args.get_parsed("k", 10)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let query = SoiQuery::new(keywords, k, eps)?;
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);
    let outcome = match args.get("algo").unwrap_or("soi") {
        "soi" => run_soi(
            &dataset.network,
            &dataset.pois,
            &index,
            &query,
            &SoiConfig::default(),
        )?,
        "bl" => run_baseline(
            &dataset.network,
            &dataset.pois,
            &index,
            &query,
            StreetAggregate::Max,
        ),
        other => return Err(SoiError::invalid(format!("unknown --algo {other:?}"))),
    };
    print_outcome(&dataset, &outcome)
}

/// Parses one query file line (`keywords<TAB>k[<TAB>eps]`) into a query.
fn parse_batch_line(
    dataset: &Dataset,
    lineno: usize,
    line: &str,
    default_eps: f64,
) -> Result<SoiQuery> {
    let invalid = |what: &str| SoiError::invalid(format!("queries line {lineno}: {what}"));
    let mut fields = line.split('\t');
    let raw_kws = fields.next().unwrap_or("");
    let words: Vec<&str> = raw_kws
        .split(',')
        .map(str::trim)
        .filter(|w| !w.is_empty())
        .collect();
    if words.is_empty() {
        return Err(invalid("missing keywords"));
    }
    let k: usize = match fields.next() {
        None => 10,
        Some(raw) => raw
            .trim()
            .parse()
            .map_err(|_| invalid(&format!("invalid k {raw:?}")))?,
    };
    let eps: f64 = match fields.next() {
        None => default_eps,
        Some(raw) => raw
            .trim()
            .parse()
            .map_err(|_| invalid(&format!("invalid eps {raw:?}")))?,
    };
    if let Some(extra) = fields.next() {
        return Err(invalid(&format!("unexpected extra field {extra:?}")));
    }
    SoiQuery::new(dataset.query_keywords(&words), k, eps)
        .map_err(|e| invalid(&format!("invalid query ({e})")))
}

fn cmd_batch(args: &Args) -> Result<()> {
    let path = args
        .positional()
        .or(args.get("queries"))
        .ok_or_else(|| SoiError::invalid("batch needs a queries file: soi batch FILE.tsv"))?;
    let dataset = load(args)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let threads: usize = args.get_parsed("threads", 0)?;

    let text = std::fs::read_to_string(path).at_path(path)?;
    let mut queries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        queries.push(parse_batch_line(&dataset, i + 1, line, eps)?);
    }
    if queries.is_empty() {
        return Err(SoiError::invalid(format!("{path}: no queries found")));
    }

    let index = PoiIndex::build_with_threads(&dataset.network, &dataset.pois, 2.0 * eps, threads);
    let engine = QueryEngine::new(threads);
    let ctx = std::sync::Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
    let batch = engine.run_soi_batch(&ctx, &queries);

    let mut out = std::io::stdout().lock();
    for (i, (query, result)) in queries.iter().zip(&batch.results).enumerate() {
        match result {
            Ok(outcome) => {
                writeln!(
                    out,
                    "query {}: k={} -> {} streets",
                    i + 1,
                    query.k,
                    outcome.results.len()
                )?;
                for (rank, r) in outcome.results.iter().enumerate() {
                    writeln!(
                        out,
                        "  {:>3}. {:>10.1}  {}",
                        rank + 1,
                        r.interest,
                        dataset.network.street(r.street).name
                    )?;
                }
            }
            Err(e) => writeln!(out, "query {}: error: {e}", i + 1)?,
        }
    }
    if let Some(stats_path) = args.get("stats-json") {
        std::fs::write(stats_path, batch.telemetry.to_json()).at_path(stats_path)?;
    }
    let s = &batch.stats;
    log::event(
        "batch.done",
        "batch done",
        &[
            ("queries", Value::U64(s.queries as u64)),
            ("threads", Value::U64(s.threads as u64)),
            ("wall_ms", Value::F64(s.wall_time.as_secs_f64() * 1e3)),
            ("queries_per_second", Value::F64(s.queries_per_second())),
            ("errors", Value::U64(s.errors as u64)),
        ],
    );
    Ok(())
}

fn top_street(
    dataset: &Dataset,
    index: &PoiIndex,
    keywords: soi_text::KeywordSet,
    eps: f64,
) -> Result<soi_common::StreetId> {
    let query = SoiQuery::new(keywords, 1, eps)?;
    let out = run_soi(
        &dataset.network,
        &dataset.pois,
        index,
        &query,
        &SoiConfig::default(),
    )?;
    out.results
        .first()
        .map(|r| r.street)
        .ok_or_else(|| SoiError::not_found("no street matches the query keywords"))
}

fn cmd_describe(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let rho: f64 = args.get_parsed("rho", DEFAULT_RHO)?;
    let k: usize = args.get_parsed("photos", 5)?;
    let lambda: f64 = args.get_parsed("lambda", 0.5)?;
    let w: f64 = args.get_parsed("w", 0.5)?;

    let street = match args.get("street") {
        Some(name) => dataset
            .street_by_name(name)
            .ok_or_else(|| SoiError::not_found(format!("street {name:?}")))?,
        None => {
            let keywords = parse_keywords(&dataset, args)?;
            let index = PoiIndex::build(&dataset.network, &dataset.pois, POI_CELL);
            top_street(&dataset, &index, keywords, eps)?
        }
    };

    let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, POI_CELL);
    let ctx = ContextBuilder {
        network: &dataset.network,
        photos: &dataset.photos,
        photo_grid: &photo_grid,
        pois: Some(&dataset.pois),
        eps,
        rho,
        phi_source: PhiSource::Photos,
    }
    .build(street)?;
    let params = DescribeParams::new(k, lambda, w)?;
    let out = st_rel_div(&ctx, &dataset.photos, &params)?;

    let mut stdout = std::io::stdout().lock();
    writeln!(
        stdout,
        "street: {} ({} photos within ε)",
        dataset.network.street(street).name,
        ctx.members.len()
    )?;
    writeln!(
        stdout,
        "summary of {} photos (F = {:.4}):",
        out.selected.len(),
        out.objective
    )?;
    for &pid in &out.selected {
        let photo = dataset.photos.get(pid);
        let tags: Vec<&str> = photo
            .tags
            .iter()
            .filter_map(|t| dataset.vocab.term(t))
            .collect();
        writeln!(
            stdout,
            "  photo #{} at ({:.5}, {:.5}) tags: {}",
            pid.raw(),
            photo.pos.x,
            photo.pos.y,
            tags.join(", ")
        )?;
    }
    Ok(())
}

fn cmd_export(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let out = args.require("out")?;
    let keywords = parse_keywords(&dataset, args)?;
    let k: usize = args.get_parsed("k", 10)?;
    let n_photos: usize = args.get_parsed("photos", 5)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;

    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);
    let query = SoiQuery::new(keywords, k, eps)?;
    let outcome = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )?;
    let ranked: Vec<(soi_common::StreetId, f64)> = outcome
        .results
        .iter()
        .map(|r| (r.street, r.interest))
        .collect();
    let streets_doc = soi_data::geojson::ranked_streets_to_geojson(&dataset.network, &ranked);
    std::fs::write(out, &streets_doc).at_path(out)?;
    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "wrote {} streets to {out}", ranked.len())?;

    if let Some(&(top, _)) = ranked.first() {
        let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, POI_CELL);
        let ctx = ContextBuilder {
            network: &dataset.network,
            photos: &dataset.photos,
            photo_grid: &photo_grid,
            pois: Some(&dataset.pois),
            eps,
            rho: DEFAULT_RHO,
            phi_source: PhiSource::Photos,
        }
        .build(top)?;
        if !ctx.members.is_empty() {
            let params = DescribeParams::new(n_photos, 0.5, 0.5)?;
            let summary = st_rel_div(&ctx, &dataset.photos, &params)?;
            let photo_doc = soi_data::geojson::photos_to_geojson(&dataset, &summary.selected);
            let photo_path = format!("{out}.photos.geojson");
            std::fs::write(&photo_path, &photo_doc).at_path(&photo_path)?;
            writeln!(
                stdout,
                "wrote {}-photo summary of {:?} to {photo_path}",
                summary.selected.len(),
                dataset.network.street(top).name
            )?;
        }
    }
    Ok(())
}

fn cmd_poi(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let keywords = parse_keywords(&dataset, args)?;
    let k: usize = args.get_parsed("k", 5)?;
    let at = args.require("at")?;
    let (x, y) = at
        .split_once(',')
        .and_then(|(a, b)| Some((a.trim().parse::<f64>().ok()?, b.trim().parse::<f64>().ok()?)))
        .ok_or_else(|| SoiError::invalid("--at must be X,Y coordinates"))?;
    let q = soi_geo::Point::new(x, y);

    let tree = IrTree::build(&dataset.pois);
    let hits = match args.get("match").unwrap_or("any") {
        "all" => tree.top_k_containing_all(q, &keywords, k),
        "any" => tree.top_k_relevant(q, &keywords, k),
        other => return Err(SoiError::invalid(format!("unknown --match {other:?}"))),
    };
    let mut out = std::io::stdout().lock();
    writeln!(out, "rank  distance    poi   keywords")?;
    for (i, (pid, dist)) in hits.iter().enumerate() {
        let poi = dataset.pois.get(*pid);
        let kws: Vec<&str> = poi
            .keywords
            .iter()
            .filter_map(|kw| dataset.vocab.term(kw))
            .collect();
        writeln!(
            out,
            "{:>4}  {:<10.6}  #{:<4} {}",
            i + 1,
            dist,
            pid.raw(),
            kws.join(", ")
        )?;
    }
    Ok(())
}

fn cmd_metrics(args: &Args) -> Result<()> {
    // Force-register every series so a gather before the first query still
    // exposes the full set (with zero values).
    soi_core::obs::register_metrics();
    soi_index::obs::register_metrics();
    if args.get("data").is_some() {
        // Populate the instruments with a small real workload: an index
        // build, two ε-map lookups (a miss then a hit), and — when
        // keywords are given — one k-SOI query.
        let dataset = load(args)?;
        let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
        let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);
        let _ = index.epsilon_maps(&dataset.network, eps);
        let _ = index.epsilon_maps(&dataset.network, eps);
        if args.get("keywords").is_some() {
            let keywords = parse_keywords(&dataset, args)?;
            let query = SoiQuery::new(keywords, 10, eps)?;
            run_soi(
                &dataset.network,
                &dataset.pois,
                &index,
                &query,
                &SoiConfig::default(),
            )?;
        }
    }
    let mut out = std::io::stdout().lock();
    out.write_all(soi_obs::metrics::gather().as_bytes())?;
    Ok(())
}

/// Validates a Chrome trace file written by `--trace-out`: well-formed
/// JSON with a non-empty `traceEvents` array whose events all carry the
/// fields the trace viewers require. Returns the event count.
fn check_trace_file(path: &str) -> Result<u64> {
    let text = std::fs::read_to_string(path).at_path(path)?;
    let bad = |what: &str| SoiError::invalid(format!("{path}: {what}"));
    let doc = json::parse(&text).map_err(|e| bad(&format!("not valid JSON ({e})")))?;
    let events = doc
        .get("traceEvents")
        .and_then(json::Json::as_arr)
        .ok_or_else(|| bad("missing traceEvents array"))?;
    if events.is_empty() {
        return Err(bad("traceEvents is empty"));
    }
    for (i, ev) in events.iter().enumerate() {
        let has_str = |k: &str| ev.get(k).and_then(json::Json::as_str).is_some();
        let has_num = |k: &str| ev.get(k).and_then(json::Json::as_f64).is_some();
        if !(has_str("name") && has_str("ph") && has_num("ts") && has_num("pid") && has_num("tid"))
        {
            return Err(bad(&format!(
                "traceEvents[{i}] is missing name/ph/ts/pid/tid"
            )));
        }
    }
    Ok(events.len() as u64)
}

/// Validates a telemetry file written by `batch --stats-json`. Returns
/// the query count.
fn check_stats_file(path: &str) -> Result<u64> {
    let text = std::fs::read_to_string(path).at_path(path)?;
    let bad = |what: &str| SoiError::invalid(format!("{path}: {what}"));
    let doc = json::parse(&text).map_err(|e| bad(&format!("not valid JSON ({e})")))?;
    let queries = doc
        .get("queries")
        .and_then(json::Json::as_f64)
        .ok_or_else(|| bad("missing numeric queries field"))?;
    for section in ["counters", "latency", "eps_cache"] {
        if doc.get(section).is_none() {
            return Err(bad(&format!("missing {section} object")));
        }
    }
    if doc.get("latency").and_then(|l| l.get("samples")).is_none() {
        return Err(bad("latency object is missing samples"));
    }
    Ok(queries as u64)
}

fn cmd_check_artifacts(args: &Args) -> Result<()> {
    let trace_path = args.get("trace");
    let stats_path = args.get("stats");
    if trace_path.is_none() && stats_path.is_none() {
        return Err(SoiError::invalid(
            "check-artifacts needs --trace FILE and/or --stats FILE",
        ));
    }
    let mut out = std::io::stdout().lock();
    if let Some(path) = trace_path {
        let events = check_trace_file(path)?;
        writeln!(out, "trace ok: {path} ({events} events)")?;
    }
    if let Some(path) = stats_path {
        let queries = check_stats_file(path)?;
        writeln!(out, "stats ok: {path} ({queries} queries)")?;
    }
    Ok(())
}

fn cmd_route(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let keywords = parse_keywords(&dataset, args)?;
    let k: usize = args.get_parsed("k", 8)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let query = SoiQuery::new(keywords, k, eps)?;
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);
    let out = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )?;
    let mut route = sketch_route(&dataset.network, &out.results);
    let greedy_len = route_length(&dataset.network, &route);
    let improved_len = improve_route_2opt(&dataset.network, &mut route);
    let mut stdout = std::io::stdout().lock();
    writeln!(
        stdout,
        "suggested exploration route ({} stops, {:.5}° walk{}):",
        route.len(),
        improved_len,
        if improved_len + 1e-12 < greedy_len {
            format!(", 2-opt saved {:.5}°", greedy_len - improved_len)
        } else {
            String::new()
        }
    )?;
    for (i, street) in route.iter().enumerate() {
        let interest = out
            .results
            .iter()
            .find(|r| r.street == *street)
            .map(|r| r.interest)
            .unwrap_or(0.0);
        writeln!(
            stdout,
            "{:>3}. {} (interest {:.1})",
            i + 1,
            dataset.network.street(*street).name,
            interest
        )?;
    }
    Ok(())
}
