//! `soi` — command-line interface to the streets-of-interest library.
//!
//! ```text
//! soi generate --city london --scale 0.05 --out data/london
//! soi stats    --data data/london
//! soi query    --data data/london --keywords shop --k 10
//! soi batch    queries.tsv --data data/london --threads 4
//! soi describe --data data/london --keywords shop --photos 5
//! soi route    --data data/london --keywords food --k 8
//! ```

// The CLI must always exit with a structured error, never a panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod args;

use std::io::Write;

use args::Args;
use soi_common::{Result, ResultExt, SoiError};
use soi_core::describe::{
    st_rel_div, st_rel_div_explained, ContextBuilder, DescribeExplain, DescribeParams,
    DescribeScratch, PhiSource,
};
use soi_core::route::{improve_route_2opt, route_length, sketch_route};
use soi_core::soi::{
    run_baseline, run_soi, run_soi_explained, SoiConfig, SoiExplain, SoiOutcome, SoiQuery,
    SoiScratch, StreetAggregate,
};
use soi_data::Dataset;
use soi_engine::{QueryContext, QueryEngine};
use soi_index::{BundleParams, CacheMode, CacheOutcome, IndexBundle, IndexCache, PoiIndex};
use soi_network::NetworkStats;
use soi_obs::log::{self, LogMode, Value};
use soi_obs::names::{phases, spans};
use soi_obs::{json, profile, trace};

const DEFAULT_EPS: f64 = 0.0005;
const DEFAULT_RHO: f64 = 0.0001;
const POI_CELL: f64 = 2.0 * DEFAULT_EPS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(args) {
        // A closed stdout (e.g. `soi query ... | head`) is not a failure of
        // the command itself: stop writing and exit cleanly, like cat(1).
        if e.is_broken_pipe() {
            return;
        }
        eprintln!("error: {e}");
        std::process::exit(e.category().exit_code());
    }
}

fn run(raw: Vec<String>) -> Result<()> {
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" {
        return print_help();
    }
    let args = Args::parse(raw)?;

    // Observability plumbing shared by every subcommand: `--log-json`
    // switches stderr events to JSON lines (the SOI_LOG env var applies
    // otherwise), and `--trace-out FILE` records a Chrome trace of the
    // whole invocation.
    if args.flag("log-json") {
        log::set_mode(LogMode::Json);
    } else {
        log::init_from_env();
    }
    let trace_out = args.get("trace-out").map(str::to_string);
    if trace_out.is_some() {
        trace::set_enabled(true);
    }
    // `--profile-out FILE` samples the whole invocation's span stacks at
    // `--profile-hz` (default 99) and writes FILE (JSON), FILE.folded, and
    // FILE.svg when the command finishes.
    let profile_out = args.get("profile-out").map(str::to_string);
    if profile_out.is_some() {
        let hz = match args.get("profile-hz") {
            None => profile::DEFAULT_HZ,
            Some(raw) => raw
                .parse::<u32>()
                .map_err(|_| SoiError::invalid(format!("--profile-hz {raw:?} is not a number")))?,
        };
        profile::start(hz).map_err(|e| SoiError::invalid(format!("cannot start profiler: {e}")))?;
    }

    let result = {
        // One span covering the whole command, so the trace accounts for
        // (nearly) the entire process wall time.
        let _cmd_span = trace::span(command_span_name(&args.command));
        dispatch(&args)
    };
    // Write artifacts even when the command failed — a trace or profile of
    // a slow run that ultimately errored is still useful — but let the
    // command's own error take precedence.
    let result = match profile_out {
        None => result,
        Some(path) => {
            let written = write_profile(&path);
            result.and(written)
        }
    };
    match trace_out {
        None => result,
        Some(path) => {
            let written = write_trace(&path);
            result.and(written)
        }
    }
}

fn dispatch(args: &Args) -> Result<()> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "build-index" => cmd_build_index(args),
        "stats" => cmd_stats(args),
        "query" => cmd_query(args),
        "explain" => cmd_explain(args),
        "batch" => cmd_batch(args),
        "describe" => cmd_describe(args),
        "route" => cmd_route(args),
        "export" => cmd_export(args),
        "poi" => cmd_poi(args),
        "metrics" => cmd_metrics(args),
        "check-artifacts" => cmd_check_artifacts(args),
        "serve" => cmd_serve(args),
        "bench-serve" => cmd_bench_serve(args),
        "ingest" => cmd_ingest(args),
        "gen-deltas" => cmd_gen_deltas(args),
        other => Err(SoiError::invalid(format!(
            "unknown command {other:?}; try `soi help`"
        ))),
    }
}

/// The static span name of a subcommand (span names are `&'static str`,
/// so the known commands are enumerated rather than formatted).
fn command_span_name(command: &str) -> &'static str {
    match command {
        "generate" => "cli.generate",
        "build-index" => "cli.build_index",
        "stats" => "cli.stats",
        "query" => "cli.query",
        "explain" => "cli.explain",
        "batch" => "cli.batch",
        "describe" => "cli.describe",
        "route" => "cli.route",
        "export" => "cli.export",
        "poi" => "cli.poi",
        "metrics" => "cli.metrics",
        "check-artifacts" => "cli.check_artifacts",
        "serve" => "cli.serve",
        "bench-serve" => "cli.bench_serve",
        "ingest" => "cli.ingest",
        "gen-deltas" => "cli.gen_deltas",
        _ => "cli.command",
    }
}

/// Drains the recorded trace events and writes them as Chrome
/// `trace_event` JSON (load via `chrome://tracing` or Perfetto).
fn write_trace(path: &str) -> Result<()> {
    trace::set_enabled(false);
    let events = trace::take_events();
    let doc = trace::chrome_trace_json(&events);
    std::fs::write(path, doc).at_path(path)?;
    log::event(
        "cli.trace",
        &format!("wrote trace to {path}"),
        &[
            ("events", Value::U64(events.len() as u64)),
            ("dropped", Value::U64(trace::dropped_events())),
        ],
    );
    Ok(())
}

/// Stops the profiling session and writes its three artifacts: `path`
/// (JSON), `path.folded` (Brendan-Gregg folded stacks), and `path.svg`
/// (self-contained flamegraph).
fn write_profile(path: &str) -> Result<()> {
    let Some(report) = profile::stop() else {
        return Err(SoiError::invalid(
            "no profiling session was running at exit",
        ));
    };
    std::fs::write(path, report.to_json()).at_path(path)?;
    let folded_path = format!("{path}.folded");
    std::fs::write(&folded_path, report.folded_text()).at_path(&folded_path)?;
    let svg_path = format!("{path}.svg");
    std::fs::write(&svg_path, report.flamegraph_svg()).at_path(&svg_path)?;
    log::event(
        "cli.profile",
        &format!("wrote profile to {path} (+.folded, +.svg)"),
        &[
            ("hz", Value::U64(u64::from(report.hz))),
            ("samples", Value::U64(report.samples)),
            ("idle_samples", Value::U64(report.idle_samples)),
            ("dropped_samples", Value::U64(report.dropped_samples)),
            ("stacks", Value::U64(report.stacks.len() as u64)),
        ],
    );
    Ok(())
}

fn print_help() -> Result<()> {
    let mut out = std::io::stdout().lock();
    writeln!(
        out,
        "soi — identify and describe Streets of Interest (EDBT 2016)\n\n\
         USAGE: soi <command> [--option value]...\n\n\
         COMMANDS\n\
         generate  --city london|berlin|vienna --out DIR [--scale 0.05] [--seed N]\n\
         \u{20}          Generate a synthetic city dataset and save it.\n\
         build-index --data DIR (--out FILE | --index-cache DIR) [--eps 0.0005]\n\
         \u{20}          [--poi-cell C] [--pg-cell C] [--with-ir] [--threads N]\n\
         \u{20}          Build the index bundle (POI grid, photo grid, \u{3b5}-maps,\n\
         \u{20}          optional IR-tree) and persist it as a versioned,\n\
         \u{20}          checksummed snapshot; reports fresh-build vs reload time.\n\
         stats     --data DIR\n\
         \u{20}          Print dataset statistics (paper Table 1 columns).\n\
         query     --data DIR --keywords w1,w2 [--k 10] [--eps 0.0005] [--algo soi|bl]\n\
         \u{20}          Run a k-SOI query and print the ranked streets.\n\
         explain   --data DIR --keywords w1,w2 [--k 10] [--eps 0.0005] [--describe]\n\
         \u{20}          [--json FILE] Run a k-SOI query with the explain collector\n\
         \u{20}          and print its bound-convergence table, pruning counters,\n\
         \u{20}          \u{3b5}-cache deltas, and memory use; --describe adds Alg. 2's\n\
         \u{20}          per-round cell-filter report for the top street, --json\n\
         \u{20}          writes the machine-readable artifact.\n\
         batch     FILE.tsv --data DIR [--threads N] [--eps 0.0005]\n\
         \u{20}          Run a file of k-SOI queries through the multi-threaded\n\
         \u{20}          engine (one query per line: keywords<TAB>k[<TAB>eps]).\n\
         describe  --data DIR --keywords w1,w2 [--photos 5] [--lambda 0.5] [--w 0.5]\n\
         \u{20}          [--rho 0.0001] [--street NAME]\n\
         \u{20}          Select a diversified photo summary for the top street\n\
         \u{20}          (or a named street).\n\
         route     --data DIR --keywords w1,w2 [--k 8] [--eps 0.0005]\n\
         \u{20}          Sketch an exploration route over the top-k streets.\n\
         export    --data DIR --keywords w1,w2 --out FILE.geojson [--k 10]\n\
         \u{20}          [--photos 5] Export the top-k streets (and a photo\n\
         \u{20}          summary of the winner) as GeoJSON for any web map.\n\
         poi       --data DIR --keywords w1,w2 --at X,Y [--k 5] [--match any|all]\n\
         \u{20}          Single-POI retrieval: the k nearest POIs matching the\n\
         \u{20}          keywords (hybrid spatio-textual R-tree).\n\
         metrics   [--data DIR] [--keywords w1,w2] [--eps 0.0005]\n\
         \u{20}          Print process metrics in Prometheus text format (with\n\
         \u{20}          --data, first runs a small workload to populate them).\n\
         check-artifacts [--trace FILE.json] [--stats FILE.json] [--explain FILE.json]\n\
         \u{20}          [--snapshot FILE.soisnap] [--profile FILE.json]\n\
         \u{20}          Validate observability artifacts: a Chrome trace from\n\
         \u{20}          --trace-out, a telemetry file from --stats-json, an\n\
         \u{20}          explain artifact from `soi explain --json`, an index\n\
         \u{20}          snapshot (section table + checksums), and/or a profile\n\
         \u{20}          from --profile-out (sample-count consistency, frames\n\
         \u{20}          against the span taxonomy) offline.\n\
         serve     --data DIR [--addr 127.0.0.1:7878] [--threads N] [--io-threads 4]\n\
         \u{20}          [--queue 64] [--deadline-ms 250] [--max-deadline-ms 10000]\n\
         \u{20}          [--batch-max 8] [--eps 0.0005] [--rho 0.0001]\n\
         \u{20}          [--trace-sample N] [--slow-query-ms MS] [--ring-capacity 256]\n\
         \u{20}          [--ingest-log FILE] [--epoch-max-delta 4096]\n\
         \u{20}          Serve queries over HTTP (POST /soi|/describe|/explain|/ingest,\n\
         \u{20}          GET /metrics|/status|/explain|/debug/requests) with\n\
         \u{20}          admission control, per-request deadlines (anytime partial\n\
         \u{20}          results), and graceful drain on SIGTERM. Every request\n\
         \u{20}          gets an x-soi-request-id; bodies may set \"trace\"/\n\
         \u{20}          \"explain\" to capture and embed per-request artifacts,\n\
         \u{20}          also retrievable at GET /debug/requests/<id>.\n\
         \u{20}          --trace-sample N traces 1-in-N queries into the ring;\n\
         \u{20}          --slow-query-ms logs+counts requests over the threshold.\n\
         \u{20}          --stats-json FILE writes the final report on shutdown.\n\
         \u{20}          --ingest-log FILE accepts live deltas at POST /ingest,\n\
         \u{20}          journals them, and folds a fresh epoch every\n\
         \u{20}          --epoch-max-delta pending ops (0 = never fold).\n\
         bench-serve --addr HOST:PORT --keywords w1,w2 [--requests 100]\n\
         \u{20}          [--concurrency 4] [--k 10] [--deadline-ms 250]\n\
         \u{20}          [--timeout-ms 2000] [--retries 2] [--describe-street S]\n\
         \u{20}          [--ingest FILE] [--ingest-batch 16] [--ingest-interval-ms 50]\n\
         \u{20}          Drive load at a running `soi serve` (every other request\n\
         \u{20}          describes street S when given) with timeouts, retries,\n\
         \u{20}          and backoff; prints status/latency percentiles plus\n\
         \u{20}          request-id integrity (duplicates/gaps) and writes them\n\
         \u{20}          with --stats-json FILE. --ingest streams delta batches\n\
         \u{20}          to POST /ingest alongside the query load (mixed\n\
         \u{20}          read/write bench).\n\
         ingest    FILE --addr HOST:PORT [--batch 256] [--timeout-ms 5000]\n\
         \u{20}          Stream a JSON-lines delta file to a running server's\n\
         \u{20}          POST /ingest and report the resulting epoch.\n\
         gen-deltas --data DIR --out FILE [--ops 256] [--seed 42]\n\
         \u{20}          [--del-ratio 0.2] [--photo-ratio 0.3]\n\
         \u{20}          Generate a deterministic JSON-lines delta stream (POI/\n\
         \u{20}          photo inserts and deletes) valid against DIR's dataset.\n\n\
         INDEX CACHE (query, explain, batch, describe, route, export, poi, serve)\n\
         --index-cache DIR        Load the index bundle from a versioned snapshot\n\
         \u{20}                        in DIR (built and cached on first use; stale\n\
         \u{20}                        snapshots rebuild transparently).\n\
         --index-cache-mode MODE  lenient (default: corrupt snapshots rebuild) or\n\
         \u{20}                        strict (corrupt snapshots fail, exit code 3).\n\n\
         OBSERVABILITY (any command)\n\
         --trace-out FILE   Record a Chrome trace_event JSON file of the run\n\
         \u{20}                  (open in chrome://tracing or ui.perfetto.dev).\n\
         --profile-out FILE Sample the run's span stacks and write FILE (JSON),\n\
         \u{20}                  FILE.folded (collapsed stacks), and FILE.svg\n\
         \u{20}                  (flamegraph). --profile-hz N sets the rate (99).\n\
         --log-json         Emit stderr events as JSON lines (also SOI_LOG=json).\n\
         batch also accepts --stats-json FILE to dump engine telemetry\n\
         (latency percentiles, work counters, \u{3b5}-cache hits) as JSON."
    )?;
    Ok(())
}

fn load(args: &Args) -> Result<Dataset> {
    let _span = trace::span(spans::CLI_LOAD);
    soi_data::io::load_dataset(args.require("data")?)
}

fn parse_keywords(dataset: &Dataset, args: &Args) -> Result<soi_text::KeywordSet> {
    let raw = args.require("keywords")?;
    let words: Vec<&str> = raw
        .split(',')
        .map(str::trim)
        .filter(|w| !w.is_empty())
        .collect();
    if words.is_empty() {
        return Err(SoiError::invalid(
            "--keywords must name at least one keyword",
        ));
    }
    let set = dataset.query_keywords(&words);
    if set.is_empty() {
        log::event(
            "cli.keywords",
            "note: none of the keywords occur in this dataset",
            &[("keywords", Value::Str(raw))],
        );
    }
    Ok(set)
}

/// The bundle parameters a query-path command implies: POI grid sized by
/// the command (usually `2ε`), photo grid at the describe cell size, ε-maps
/// persisted for the query ε.
fn bundle_params(poi_cell: f64, eps: f64, with_ir: bool, threads: usize) -> BundleParams {
    BundleParams {
        poi_cell,
        pg_cell: POI_CELL,
        eps: Some(eps),
        with_ir,
        threads,
    }
}

/// Index acquisition shared by every query-path command: with
/// `--index-cache DIR` the bundle is loaded from a versioned snapshot
/// (built and persisted on a miss, transparently rebuilt when stale or —
/// in the default lenient mode — corrupt); without it the structures are
/// built fresh in memory as before.
fn acquire_bundle(args: &Args, dataset: &Dataset, params: &BundleParams) -> Result<IndexBundle> {
    let Some(dir) = args.get("index-cache") else {
        return Ok(soi_index::build_bundle(dataset, params));
    };
    let mode = match args.get("index-cache-mode").unwrap_or("lenient") {
        "lenient" => CacheMode::Lenient,
        "strict" => CacheMode::Strict,
        other => {
            return Err(SoiError::invalid(format!(
                "unknown --index-cache-mode {other:?} (expected lenient or strict)"
            )))
        }
    };
    let started = std::time::Instant::now();
    let (bundle, outcome) = IndexCache::new(dir, mode).load_or_build(dataset, params)?;
    log::event(
        "cli.index_cache",
        match outcome {
            CacheOutcome::Hit => "index bundle loaded from snapshot cache",
            CacheOutcome::MissBuilt => "index bundle built and cached",
            CacheOutcome::RebuiltCorrupt => "corrupt snapshot discarded; index bundle rebuilt",
        },
        &[
            ("dir", Value::Str(dir)),
            ("ms", Value::F64(started.elapsed().as_secs_f64() * 1e3)),
        ],
    );
    Ok(bundle)
}

fn cmd_generate(args: &Args) -> Result<()> {
    let city = args.require("city")?;
    let out = args.require("out")?;
    let scale: f64 = args.get_parsed("scale", 0.05)?;
    let mut config = match city {
        "london" => soi_datagen::london(scale),
        "berlin" => soi_datagen::berlin(scale),
        "vienna" => soi_datagen::vienna(scale),
        other => {
            return Err(SoiError::invalid(format!(
                "unknown city {other:?} (expected london, berlin, or vienna)"
            )))
        }
    };
    if let Some(seed) = args.get("seed") {
        config.seed = seed
            .parse()
            .map_err(|_| SoiError::invalid("--seed must be an integer"))?;
    }
    log::event(
        "cli.generate",
        &format!("generating {} at scale {scale}", config.name),
        &[
            ("city", Value::Str(&config.name)),
            ("scale", Value::F64(scale)),
            ("pois", Value::U64(config.n_pois as u64)),
            ("photos", Value::U64(config.n_photos as u64)),
        ],
    );
    let (dataset, truth) = soi_datagen::generate(&config);
    soi_data::io::save_dataset(&dataset, out)?;
    let mut stdout = std::io::stdout().lock();
    writeln!(
        stdout,
        "wrote {} to {out}: {} segments, {} streets, {} POIs, {} photos",
        dataset.name,
        dataset.network.num_segments(),
        dataset.network.num_streets(),
        dataset.pois.len(),
        dataset.photos.len()
    )?;
    for (category, streets) in &truth.destinations {
        let names: Vec<&str> = streets
            .iter()
            .map(|&s| dataset.network.street(s).name.as_str())
            .collect();
        writeln!(
            stdout,
            "planted {category} destinations: {}",
            names.join(", ")
        )?;
    }
    Ok(())
}

fn cmd_build_index(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let threads: usize = args.get_parsed("threads", 0)?;
    let params = BundleParams {
        poi_cell: args.get_parsed("poi-cell", 2.0 * eps)?,
        pg_cell: args.get_parsed("pg-cell", POI_CELL)?,
        eps: Some(eps),
        with_ir: args.flag("with-ir"),
        threads,
    };

    let build_started = std::time::Instant::now();
    let bundle = soi_index::build_bundle(&dataset, &params);
    let build = build_started.elapsed();

    let path = match (args.get("out"), args.get("index-cache")) {
        (Some(out), _) => std::path::PathBuf::from(out),
        (None, Some(dir)) => {
            let cache = IndexCache::new(dir, CacheMode::Lenient);
            std::fs::create_dir_all(cache.dir()).at_path(dir)?;
            cache.snapshot_path(&dataset, &params)
        }
        (None, None) => {
            return Err(SoiError::invalid(
                "build-index needs --out FILE or --index-cache DIR",
            ))
        }
    };
    let bytes = soi_index::write_bundle(&path, &dataset, &bundle, &params)?;

    // Reload immediately: verifies the file end-to-end and measures the
    // cold-start win over the fresh build. Stop the clock before the
    // outcome is dropped — tearing down the decoded bundle is not load
    // time (the fresh-build figure does not include its drop either).
    let load_started = std::time::Instant::now();
    let outcome = soi_index::read_bundle(&path, &dataset, &params)?;
    let loaded = load_started.elapsed();
    match outcome {
        soi_index::ReadOutcome::Loaded(_) => {}
        soi_index::ReadOutcome::Stale(reason) => {
            return Err(SoiError::invalid(format!(
                "freshly written snapshot reads back stale: {reason}"
            )))
        }
    }

    let mut out = std::io::stdout().lock();
    writeln!(
        out,
        "wrote {} ({bytes} bytes, {} sections: poi grid{}{})",
        path.display(),
        soi_snapshot::Snapshot::open(&path)?.sections().len(),
        if params.with_ir { " + ir-tree" } else { "" },
        if params.eps.is_some() {
            " + photo grid + eps-maps"
        } else {
            " + photo grid"
        },
    )?;
    writeln!(
        out,
        "build {:.3}s, snapshot load {:.3}s ({:.1}x faster)",
        build.as_secs_f64(),
        loaded.as_secs_f64(),
        build.as_secs_f64() / loaded.as_secs_f64().max(1e-9)
    )?;
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let stats = NetworkStats::of(&dataset.network);
    let mut out = std::io::stdout().lock();
    writeln!(out, "dataset: {}", dataset.name)?;
    writeln!(out, "{stats}")?;
    writeln!(out, "POIs:     {}", dataset.pois.len())?;
    writeln!(out, "photos:   {}", dataset.photos.len())?;
    writeln!(out, "keywords: {}", dataset.vocab.len())?;
    Ok(())
}

fn print_outcome(dataset: &Dataset, outcome: &SoiOutcome) -> Result<()> {
    let mut out = std::io::stdout().lock();
    writeln!(out, "rank  interest      mass  street")?;
    for (i, r) in outcome.results.iter().enumerate() {
        writeln!(
            out,
            "{:>4}  {:>12.1}  {:>6.1}  {}",
            i + 1,
            r.interest,
            r.best_segment_mass,
            dataset.network.street(r.street).name
        )?;
    }
    let t = &outcome.stats.timer;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    log::event(
        "query.done",
        "query done",
        &[
            ("results", Value::U64(outcome.results.len() as u64)),
            ("total_ms", Value::F64(ms(t.total()))),
            (
                "construction_ms",
                Value::F64(ms(t.duration(phases::CONSTRUCTION))),
            ),
            (
                "filtering_ms",
                Value::F64(ms(t.duration(phases::FILTERING))),
            ),
            (
                "refinement_ms",
                Value::F64(ms(t.duration(phases::REFINEMENT))),
            ),
        ],
    );
    Ok(())
}

fn cmd_query(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let keywords = parse_keywords(&dataset, args)?;
    let k: usize = args.get_parsed("k", 10)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let query = SoiQuery::new(keywords, k, eps)?;
    let index = acquire_bundle(args, &dataset, &bundle_params(2.0 * eps, eps, false, 0))?.poi;
    let outcome = match args.get("algo").unwrap_or("soi") {
        "soi" => run_soi(
            &dataset.network,
            &dataset.pois,
            &index,
            &query,
            &SoiConfig::default(),
        )?,
        "bl" => run_baseline(
            &dataset.network,
            &dataset.pois,
            &index,
            &query,
            StreetAggregate::Max,
        ),
        other => return Err(SoiError::invalid(format!("unknown --algo {other:?}"))),
    };
    print_outcome(&dataset, &outcome)
}

/// Renders the bound-convergence table of one explained k-SOI run, showing
/// at most `max_printed` evenly spaced rows (the termination row always
/// prints last).
fn print_soi_explain(out: &mut impl Write, explain: &SoiExplain, max_printed: usize) -> Result<()> {
    writeln!(
        out,
        "lists: SL1={} cells, SL2/SL3={} segments",
        explain.lists.sl1, explain.lists.sl2
    )?;
    writeln!(
        out,
        "\nbound convergence ({} rows recorded):",
        explain.rows.len()
    )?;
    writeln!(
        out,
        "{:>7}  {:>4}  {:>12}  {:>12}  {:>12}  {:>12}  {:>6}  {:>6}",
        "access", "src", "UB", "UB_paper", "UB_coupled", "LBk", "seen", "cells"
    )?;
    let step = explain.rows.len().div_ceil(max_printed.max(1)).max(1);
    for (i, row) in explain.rows.iter().enumerate() {
        if i % step != 0 && i != explain.rows.len() - 1 {
            continue;
        }
        writeln!(
            out,
            "{:>7}  {:>4}  {:>12.4}  {:>12.4}  {:>12.4}  {:>12.4}  {:>6}  {:>6}",
            row.access,
            soi_core::soi::explain::source_label(row.source),
            row.ub,
            row.ub_paper,
            row.ub_coupled,
            row.lbk,
            row.segments_seen,
            row.cells_popped
        )?;
    }
    if let Some(t) = explain.termination {
        writeln!(
            out,
            "termination: UB {:.6} <= LBk {:.6} after {} accesses",
            t.ub, t.lbk, t.accesses
        )?;
    }
    if let Some(s) = &explain.stats {
        writeln!(
            out,
            "\ncounters: cells_popped={} segments_popped={} segments_seen={} \
             bounded_out={} finalized_filtering={} finalized_refinement={}",
            s.cells_popped,
            s.segments_popped,
            s.segments_seen,
            s.segments_bounded_out,
            s.segments_finalized_filtering,
            s.segments_finalized_refinement
        )?;
        let ms = |p: &str| s.timer.duration(p).as_secs_f64() * 1e3;
        writeln!(
            out,
            "phases: construction {:.2}ms, filtering {:.2}ms, refinement {:.2}ms",
            ms(phases::CONSTRUCTION),
            ms(phases::FILTERING),
            ms(phases::REFINEMENT)
        )?;
    }
    writeln!(
        out,
        "eps-cache: hits={} misses={} evictions={}",
        explain.eps_cache.hits, explain.eps_cache.misses, explain.eps_cache.evictions
    )?;
    Ok(())
}

/// Renders the per-greedy-round cell-filter report of one explained Alg. 2
/// run.
fn print_describe_explain(
    out: &mut impl Write,
    street_name: &str,
    explain: &DescribeExplain,
) -> Result<()> {
    writeln!(
        out,
        "\ndescribe explain for {street_name:?} ({} rounds):",
        explain.rounds.len()
    )?;
    writeln!(
        out,
        "{:>5}  {:>5}  {:>8}  {:>8}  {:>8}  {:>7}  {:>10}  {:>7}",
        "round", "cells", "prunedF", "refined", "prunedR", "photos", "best_mmr", "photo"
    )?;
    for r in &explain.rounds {
        writeln!(
            out,
            "{:>5}  {:>5}  {:>8}  {:>8}  {:>8}  {:>7}  {:>10}  {:>7}",
            r.round,
            r.cells_candidate,
            r.cells_pruned_filtering,
            r.cells_refined,
            r.cells_pruned_refinement,
            r.photos_scored,
            r.best_mmr
                .map_or_else(|| "-".to_string(), |v| format!("{v:.4}")),
            r.selected
                .map_or_else(|| "-".to_string(), |p| format!("#{}", p.raw()))
        )?;
    }
    if let Some(s) = &explain.stats {
        writeln!(
            out,
            "totals: photos_evaluated={} cells_refined={} pruned_filtering={} pruned_refinement={}",
            s.photos_evaluated,
            s.cells_refined,
            s.cells_pruned_filtering,
            s.cells_pruned_refinement
        )?;
    }
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let keywords = parse_keywords(&dataset, args)?;
    let k: usize = args.get_parsed("k", 10)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let query = SoiQuery::new(keywords, k, eps)?;
    let bundle = acquire_bundle(args, &dataset, &bundle_params(2.0 * eps, eps, false, 0))?;
    let index = bundle.poi;

    let mut explain = SoiExplain::default();
    let scope = soi_obs::AllocScope::start();
    let outcome = run_soi_explained(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
        &mut SoiScratch::default(),
        Some(&mut explain),
    )?;
    let alloc = scope.finish();

    // Optionally explain Alg. 2 on the winning street.
    let mut describe: Option<(String, DescribeExplain)> = None;
    if args.flag("describe") {
        match outcome.results.first() {
            None => log::event(
                "explain.describe",
                "no street matched the query; nothing to describe",
                &[],
            ),
            Some(top) => {
                let ctx = ContextBuilder {
                    network: &dataset.network,
                    photos: &dataset.photos,
                    photo_grid: &bundle.photo_grid,
                    pois: Some(&dataset.pois),
                    eps,
                    rho: args.get_parsed("rho", DEFAULT_RHO)?,
                    phi_source: PhiSource::Photos,
                }
                .build(top.street)?;
                let params = DescribeParams::new(args.get_parsed("photos", 5)?, 0.5, 0.5)?;
                let mut dex = DescribeExplain::default();
                let _ = st_rel_div_explained(
                    &ctx,
                    &dataset.photos,
                    &params,
                    &mut DescribeScratch::default(),
                    Some(&mut dex),
                )?;
                let name = dataset.network.street(top.street).name.clone();
                describe = Some((name, dex));
            }
        }
    }

    let mut out = std::io::stdout().lock();
    writeln!(
        out,
        "k-SOI explain: k={} eps={} keywords={}",
        explain.k, explain.eps, explain.keywords
    )?;
    print_soi_explain(&mut out, &explain, 40)?;
    writeln!(
        out,
        "memory: {} allocations, {} bytes allocated, peak {} bytes above baseline",
        alloc.allocs, alloc.allocated_bytes, alloc.peak_bytes
    )?;
    writeln!(out, "\ntop-{} streets:", outcome.results.len())?;
    for (i, r) in outcome.results.iter().enumerate() {
        writeln!(
            out,
            "{:>4}  {:>12.1}  {}",
            i + 1,
            r.interest,
            dataset.network.street(r.street).name
        )?;
    }
    if let Some((name, dex)) = &describe {
        print_describe_explain(&mut out, name, dex)?;
    }

    if let Some(path) = args.get("json") {
        let mut doc = json::JsonWriter::object();
        doc.field_raw("soi", &explain.to_json());
        if let Some((_, dex)) = &describe {
            doc.field_raw("describe", &dex.to_json());
        }
        let mut mem = json::JsonWriter::object();
        mem.field_u64("allocations", alloc.allocs);
        mem.field_u64("allocated_bytes", alloc.allocated_bytes);
        mem.field_u64("peak_bytes", alloc.peak_bytes);
        doc.field_raw("alloc", &mem.finish());
        std::fs::write(path, doc.finish()).at_path(path)?;
        writeln!(out, "\nwrote explain artifact to {path}")?;
    }
    Ok(())
}

/// Parses one query file line (`keywords<TAB>k[<TAB>eps]`) into a query.
fn parse_batch_line(
    dataset: &Dataset,
    lineno: usize,
    line: &str,
    default_eps: f64,
) -> Result<SoiQuery> {
    let invalid = |what: &str| SoiError::invalid(format!("queries line {lineno}: {what}"));
    let mut fields = line.split('\t');
    let raw_kws = fields.next().unwrap_or("");
    let words: Vec<&str> = raw_kws
        .split(',')
        .map(str::trim)
        .filter(|w| !w.is_empty())
        .collect();
    if words.is_empty() {
        return Err(invalid("missing keywords"));
    }
    let k: usize = match fields.next() {
        None => 10,
        Some(raw) => raw
            .trim()
            .parse()
            .map_err(|_| invalid(&format!("invalid k {raw:?}")))?,
    };
    let eps: f64 = match fields.next() {
        None => default_eps,
        Some(raw) => raw
            .trim()
            .parse()
            .map_err(|_| invalid(&format!("invalid eps {raw:?}")))?,
    };
    if let Some(extra) = fields.next() {
        return Err(invalid(&format!("unexpected extra field {extra:?}")));
    }
    SoiQuery::new(dataset.query_keywords(&words), k, eps)
        .map_err(|e| invalid(&format!("invalid query ({e})")))
}

fn cmd_batch(args: &Args) -> Result<()> {
    let path = args
        .positional()
        .or(args.get("queries"))
        .ok_or_else(|| SoiError::invalid("batch needs a queries file: soi batch FILE.tsv"))?;
    let dataset = load(args)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let threads: usize = args.get_parsed("threads", 0)?;

    // Parse every line, keeping failures as per-input error records
    // instead of aborting the whole batch on the first bad line. A record
    // carries the 0-based input slot (position among query lines) so it
    // lines up with the engine's `error_records`, plus the 1-based file
    // line in the message for humans.
    let text = std::fs::read_to_string(path).at_path(path)?;
    let mut queries = Vec::new();
    let mut slot_of_valid = Vec::new();
    let mut parse_records = Vec::new();
    let mut input_slots = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let slot = input_slots;
        input_slots += 1;
        match parse_batch_line(&dataset, i + 1, line, eps) {
            Ok(query) => {
                slot_of_valid.push(slot);
                queries.push(query);
            }
            Err(e) => parse_records.push(soi_engine::BatchErrorRecord {
                index: slot,
                stage: "parse",
                category: e.category().to_string(),
                message: e.to_string(),
            }),
        }
    }
    if input_slots == 0 {
        return Err(SoiError::invalid(format!("{path}: no queries found")));
    }
    if queries.is_empty() {
        return Err(SoiError::invalid(format!(
            "{path}: every query line failed to parse ({} errors); first: {}",
            parse_records.len(),
            parse_records[0].message
        )));
    }

    let index = acquire_bundle(
        args,
        &dataset,
        &bundle_params(2.0 * eps, eps, false, threads),
    )?
    .poi;
    let engine = QueryEngine::new(threads);
    let ctx = std::sync::Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
    let mut batch = engine.run_soi_batch(&ctx, &queries);

    let mut out = std::io::stdout().lock();
    for rec in &parse_records {
        writeln!(out, "query {}: parse error: {}", rec.index + 1, rec.message)?;
    }
    for (i, (query, result)) in queries.iter().zip(&batch.results).enumerate() {
        let slot = slot_of_valid[i];
        match result {
            Ok(outcome) => {
                writeln!(
                    out,
                    "query {}: k={} -> {} streets",
                    slot + 1,
                    query.k,
                    outcome.results.len()
                )?;
                for (rank, r) in outcome.results.iter().enumerate() {
                    writeln!(
                        out,
                        "  {:>3}. {:>10.1}  {}",
                        rank + 1,
                        r.interest,
                        dataset.network.street(r.street).name
                    )?;
                }
            }
            Err(e) => writeln!(out, "query {}: error: {e}", slot + 1)?,
        }
    }
    // The stats artifact reports every failure of the run against its
    // input slot: engine records are remapped from valid-query indices to
    // input slots, then merged with the parse-stage records.
    for rec in &mut batch.telemetry.error_records {
        rec.index = slot_of_valid[rec.index];
    }
    let parse_errors = parse_records.len();
    parse_records.append(&mut batch.telemetry.error_records);
    parse_records.sort_by_key(|r| r.index);
    batch.telemetry.error_records = parse_records;
    if let Some(stats_path) = args.get("stats-json") {
        std::fs::write(stats_path, batch.telemetry.to_json()).at_path(stats_path)?;
    }
    let s = &batch.stats;
    log::event(
        "batch.done",
        "batch done",
        &[
            ("queries", Value::U64(s.queries as u64)),
            ("threads", Value::U64(s.threads as u64)),
            ("wall_ms", Value::F64(s.wall_time.as_secs_f64() * 1e3)),
            ("queries_per_second", Value::F64(s.queries_per_second())),
            ("errors", Value::U64(s.errors as u64)),
            ("parse_errors", Value::U64(parse_errors as u64)),
            ("partials", Value::U64(s.partials as u64)),
        ],
    );
    Ok(())
}

fn top_street(
    dataset: &Dataset,
    index: &PoiIndex,
    keywords: soi_text::KeywordSet,
    eps: f64,
) -> Result<soi_common::StreetId> {
    let query = SoiQuery::new(keywords, 1, eps)?;
    let out = run_soi(
        &dataset.network,
        &dataset.pois,
        index,
        &query,
        &SoiConfig::default(),
    )?;
    out.results
        .first()
        .map(|r| r.street)
        .ok_or_else(|| SoiError::not_found("no street matches the query keywords"))
}

fn cmd_describe(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let rho: f64 = args.get_parsed("rho", DEFAULT_RHO)?;
    let k: usize = args.get_parsed("photos", 5)?;
    let lambda: f64 = args.get_parsed("lambda", 0.5)?;
    let w: f64 = args.get_parsed("w", 0.5)?;

    let bundle = acquire_bundle(args, &dataset, &bundle_params(POI_CELL, eps, false, 0))?;
    let street = match args.get("street") {
        Some(name) => dataset
            .street_by_name(name)
            .ok_or_else(|| SoiError::not_found(format!("street {name:?}")))?,
        None => {
            let keywords = parse_keywords(&dataset, args)?;
            top_street(&dataset, &bundle.poi, keywords, eps)?
        }
    };

    let ctx = ContextBuilder {
        network: &dataset.network,
        photos: &dataset.photos,
        photo_grid: &bundle.photo_grid,
        pois: Some(&dataset.pois),
        eps,
        rho,
        phi_source: PhiSource::Photos,
    }
    .build(street)?;
    let params = DescribeParams::new(k, lambda, w)?;
    let out = st_rel_div(&ctx, &dataset.photos, &params)?;

    let mut stdout = std::io::stdout().lock();
    writeln!(
        stdout,
        "street: {} ({} photos within ε)",
        dataset.network.street(street).name,
        ctx.members.len()
    )?;
    writeln!(
        stdout,
        "summary of {} photos (F = {:.4}):",
        out.selected.len(),
        out.objective
    )?;
    for &pid in &out.selected {
        let photo = dataset.photos.get(pid);
        let tags: Vec<&str> = photo
            .tags
            .iter()
            .filter_map(|t| dataset.vocab.term(t))
            .collect();
        writeln!(
            stdout,
            "  photo #{} at ({:.5}, {:.5}) tags: {}",
            pid.raw(),
            photo.pos.x,
            photo.pos.y,
            tags.join(", ")
        )?;
    }
    Ok(())
}

fn cmd_export(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let out = args.require("out")?;
    let keywords = parse_keywords(&dataset, args)?;
    let k: usize = args.get_parsed("k", 10)?;
    let n_photos: usize = args.get_parsed("photos", 5)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;

    let bundle = acquire_bundle(args, &dataset, &bundle_params(2.0 * eps, eps, false, 0))?;
    let query = SoiQuery::new(keywords, k, eps)?;
    let outcome = run_soi(
        &dataset.network,
        &dataset.pois,
        &bundle.poi,
        &query,
        &SoiConfig::default(),
    )?;
    let ranked: Vec<(soi_common::StreetId, f64)> = outcome
        .results
        .iter()
        .map(|r| (r.street, r.interest))
        .collect();
    let streets_doc = soi_data::geojson::ranked_streets_to_geojson(&dataset.network, &ranked);
    std::fs::write(out, &streets_doc).at_path(out)?;
    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "wrote {} streets to {out}", ranked.len())?;

    if let Some(&(top, _)) = ranked.first() {
        let ctx = ContextBuilder {
            network: &dataset.network,
            photos: &dataset.photos,
            photo_grid: &bundle.photo_grid,
            pois: Some(&dataset.pois),
            eps,
            rho: DEFAULT_RHO,
            phi_source: PhiSource::Photos,
        }
        .build(top)?;
        if !ctx.members.is_empty() {
            let params = DescribeParams::new(n_photos, 0.5, 0.5)?;
            let summary = st_rel_div(&ctx, &dataset.photos, &params)?;
            let photo_doc = soi_data::geojson::photos_to_geojson(&dataset, &summary.selected);
            let photo_path = format!("{out}.photos.geojson");
            std::fs::write(&photo_path, &photo_doc).at_path(&photo_path)?;
            writeln!(
                stdout,
                "wrote {}-photo summary of {:?} to {photo_path}",
                summary.selected.len(),
                dataset.network.street(top).name
            )?;
        }
    }
    Ok(())
}

fn cmd_poi(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let keywords = parse_keywords(&dataset, args)?;
    let k: usize = args.get_parsed("k", 5)?;
    let at = args.require("at")?;
    let (x, y) = at
        .split_once(',')
        .and_then(|(a, b)| Some((a.trim().parse::<f64>().ok()?, b.trim().parse::<f64>().ok()?)))
        .ok_or_else(|| SoiError::invalid("--at must be X,Y coordinates"))?;
    let q = soi_geo::Point::new(x, y);

    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let bundle = acquire_bundle(args, &dataset, &bundle_params(2.0 * eps, eps, true, 0))?;
    let tree = bundle
        .ir
        .ok_or_else(|| SoiError::invalid("index bundle is missing the IR-tree"))?;
    let hits = match args.get("match").unwrap_or("any") {
        "all" => tree.top_k_containing_all(q, &keywords, k),
        "any" => tree.top_k_relevant(q, &keywords, k),
        other => return Err(SoiError::invalid(format!("unknown --match {other:?}"))),
    };
    let mut out = std::io::stdout().lock();
    writeln!(out, "rank  distance    poi   keywords")?;
    for (i, (pid, dist)) in hits.iter().enumerate() {
        let poi = dataset.pois.get(*pid);
        let kws: Vec<&str> = poi
            .keywords
            .iter()
            .filter_map(|kw| dataset.vocab.term(kw))
            .collect();
        writeln!(
            out,
            "{:>4}  {:<10.6}  #{:<4} {}",
            i + 1,
            dist,
            pid.raw(),
            kws.join(", ")
        )?;
    }
    Ok(())
}

fn cmd_metrics(args: &Args) -> Result<()> {
    // Force-register every series so a gather before the first query still
    // exposes the full set (with zero values).
    soi_core::obs::register_metrics();
    soi_index::obs::register_metrics();
    soi_engine::obs::register_metrics();
    // Pins the process epoch and registers the uptime / build-info /
    // trace-dropped-events series.
    soi_obs::metrics::publish_process_metrics(env!("CARGO_PKG_VERSION"));
    if args.get("data").is_some() {
        // Populate the instruments with a small real workload: an index
        // build, two ε-map lookups (a miss then a hit), and — when
        // keywords are given — one k-SOI query through the engine (which
        // also feeds the per-query allocation histograms).
        let dataset = load(args)?;
        let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
        let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);
        let _ = index.epsilon_maps(&dataset.network, eps);
        let _ = index.epsilon_maps(&dataset.network, eps);
        if args.get("keywords").is_some() {
            let keywords = parse_keywords(&dataset, args)?;
            let query = SoiQuery::new(keywords, 10, eps)?;
            let engine = QueryEngine::new(1);
            let ctx =
                std::sync::Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
            let batch = engine.run_soi_batch(&ctx, std::slice::from_ref(&query));
            for result in batch.results {
                result?;
            }
        }
    }
    // Export allocator totals last so the gauges reflect the workload
    // above, and refresh the uptime gauge just before the gather.
    soi_obs::alloc::publish_metrics();
    soi_obs::metrics::publish_process_metrics(env!("CARGO_PKG_VERSION"));
    let mut out = std::io::stdout().lock();
    out.write_all(soi_obs::metrics::gather().as_bytes())?;
    Ok(())
}

/// Validates a Chrome trace file written by `--trace-out`: well-formed
/// JSON with a non-empty `traceEvents` array whose events all carry the
/// fields the trace viewers require. Returns the event count.
fn check_trace_file(path: &str) -> Result<u64> {
    let text = std::fs::read_to_string(path).at_path(path)?;
    let bad = |what: &str| SoiError::invalid(format!("{path}: {what}"));
    let doc = json::parse(&text).map_err(|e| bad(&format!("not valid JSON ({e})")))?;
    let events = doc
        .get("traceEvents")
        .and_then(json::Json::as_arr)
        .ok_or_else(|| bad("missing traceEvents array"))?;
    if events.is_empty() {
        return Err(bad("traceEvents is empty"));
    }
    for (i, ev) in events.iter().enumerate() {
        let has_str = |k: &str| ev.get(k).and_then(json::Json::as_str).is_some();
        let has_num = |k: &str| ev.get(k).and_then(json::Json::as_f64).is_some();
        if !(has_str("name") && has_str("ph") && has_num("ts") && has_num("pid") && has_num("tid"))
        {
            return Err(bad(&format!(
                "traceEvents[{i}] is missing name/ph/ts/pid/tid"
            )));
        }
    }
    Ok(events.len() as u64)
}

/// Validates a telemetry file written by `batch --stats-json`. Returns
/// the query count.
fn check_stats_file(path: &str) -> Result<u64> {
    let text = std::fs::read_to_string(path).at_path(path)?;
    let bad = |what: &str| SoiError::invalid(format!("{path}: {what}"));
    let doc = json::parse(&text).map_err(|e| bad(&format!("not valid JSON ({e})")))?;
    let queries = doc
        .get("queries")
        .and_then(json::Json::as_f64)
        .ok_or_else(|| bad("missing numeric queries field"))?;
    for section in ["counters", "latency", "eps_cache"] {
        if doc.get(section).is_none() {
            return Err(bad(&format!("missing {section} object")));
        }
    }
    if doc.get("latency").and_then(|l| l.get("samples")).is_none() {
        return Err(bad("latency object is missing samples"));
    }
    Ok(queries as u64)
}

/// Validates an explain artifact written by `explain --json`. Checks that
/// the bound trajectory is well-formed and actually converged: every row
/// carries numeric bounds, and the recorded termination satisfies
/// UB ≤ LBk. Returns the row count.
fn check_explain_file(path: &str) -> Result<u64> {
    let text = std::fs::read_to_string(path).at_path(path)?;
    let bad = |what: &str| SoiError::invalid(format!("{path}: {what}"));
    let doc = json::parse(&text).map_err(|e| bad(&format!("not valid JSON ({e})")))?;
    let soi = doc.get("soi").ok_or_else(|| bad("missing soi object"))?;
    let rows = soi
        .get("rows")
        .and_then(json::Json::as_arr)
        .ok_or_else(|| bad("soi object is missing rows array"))?;
    if rows.is_empty() {
        return Err(bad("soi.rows is empty"));
    }
    for (i, row) in rows.iter().enumerate() {
        let has_num = |k: &str| row.get(k).and_then(json::Json::as_f64).is_some();
        if !(has_num("access") && has_num("ub") && has_num("lbk")) {
            return Err(bad(&format!("soi.rows[{i}] is missing access/ub/lbk")));
        }
    }
    let term = soi
        .get("termination")
        .ok_or_else(|| bad("soi object is missing termination"))?;
    let num = |k: &str| {
        term.get(k)
            .and_then(json::Json::as_f64)
            .ok_or_else(|| bad(&format!("termination is missing numeric {k}")))
    };
    let (ub, lbk) = (num("ub")?, num("lbk")?);
    if ub > lbk + 1e-9 {
        return Err(bad(&format!(
            "termination did not converge: UB {ub} > LBk {lbk}"
        )));
    }
    if term.get("converged") != Some(&json::Json::Bool(true)) {
        return Err(bad("termination.converged is not true"));
    }
    // The trajectory's last row must itself satisfy the bound condition.
    if let Some(last) = rows.last() {
        let row_num = |k: &str| last.get(k).and_then(json::Json::as_f64).unwrap_or(f64::NAN);
        let (row_ub, row_lbk) = (row_num("ub"), row_num("lbk"));
        let row_converged = row_ub.is_finite() && row_lbk.is_finite() && row_ub <= row_lbk + 1e-9;
        if !row_converged {
            return Err(bad("final trajectory row has UB > LBk"));
        }
    }
    if let Some(describe) = doc.get("describe") {
        if describe
            .get("rounds")
            .and_then(json::Json::as_arr)
            .is_none()
        {
            return Err(bad("describe object is missing rounds array"));
        }
    }
    Ok(rows.len() as u64)
}

/// Validates a profile artifact written by `--profile-out` (or fetched
/// from `GET /debug/profile?format=json`): the JSON parses, the sample
/// accounting is internally consistent (stack counts sum to the busy
/// samples, per-frame self times partition them, total ≥ self), and every
/// frame name belongs to the span taxonomy in `soi_obs::names`. Returns
/// (busy samples, stack count).
fn check_profile_file(path: &str) -> Result<(u64, u64)> {
    let text = std::fs::read_to_string(path).at_path(path)?;
    let bad = |what: &str| SoiError::invalid(format!("{path}: {what}"));
    let doc = json::parse(&text).map_err(|e| bad(&format!("not valid JSON ({e})")))?;
    let prof = doc
        .get("profile")
        .ok_or_else(|| bad("missing profile object"))?;
    let num = |k: &str| {
        prof.get(k)
            .and_then(json::Json::as_f64)
            .ok_or_else(|| bad(&format!("missing numeric {k} field")))
    };
    let hz = num("hz")?;
    if hz < 1.0 {
        return Err(bad(&format!("hz {hz} is not a positive rate")));
    }
    num("duration_secs")?;
    num("idle_samples")?;
    num("dropped_samples")?;
    let samples = num("samples")?;
    let stacks = prof
        .get("stacks")
        .and_then(json::Json::as_arr)
        .ok_or_else(|| bad("missing stacks array"))?;
    let mut stack_sum = 0.0;
    for (i, stack) in stacks.iter().enumerate() {
        let frames = stack
            .get("stack")
            .and_then(json::Json::as_str)
            .ok_or_else(|| bad(&format!("stacks[{i}] is missing its stack string")))?;
        if frames.is_empty() {
            return Err(bad(&format!("stacks[{i}] has an empty frame path")));
        }
        for frame in frames.split(';') {
            if !soi_obs::names::is_known_span(frame) {
                return Err(bad(&format!(
                    "stacks[{i}] frame {frame:?} is not in the span taxonomy"
                )));
            }
        }
        stack_sum += stack
            .get("count")
            .and_then(json::Json::as_f64)
            .ok_or_else(|| bad(&format!("stacks[{i}] is missing numeric count")))?;
    }
    if stack_sum != samples {
        return Err(bad(&format!(
            "stack counts sum to {stack_sum} but samples is {samples}"
        )));
    }
    let frames = prof
        .get("frames")
        .and_then(json::Json::as_arr)
        .ok_or_else(|| bad("missing frames array"))?;
    let mut self_sum = 0.0;
    for (i, frame) in frames.iter().enumerate() {
        let name = frame
            .get("name")
            .and_then(json::Json::as_str)
            .ok_or_else(|| bad(&format!("frames[{i}] is missing its name")))?;
        if !soi_obs::names::is_known_span(name) {
            return Err(bad(&format!(
                "frames[{i}] name {name:?} is not in the span taxonomy"
            )));
        }
        let self_samples = frame
            .get("self_samples")
            .and_then(json::Json::as_f64)
            .ok_or_else(|| bad(&format!("frames[{i}] is missing self_samples")))?;
        let total_samples = frame
            .get("total_samples")
            .and_then(json::Json::as_f64)
            .ok_or_else(|| bad(&format!("frames[{i}] is missing total_samples")))?;
        if total_samples < self_samples {
            return Err(bad(&format!(
                "frames[{i}] ({name}) has total {total_samples} < self {self_samples}"
            )));
        }
        self_sum += self_samples;
    }
    if self_sum != samples {
        return Err(bad(&format!(
            "frame self times sum to {self_sum} but samples is {samples}"
        )));
    }
    if samples > 0.0 && stacks.is_empty() {
        return Err(bad("samples recorded but no stacks present"));
    }
    Ok((samples as u64, stacks.len() as u64))
}

/// Validates an index snapshot offline: container magic/version/endianness,
/// the section table (bounds, alignment, overlaps), and every section's
/// payload checksum — all enforced eagerly by [`soi_snapshot::Snapshot::open`].
/// Returns (section count, file bytes).
fn check_snapshot_file(path: &str) -> Result<(u64, u64)> {
    let snapshot = soi_snapshot::Snapshot::open(path)?;
    Ok((snapshot.sections().len() as u64, snapshot.file_len()))
}

fn cmd_check_artifacts(args: &Args) -> Result<()> {
    let trace_path = args.get("trace");
    let stats_path = args.get("stats");
    let explain_path = args.get("explain");
    let snapshot_path = args.get("snapshot");
    let profile_path = args.get("profile");
    if trace_path.is_none()
        && stats_path.is_none()
        && explain_path.is_none()
        && snapshot_path.is_none()
        && profile_path.is_none()
    {
        return Err(SoiError::invalid(
            "check-artifacts needs --trace FILE, --stats FILE, --explain FILE, \
             --snapshot FILE, and/or --profile FILE",
        ));
    }
    let mut out = std::io::stdout().lock();
    if let Some(path) = snapshot_path {
        let (sections, bytes) = check_snapshot_file(path)?;
        writeln!(
            out,
            "snapshot ok: {path} ({sections} sections, {bytes} bytes, all checksums verified)"
        )?;
    }
    if let Some(path) = trace_path {
        let events = check_trace_file(path)?;
        writeln!(out, "trace ok: {path} ({events} events)")?;
    }
    if let Some(path) = stats_path {
        let queries = check_stats_file(path)?;
        writeln!(out, "stats ok: {path} ({queries} queries)")?;
    }
    if let Some(path) = explain_path {
        let rows = check_explain_file(path)?;
        writeln!(out, "explain ok: {path} ({rows} trajectory rows)")?;
    }
    if let Some(path) = profile_path {
        let (samples, stacks) = check_profile_file(path)?;
        writeln!(
            out,
            "profile ok: {path} ({samples} samples over {stacks} stacks, \
             frames match the span taxonomy)"
        )?;
    }
    Ok(())
}

fn cmd_route(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let keywords = parse_keywords(&dataset, args)?;
    let k: usize = args.get_parsed("k", 8)?;
    let eps: f64 = args.get_parsed("eps", DEFAULT_EPS)?;
    let query = SoiQuery::new(keywords, k, eps)?;
    let index = acquire_bundle(args, &dataset, &bundle_params(2.0 * eps, eps, false, 0))?.poi;
    let out = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )?;
    let mut route = sketch_route(&dataset.network, &out.results);
    let greedy_len = route_length(&dataset.network, &route);
    let improved_len = improve_route_2opt(&dataset.network, &mut route);
    let mut stdout = std::io::stdout().lock();
    writeln!(
        stdout,
        "suggested exploration route ({} stops, {:.5}° walk{}):",
        route.len(),
        improved_len,
        if improved_len + 1e-12 < greedy_len {
            format!(", 2-opt saved {:.5}°", greedy_len - improved_len)
        } else {
            String::new()
        }
    )?;
    for (i, street) in route.iter().enumerate() {
        let interest = out
            .results
            .iter()
            .find(|r| r.street == *street)
            .map(|r| r.interest)
            .unwrap_or(0.0);
        writeln!(
            stdout,
            "{:>3}. {} (interest {:.1})",
            i + 1,
            dataset.network.street(*street).name,
            interest
        )?;
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<()> {
    use std::time::Duration;
    let dataset = load(args)?;
    let slow_query_ms: u64 = args.get_parsed("slow-query-ms", 0u64)?;
    let config = soi_serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        engine_threads: args.get_parsed("threads", 0usize)?,
        io_threads: args.get_parsed("io-threads", 4usize)?,
        queue_capacity: args.get_parsed("queue", 64usize)?,
        default_deadline: Duration::from_millis(args.get_parsed("deadline-ms", 250u64)?),
        max_deadline: Duration::from_millis(args.get_parsed("max-deadline-ms", 10_000u64)?),
        batch_max: args.get_parsed("batch-max", 8usize)?,
        eps: args.get_parsed("eps", DEFAULT_EPS)?,
        rho: args.get_parsed("rho", DEFAULT_RHO)?,
        index_cache: args.get("index-cache").map(std::path::PathBuf::from),
        index_cache_strict: matches!(args.get("index-cache-mode"), Some("strict")),
        trace_sample: args.get_parsed("trace-sample", 0u64)?,
        slow_query: (slow_query_ms > 0).then(|| Duration::from_millis(slow_query_ms)),
        ring_capacity: args.get_parsed("ring-capacity", 256usize)?,
        epoch_max_delta: args.get_parsed("epoch-max-delta", 4096usize)?,
        ingest_log: args.get("ingest-log").map(std::path::PathBuf::from),
        ..soi_serve::ServeConfig::default()
    };
    if let Some(mode) = args.get("index-cache-mode") {
        if mode != "strict" && mode != "lenient" {
            return Err(SoiError::invalid(format!(
                "unknown --index-cache-mode {mode:?} (expected lenient or strict)"
            )));
        }
    }
    soi_serve::signal::install_handlers();
    let report = soi_serve::serve(
        &dataset,
        &config,
        soi_serve::signal::shutdown_flag(),
        |addr| {
            // Scripts scrape this line for the bound port (port 0 picks a
            // free one), so it must reach the pipe before traffic starts.
            let mut out = std::io::stdout().lock();
            let _ = writeln!(out, "listening on {addr}");
            let _ = out.flush();
        },
    )?;
    if let Some(stats_path) = args.get("stats-json") {
        std::fs::write(stats_path, report.to_json()).at_path(stats_path)?;
    }
    let mut out = std::io::stdout().lock();
    writeln!(
        out,
        "drained: {} requests ({} shed, {} rejected, {} partial, {} errors, {} panics)",
        report.requests,
        report.sheds,
        report.rejected,
        report.partials,
        report.errors,
        report.panics
    )?;
    Ok(())
}

/// One bench-serve observation: terminal status (0 = transport failure),
/// the latency of the final attempt alone (a request accepted after N
/// sheds contributes one accepted-latency sample timed from the accepted
/// attempt, not from the first try — shed handling and backoff sleeps are
/// overload accounting, counted in `sheds`), attempts made, shed 503s
/// observed along the way, whether the response body was a
/// deadline-degraded partial result, and the server's `x-soi-request-id`
/// (absent on transport failure).
struct BenchSample {
    status: u16,
    latency: std::time::Duration,
    attempts: usize,
    sheds: usize,
    partial: bool,
    request_id: Option<u64>,
}

/// Progress of the optional background ingest stream a mixed
/// read/write bench drives alongside the query load.
#[derive(Default)]
struct IngestDrive {
    batches: u64,
    accepted_batches: u64,
    ops: u64,
    rejected: u64,
    folds: u64,
    last_epoch: u64,
}

/// Request-id integrity over a bench run: observed ids must be unique
/// (duplicates mean the server reused an id), and gaps are reported —
/// retries and concurrent clients legitimately consume server-side ids.
struct IdStats {
    seen: u64,
    distinct: u64,
    duplicates: u64,
    gaps: u64,
    min: Option<u64>,
    max: Option<u64>,
}

fn id_stats(samples: &[BenchSample]) -> IdStats {
    let mut ids: Vec<u64> = samples.iter().filter_map(|s| s.request_id).collect();
    ids.sort_unstable();
    let seen = ids.len() as u64;
    let mut distinct = 0u64;
    for (i, id) in ids.iter().enumerate() {
        if i == 0 || ids[i - 1] != *id {
            distinct += 1;
        }
    }
    let (min, max) = (ids.first().copied(), ids.last().copied());
    let span = match (min, max) {
        (Some(lo), Some(hi)) => hi - lo + 1,
        _ => 0,
    };
    IdStats {
        seen,
        distinct,
        duplicates: seen - distinct,
        gaps: span.saturating_sub(distinct),
        min,
        max,
    }
}

fn cmd_bench_serve(args: &Args) -> Result<()> {
    use std::time::{Duration, Instant};
    let addr: std::net::SocketAddr = args
        .require("addr")?
        .parse()
        .map_err(|_| SoiError::invalid("--addr must be HOST:PORT"))?;
    let keywords = args.require("keywords")?;
    let n: usize = args.get_parsed("requests", 100)?;
    let concurrency: usize = args.get_parsed("concurrency", 4)?;
    let k: usize = args.get_parsed("k", 10)?;
    let deadline_ms: u64 = args.get_parsed("deadline-ms", 250u64)?;
    let timeout = Duration::from_millis(args.get_parsed("timeout-ms", 2000u64)?);
    let policy = soi_serve::client::RetryPolicy {
        retries: args.get_parsed("retries", 2usize)?,
        backoff: Duration::from_millis(args.get_parsed("backoff-ms", 25u64)?),
    };
    let describe_street = args.get("describe-street");
    // Mixed read/write mode: stream delta batches from --ingest FILE at
    // POST /ingest while the query load runs.
    let ingest_lines: Vec<String> = match args.get("ingest") {
        Some(path) => std::fs::read_to_string(path)
            .at_path(path)?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .collect(),
        None => Vec::new(),
    };
    let ingest_interval = Duration::from_millis(args.get_parsed("ingest-interval-ms", 50u64)?);
    let ingest_batch: usize = args.get_parsed("ingest-batch", 16usize)?;

    let soi_body = {
        let mut obj = json::JsonWriter::object();
        let mut words = json::JsonWriter::array();
        for w in keywords.split(',').map(str::trim).filter(|w| !w.is_empty()) {
            let mut quoted = String::new();
            json::write_escaped(&mut quoted, w);
            words.elem_raw(&quoted);
        }
        obj.field_raw("keywords", &words.finish());
        obj.field_u64("k", k as u64);
        obj.field_u64("deadline_ms", deadline_ms);
        obj.finish()
    };
    let describe_body = describe_street.map(|street| {
        let mut obj = json::JsonWriter::object();
        match street.parse::<u64>() {
            Ok(id) => obj.field_u64("street", id),
            Err(_) => obj.field_str("street", street),
        }
        obj.field_u64("k", 3);
        obj.field_u64("deadline_ms", deadline_ms);
        obj.finish()
    });

    let started = Instant::now();
    let mut samples: Vec<BenchSample> = Vec::with_capacity(n);
    let mut ingest_drive: Option<IngestDrive> = None;
    let query_load_done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let ingest_worker = (!ingest_lines.is_empty()).then(|| {
            let lines = &ingest_lines;
            let done = &query_load_done;
            s.spawn(move || {
                let mut drive = IngestDrive::default();
                for chunk in lines.chunks(ingest_batch.max(1)) {
                    if done.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    let body = chunk.join("\n");
                    drive.batches += 1;
                    match soi_serve::client::request(addr, "POST", "/ingest", Some(&body), timeout)
                    {
                        Ok(response) if response.status == 200 => {
                            drive.accepted_batches += 1;
                            drive.ops += chunk.len() as u64;
                            if let Ok(doc) = json::parse(&response.body) {
                                if let Some(e) = doc.get("epoch").and_then(|v| v.as_f64()) {
                                    drive.last_epoch = e as u64;
                                }
                                if doc.get("folded").and_then(|v| v.as_bool()) == Some(true) {
                                    drive.folds += 1;
                                }
                            }
                        }
                        _ => drive.rejected += 1,
                    }
                    std::thread::sleep(ingest_interval);
                }
                drive
            })
        });
        let workers: Vec<_> = (0..concurrency.max(1))
            .map(|tid| {
                let soi_body = &soi_body;
                let describe_body = &describe_body;
                s.spawn(move || {
                    let mut local = Vec::new();
                    let mut j = tid;
                    while j < n {
                        // Mixed traffic: every other request describes the
                        // given street, the rest run k-SOI queries.
                        let (path, body) = match describe_body {
                            Some(describe) if j % 2 == 1 => ("/describe", describe.as_str()),
                            _ => ("/soi", soi_body.as_str()),
                        };
                        let outcome = soi_serve::client::request_with_retry(
                            addr,
                            "POST",
                            path,
                            Some(body),
                            timeout,
                            policy,
                        );
                        // Latency is the final attempt alone: a request
                        // accepted after N sheds contributes one accepted
                        // sample timed from the accepted attempt, plus N
                        // shed events — not one sample inflated by backoff.
                        let sample = match &outcome.response {
                            Ok(response) => BenchSample {
                                status: response.status,
                                latency: outcome.last_attempt,
                                attempts: outcome.attempts,
                                sheds: outcome.sheds,
                                partial: response.body.contains("\"partial\":true"),
                                request_id: response
                                    .header("x-soi-request-id")
                                    .and_then(|v| v.parse().ok()),
                            },
                            Err(_) => BenchSample {
                                status: 0,
                                latency: outcome.last_attempt,
                                attempts: outcome.attempts,
                                sheds: outcome.sheds,
                                partial: false,
                                request_id: None,
                            },
                        };
                        local.push(sample);
                        j += concurrency.max(1);
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            if let Ok(local) = worker.join() {
                samples.extend(local);
            }
        }
        // Query load finished: tell the ingest driver to stop at its next
        // chunk boundary rather than draining a large file unobserved.
        query_load_done.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(worker) = ingest_worker {
            if let Ok(drive) = worker.join() {
                ingest_drive = Some(drive);
            }
        }
    });
    let wall = started.elapsed();

    let ok = samples.iter().filter(|s| s.status == 200).count();
    // Shed accounting distinguishes *events* (every 503 answered across all
    // attempts, the overload signal) from *terminal* sheds (requests that
    // exhausted retries still shed — those failed outright).
    let shed_events: u64 = samples.iter().map(|s| s.sheds as u64).sum();
    let sheds = samples.iter().filter(|s| s.status == 503).count();
    let errors = samples
        .iter()
        .filter(|s| s.status != 200 && s.status != 503 && s.status != 0)
        .count();
    let transport_errors = samples.iter().filter(|s| s.status == 0).count();
    let partials = samples.iter().filter(|s| s.partial).count();
    let retried = samples.iter().filter(|s| s.attempts > 1).count();
    if ok == 0 && sheds == 0 && errors == 0 {
        return Err(SoiError::not_found(format!(
            "no response from {addr} ({transport_errors} transport failures); is `soi serve` running?"
        )));
    }

    // Exact percentiles over the *accepted* (200) latencies: shed requests
    // return in microseconds and would flatter the tail.
    let mut accepted: Vec<f64> = samples
        .iter()
        .filter(|s| s.status == 200)
        .map(|s| s.latency.as_secs_f64() * 1e3)
        .collect();
    accepted.sort_by(|a, b| a.total_cmp(b));
    let pct = |q: f64| -> f64 {
        if accepted.is_empty() {
            return f64::NAN;
        }
        let idx = ((accepted.len() - 1) as f64 * q).round() as usize;
        accepted[idx]
    };
    let (p50, p95, p99) = (pct(0.5), pct(0.95), pct(0.99));

    let mut out = std::io::stdout().lock();
    writeln!(
        out,
        "bench-serve: {} requests in {:.2}s ({:.1} req/s)",
        samples.len(),
        wall.as_secs_f64(),
        samples.len() as f64 / wall.as_secs_f64().max(1e-9)
    )?;
    writeln!(
        out,
        "  ok {ok}  shed-events {shed_events} (terminal {sheds})  error {errors}  transport-error {transport_errors}  partial {partials}  retried {retried}"
    )?;
    writeln!(
        out,
        "  accepted latency ms (final attempt): p50 {p50:.2}  p95 {p95:.2}  p99 {p99:.2}"
    )?;
    let ids = id_stats(&samples);
    writeln!(
        out,
        "  request ids: {} seen, {} distinct, {} duplicates, {} gaps",
        ids.seen, ids.distinct, ids.duplicates, ids.gaps
    )?;
    if let Some(drive) = &ingest_drive {
        writeln!(
            out,
            "  ingest: {} batches ({} accepted, {} rejected), {} ops, {} folds, last epoch {}",
            drive.batches,
            drive.accepted_batches,
            drive.rejected,
            drive.ops,
            drive.folds,
            drive.last_epoch
        )?;
    }

    if let Some(stats_path) = args.get("stats-json") {
        let mut obj = json::JsonWriter::object();
        obj.field_u64("requests", samples.len() as u64);
        obj.field_u64("ok", ok as u64);
        obj.field_u64("sheds", shed_events);
        obj.field_u64("sheds_terminal", sheds as u64);
        obj.field_u64("errors", errors as u64);
        obj.field_u64("transport_errors", transport_errors as u64);
        obj.field_u64("partials", partials as u64);
        obj.field_u64("retried", retried as u64);
        obj.field_f64("wall_seconds", wall.as_secs_f64());
        obj.field_f64("p50_ms", p50);
        obj.field_f64("p95_ms", p95);
        obj.field_f64("p99_ms", p99);
        obj.field_u64("id_seen", ids.seen);
        obj.field_u64("id_distinct", ids.distinct);
        obj.field_u64("id_duplicates", ids.duplicates);
        obj.field_u64("id_gaps", ids.gaps);
        match ids.min {
            Some(v) => obj.field_u64("id_min", v),
            None => obj.field_raw("id_min", "null"),
        }
        match ids.max {
            Some(v) => obj.field_u64("id_max", v),
            None => obj.field_raw("id_max", "null"),
        }
        if let Some(drive) = &ingest_drive {
            let mut ingest = json::JsonWriter::object();
            ingest.field_u64("batches", drive.batches);
            ingest.field_u64("accepted_batches", drive.accepted_batches);
            ingest.field_u64("rejected", drive.rejected);
            ingest.field_u64("ops", drive.ops);
            ingest.field_u64("folds", drive.folds);
            ingest.field_u64("last_epoch", drive.last_epoch);
            obj.field_raw("ingest", &ingest.finish());
        }
        std::fs::write(stats_path, obj.finish()).at_path(stats_path)?;
    }
    Ok(())
}

/// `soi ingest FILE --addr HOST:PORT`: streams a JSON-lines delta file to
/// a running server's `POST /ingest`, in batches.
fn cmd_ingest(args: &Args) -> Result<()> {
    use std::time::Duration;
    let path = args.positional().or(args.get("file")).ok_or_else(|| {
        SoiError::invalid("ingest needs a delta file: soi ingest FILE --addr ...")
    })?;
    let addr: std::net::SocketAddr = args
        .require("addr")?
        .parse()
        .map_err(|_| SoiError::invalid("--addr must be HOST:PORT"))?;
    let timeout = Duration::from_millis(args.get_parsed("timeout-ms", 5000u64)?);
    let batch: usize = args.get_parsed("batch", 256usize)?;
    let text = std::fs::read_to_string(path).at_path(path)?;
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if lines.is_empty() {
        return Err(SoiError::invalid(format!("no delta lines in {path}")));
    }
    let mut out = std::io::stdout().lock();
    let mut sent = 0usize;
    let mut folds = 0u64;
    let mut last_epoch = 0u64;
    for chunk in lines.chunks(batch.max(1)) {
        let body = chunk.join("\n");
        let response = soi_serve::client::request(addr, "POST", "/ingest", Some(&body), timeout)?;
        if response.status != 200 {
            return Err(SoiError::invalid(format!(
                "/ingest answered {} after {} of {} ops accepted: {}",
                response.status,
                sent,
                lines.len(),
                response.body
            )));
        }
        sent += chunk.len();
        if let Ok(doc) = json::parse(&response.body) {
            if let Some(e) = doc.get("epoch").and_then(|v| v.as_f64()) {
                last_epoch = e as u64;
            }
            if doc.get("folded").and_then(|v| v.as_bool()) == Some(true) {
                folds += 1;
            }
        }
    }
    writeln!(
        out,
        "ingested {} ops in {} batches ({} folds); server epoch {}",
        sent,
        lines.len().div_ceil(batch.max(1)),
        folds,
        last_epoch
    )?;
    Ok(())
}

/// A tiny deterministic RNG (splitmix64) so `gen-deltas` needs no
/// external dependency and the same seed always emits the same stream.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)` (0 when `n` is 0).
    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }
}

/// `soi gen-deltas --data DIR --out FILE`: writes a deterministic
/// JSON-lines delta stream (POI/photo inserts and deletes) valid against
/// the dataset regardless of where the server folds epochs: insert
/// positions are convex combinations of existing POI positions (always
/// inside the index extent), and delete ids are distinct values below
/// `len - total_deletes`, so they stay in range however the dense-id
/// reassignment of intervening folds lands.
fn cmd_gen_deltas(args: &Args) -> Result<()> {
    let dataset = load(args)?;
    let out_path = args.require("out")?;
    let total: usize = args.get_parsed("ops", 256usize)?;
    let seed: u64 = args.get_parsed("seed", 42u64)?;
    let del_ratio: f64 = args.get_parsed("del-ratio", 0.2f64)?;
    let photo_ratio: f64 = args.get_parsed("photo-ratio", 0.3f64)?;
    if !(0.0..=1.0).contains(&del_ratio) || !(0.0..=1.0).contains(&photo_ratio) {
        return Err(SoiError::invalid(
            "--del-ratio and --photo-ratio must lie in [0, 1]",
        ));
    }
    if dataset.pois.is_empty() {
        return Err(SoiError::invalid(
            "gen-deltas needs a dataset with POIs to sample positions from",
        ));
    }
    let mut rng = SplitMix64(seed);

    // Budget the deletes up front so ids can be chosen distinct and
    // fold-proof: any delete id stays below the smallest size the
    // collection can shrink to.
    let dels = ((total as f64) * del_ratio) as usize;
    let photo_dels = (((dels as f64) * photo_ratio) as usize).min(dataset.photos.len() / 2);
    let poi_dels = (dels - ((dels as f64) * photo_ratio) as usize).min(dataset.pois.len() / 2);
    let pick_distinct = |rng: &mut SplitMix64, count: usize, bound: usize| -> Vec<usize> {
        let mut taken = std::collections::HashSet::new();
        let mut ids = Vec::with_capacity(count);
        while ids.len() < count {
            let id = rng.below(bound);
            if taken.insert(id) {
                ids.push(id);
            }
        }
        ids
    };
    let mut poi_del_ids = pick_distinct(&mut rng, poi_dels, dataset.pois.len() - poi_dels);
    let mut photo_del_ids = pick_distinct(
        &mut rng,
        photo_dels,
        (dataset.photos.len() - photo_dels).max(1),
    );

    let sample_pos = |rng: &mut SplitMix64| {
        let a = dataset
            .pois
            .get(soi_common::PoiId::from_index(rng.below(dataset.pois.len())));
        let b = dataset
            .pois
            .get(soi_common::PoiId::from_index(rng.below(dataset.pois.len())));
        let t = rng.next_f64();
        soi_geo::Point::new(
            a.pos.x + (b.pos.x - a.pos.x) * t,
            a.pos.y + (b.pos.y - a.pos.y) * t,
        )
    };
    let sample_terms = |rng: &mut SplitMix64| -> Vec<usize> {
        let vocab = dataset.vocab.len();
        (0..1 + rng.below(3))
            .map(|_| rng.below(vocab.max(1)))
            .filter(|_| vocab > 0)
            .collect()
    };
    let render_ids = |ids: &[usize]| {
        let body: Vec<String> = ids.iter().map(usize::to_string).collect();
        format!("[{}]", body.join(","))
    };

    let mut lines = Vec::with_capacity(total);
    let mut counts = [0u64; 4];
    for _ in 0..total {
        // Spend the delete budgets uniformly across the stream, adds fill
        // the rest (photo adds at --photo-ratio).
        let remaining = total - lines.len();
        let budget = poi_del_ids.len() + photo_del_ids.len();
        let line = if budget > 0 && rng.below(remaining) < budget {
            let take_photo = rng.below(budget) < photo_del_ids.len();
            if take_photo {
                counts[3] += 1;
                let id = photo_del_ids.pop().unwrap_or_default();
                format!("{{\"op\":\"del_photo\",\"id\":{id}}}")
            } else {
                counts[2] += 1;
                let id = poi_del_ids.pop().unwrap_or_default();
                format!("{{\"op\":\"del_poi\",\"id\":{id}}}")
            }
        } else {
            let pos = sample_pos(&mut rng);
            let terms = render_ids(&sample_terms(&mut rng));
            if rng.next_f64() < photo_ratio {
                counts[1] += 1;
                format!(
                    "{{\"op\":\"add_photo\",\"x\":{},\"y\":{},\"tags\":{terms}}}",
                    pos.x, pos.y
                )
            } else {
                counts[0] += 1;
                format!(
                    "{{\"op\":\"add_poi\",\"x\":{},\"y\":{},\"kw\":{terms},\"weight\":1.0}}",
                    pos.x, pos.y
                )
            }
        };
        lines.push(line);
    }
    // Every line must round-trip the real parser before it is written —
    // a generator that emits rejectable ops poisons whole ingest batches.
    for (i, line) in lines.iter().enumerate() {
        soi_index::DeltaOp::parse_line(line, &dataset.vocab)
            .map_err(|e| SoiError::invalid(format!("generated line {}: {e}", i + 1)))?;
    }
    let mut doc = lines.join("\n");
    doc.push('\n');
    std::fs::write(out_path, doc).at_path(out_path)?;
    let mut out = std::io::stdout().lock();
    writeln!(
        out,
        "wrote {} delta ops to {out_path} (add_poi {}, add_photo {}, del_poi {}, del_photo {}; seed {seed})",
        total, counts[0], counts[1], counts[2], counts[3]
    )?;
    Ok(())
}
