//! Geo-tagged photos.

use soi_common::PhotoId;
use soi_geo::{Point, Rect};
use soi_text::KeywordSet;

/// A geo-tagged photo: `r = ⟨(x_r, y_r), Ψ_r⟩` (Sec. 4.1.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Photo {
    /// The photo's identifier (dense index into its collection).
    pub id: PhotoId,
    /// Location.
    pub pos: Point,
    /// Tag set `Ψ_r`.
    pub tags: KeywordSet,
}

/// A dense, id-indexed collection of photos.
#[derive(Debug, Clone, Default)]
pub struct PhotoCollection {
    photos: Vec<Photo>,
}

impl PhotoCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a photo and returns its id.
    pub fn add(&mut self, pos: Point, tags: KeywordSet) -> PhotoId {
        let id = PhotoId::from_index(self.photos.len());
        self.photos.push(Photo { id, pos, tags });
        id
    }

    /// The photo with id `id`.
    #[inline]
    pub fn get(&self, id: PhotoId) -> &Photo {
        &self.photos[id.index()]
    }

    /// Number of photos.
    pub fn len(&self) -> usize {
        self.photos.len()
    }

    /// Returns true if the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.photos.is_empty()
    }

    /// Iterates over photos in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Photo> {
        self.photos.iter()
    }

    /// The photos as an id-ordered slice (for chunked parallel scans).
    pub fn as_slice(&self) -> &[Photo] {
        &self.photos
    }

    /// Bounding rectangle of all photo locations (None if empty).
    pub fn extent(&self) -> Option<Rect> {
        Rect::bounding(self.photos.iter().map(|p| p.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::KeywordId;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    #[test]
    fn add_and_get() {
        let mut c = PhotoCollection::new();
        let id = c.add(Point::new(1.0, 2.0), tags(&[3, 4]));
        assert_eq!(id.index(), 0);
        assert_eq!(c.get(id).pos, Point::new(1.0, 2.0));
        assert!(c.get(id).tags.contains(KeywordId(3)));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn extent() {
        let mut c = PhotoCollection::new();
        assert!(c.extent().is_none());
        c.add(Point::new(0.0, 0.0), tags(&[]));
        c.add(Point::new(2.0, -1.0), tags(&[]));
        let e = c.extent().unwrap();
        assert_eq!(e.min, Point::new(0.0, -1.0));
        assert_eq!(e.max, Point::new(2.0, 0.0));
    }
}
