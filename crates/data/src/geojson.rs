//! GeoJSON export for visual exploration.
//!
//! The paper's output is inherently visual (Figs. 1–2 show maps of top
//! SOIs); this module serialises networks, ranked streets, POIs, and photo
//! summaries into GeoJSON FeatureCollections that drop straight into any
//! web map (Leaflet, Mapbox, geojson.io). JSON is built by hand — the
//! workspace deliberately has no JSON dependency.

use crate::dataset::Dataset;
use soi_common::{PhotoId, StreetId};
use soi_network::RoadNetwork;
use std::fmt::Write as _;

/// A property value of a GeoJSON feature.
#[derive(Debug, Clone)]
pub enum PropValue {
    /// A string property (escaped on write).
    Str(String),
    /// A finite numeric property.
    Num(f64),
    /// An integer property.
    Int(i64),
}

impl From<&str> for PropValue {
    fn from(v: &str) -> Self {
        PropValue::Str(v.to_string())
    }
}
impl From<String> for PropValue {
    fn from(v: String) -> Self {
        PropValue::Str(v)
    }
}
impl From<f64> for PropValue {
    fn from(v: f64) -> Self {
        PropValue::Num(v)
    }
}
impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_number(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_props(out: &mut String, props: &[(&str, PropValue)]) {
    out.push('{');
    for (i, (key, value)) in props.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape_json(key));
        match value {
            PropValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape_json(s));
            }
            PropValue::Num(n) => write_number(out, *n),
            PropValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
        }
    }
    out.push('}');
}

/// A GeoJSON feature under construction.
#[derive(Debug, Clone)]
pub struct Feature {
    geometry: String,
    properties: Vec<(&'static str, PropValue)>,
}

impl Feature {
    /// A Point feature.
    pub fn point(x: f64, y: f64) -> Self {
        let mut geometry = String::from("{\"type\":\"Point\",\"coordinates\":[");
        write_number(&mut geometry, x);
        geometry.push(',');
        write_number(&mut geometry, y);
        geometry.push_str("]}");
        Self {
            geometry,
            properties: Vec::new(),
        }
    }

    /// A LineString feature from a coordinate chain.
    pub fn line_string<I: IntoIterator<Item = (f64, f64)>>(coords: I) -> Self {
        let mut geometry = String::from("{\"type\":\"LineString\",\"coordinates\":[");
        for (i, (x, y)) in coords.into_iter().enumerate() {
            if i > 0 {
                geometry.push(',');
            }
            geometry.push('[');
            write_number(&mut geometry, x);
            geometry.push(',');
            write_number(&mut geometry, y);
            geometry.push(']');
        }
        geometry.push_str("]}");
        Self {
            geometry,
            properties: Vec::new(),
        }
    }

    /// A MultiLineString feature from several coordinate chains.
    pub fn multi_line_string<O, I>(lines: O) -> Self
    where
        O: IntoIterator<Item = I>,
        I: IntoIterator<Item = (f64, f64)>,
    {
        let mut geometry = String::from("{\"type\":\"MultiLineString\",\"coordinates\":[");
        for (li, line) in lines.into_iter().enumerate() {
            if li > 0 {
                geometry.push(',');
            }
            geometry.push('[');
            for (i, (x, y)) in line.into_iter().enumerate() {
                if i > 0 {
                    geometry.push(',');
                }
                geometry.push('[');
                write_number(&mut geometry, x);
                geometry.push(',');
                write_number(&mut geometry, y);
                geometry.push(']');
            }
            geometry.push(']');
        }
        geometry.push_str("]}");
        Self {
            geometry,
            properties: Vec::new(),
        }
    }

    /// Adds a property.
    pub fn prop(mut self, key: &'static str, value: impl Into<PropValue>) -> Self {
        self.properties.push((key, value.into()));
        self
    }

    fn write_to(&self, out: &mut String) {
        out.push_str("{\"type\":\"Feature\",\"geometry\":");
        out.push_str(&self.geometry);
        out.push_str(",\"properties\":");
        write_props(out, &self.properties);
        out.push('}');
    }
}

/// Renders features as a FeatureCollection document.
pub fn feature_collection(features: &[Feature]) -> String {
    let mut out = String::from("{\"type\":\"FeatureCollection\",\"features\":[");
    for (i, f) in features.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        f.write_to(&mut out);
    }
    out.push_str("]}");
    out
}

/// A street as a MultiLineString feature (one line per segment, robust to
/// any segment orientation) with its name.
pub fn street_feature(network: &RoadNetwork, street: StreetId) -> Feature {
    let lines: Vec<Vec<(f64, f64)>> = network
        .street(street)
        .segments
        .iter()
        .map(|&sid| {
            let g = network.segment(sid).geom;
            vec![(g.a.x, g.a.y), (g.b.x, g.b.y)]
        })
        .collect();
    Feature::multi_line_string(lines)
        .prop("name", network.street(street).name.as_str())
        .prop("street_id", street.raw() as i64)
}

/// The whole road network as a FeatureCollection of streets.
pub fn network_to_geojson(network: &RoadNetwork) -> String {
    let features: Vec<Feature> = network
        .streets()
        .iter()
        .map(|s| street_feature(network, s.id))
        .collect();
    feature_collection(&features)
}

/// Ranked streets (e.g. a k-SOI answer) as a FeatureCollection with
/// `rank` and `interest` properties.
pub fn ranked_streets_to_geojson(network: &RoadNetwork, ranked: &[(StreetId, f64)]) -> String {
    let features: Vec<Feature> = ranked
        .iter()
        .enumerate()
        .map(|(i, &(street, interest))| {
            street_feature(network, street)
                .prop("rank", (i + 1) as i64)
                .prop("interest", interest)
        })
        .collect();
    feature_collection(&features)
}

/// A photo selection as Point features with resolved tag strings.
pub fn photos_to_geojson(dataset: &Dataset, photos: &[PhotoId]) -> String {
    let features: Vec<Feature> = photos
        .iter()
        .map(|&pid| {
            let photo = dataset.photos.get(pid);
            let tags: Vec<&str> = photo
                .tags
                .iter()
                .filter_map(|t| dataset.vocab.term(t))
                .collect();
            Feature::point(photo.pos.x, photo.pos.y)
                .prop("photo_id", pid.raw() as i64)
                .prop("tags", tags.join(","))
        })
        .collect();
    feature_collection(&features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::photo::PhotoCollection;
    use crate::poi::PoiCollection;
    use soi_geo::Point;
    use soi_text::{KeywordSet, Vocabulary};

    /// A minimal JSON well-formedness check: string-aware bracket matching.
    fn assert_balanced_json(s: &str) {
        let mut stack = Vec::new();
        let mut in_string = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => stack.push(c),
                '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced brace in {s}"),
                ']' => assert_eq!(stack.pop(), Some('['), "unbalanced bracket in {s}"),
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string in {s}");
        assert!(stack.is_empty(), "unclosed {stack:?} in {s}");
    }

    fn tiny_dataset() -> Dataset {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points(
            "Quote \"Str\"\nLine",
            &[
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
            ],
        );
        let network = b.build().unwrap();
        let mut vocab = Vocabulary::new();
        let t = vocab.intern("café");
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(0.5, 0.1), KeywordSet::from_ids([t]));
        Dataset::new("tiny", network, vocab, PoiCollection::new(), photos)
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape_json("\u{01}"), "\\u0001");
        assert_eq!(escape_json("café"), "café");
    }

    #[test]
    fn features_are_well_formed() {
        let f = Feature::point(1.5, -2.5)
            .prop("name", "spot \"x\"")
            .prop("score", 0.75)
            .prop("rank", 3i64);
        let doc = feature_collection(&[f]);
        assert_balanced_json(&doc);
        assert!(doc.contains("\"type\":\"FeatureCollection\""));
        assert!(doc.contains("\"coordinates\":[1.5,-2.5]"));
        assert!(doc.contains("\"name\":\"spot \\\"x\\\"\""));
        assert!(doc.contains("\"score\":0.75"));
        assert!(doc.contains("\"rank\":3"));
    }

    #[test]
    fn line_string_geometry() {
        let f = Feature::line_string([(0.0, 0.0), (1.0, 2.0)]);
        let doc = feature_collection(&[f]);
        assert_balanced_json(&doc);
        assert!(doc.contains("\"LineString\""));
        assert!(doc.contains("[[0,0],[1,2]]"));
    }

    #[test]
    fn network_and_ranked_exports() {
        let d = tiny_dataset();
        let all = network_to_geojson(&d.network);
        assert_balanced_json(&all);
        assert!(all.contains("MultiLineString"));
        // Street name with quote and newline survives as valid JSON.
        assert!(all.contains("Quote \\\"Str\\\"\\nLine"));

        let ranked = ranked_streets_to_geojson(&d.network, &[(soi_common::StreetId(0), 123.5)]);
        assert_balanced_json(&ranked);
        assert!(ranked.contains("\"rank\":1"));
        assert!(ranked.contains("\"interest\":123.5"));
    }

    #[test]
    fn photo_export_resolves_tags() {
        let d = tiny_dataset();
        let doc = photos_to_geojson(&d, &[soi_common::PhotoId(0)]);
        assert_balanced_json(&doc);
        assert!(doc.contains("\"tags\":\"café\""));
        assert!(doc.contains("\"photo_id\":0"));
    }

    #[test]
    fn empty_collection_is_valid() {
        let doc = feature_collection(&[]);
        assert_balanced_json(&doc);
        assert_eq!(doc, "{\"type\":\"FeatureCollection\",\"features\":[]}");
    }

    use soi_network::RoadNetwork;
}
