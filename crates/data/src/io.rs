//! Dataset persistence: a directory of TSV files.
//!
//! Layout of a saved dataset directory:
//!
//! ```text
//! <dir>/network.tsv   — road network (see soi_network::io)
//! <dir>/vocab.tsv     — one keyword per line; KeywordId = line order
//! <dir>/pois.tsv      — x \t y \t weight \t k1,k2,...   (PoiId = line order)
//! <dir>/photos.tsv    — x \t y \t k1,k2,...             (PhotoId = line order)
//! <dir>/name.txt      — dataset name
//! ```

use crate::dataset::Dataset;
use crate::photo::PhotoCollection;
use crate::poi::PoiCollection;
use soi_common::{KeywordId, Result, SoiError};
use soi_geo::Point;
use soi_text::{KeywordSet, Vocabulary};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

fn format_keywords(set: &KeywordSet) -> String {
    let mut s = String::new();
    for (i, k) in set.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&k.raw().to_string());
    }
    s
}

fn parse_keywords(field: &str, line: usize, vocab_len: usize) -> Result<KeywordSet> {
    if field.is_empty() {
        return Ok(KeywordSet::empty());
    }
    let mut ids = Vec::new();
    for part in field.split(',') {
        let raw: u32 = part
            .parse()
            .map_err(|e| SoiError::parse(line, format!("bad keyword id {part:?}: {e}")))?;
        if raw as usize >= vocab_len {
            return Err(SoiError::parse(
                line,
                format!("keyword id {raw} out of vocabulary range"),
            ));
        }
        ids.push(KeywordId(raw));
    }
    Ok(KeywordSet::from_ids(ids))
}

/// Saves `dataset` into directory `dir` (created if missing).
pub fn save_dataset(dataset: &Dataset, dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;

    soi_network::io::save_network(&dataset.network, dir.join("network.tsv"))?;
    std::fs::write(dir.join("name.txt"), &dataset.name)?;

    let mut w = BufWriter::new(std::fs::File::create(dir.join("vocab.tsv"))?);
    for (_, term) in dataset.vocab.iter() {
        writeln!(w, "{term}")?;
    }
    drop(w);

    let mut w = BufWriter::new(std::fs::File::create(dir.join("pois.tsv"))?);
    for poi in dataset.pois.iter() {
        writeln!(
            w,
            "{}\t{}\t{}\t{}",
            poi.pos.x,
            poi.pos.y,
            poi.weight,
            format_keywords(&poi.keywords)
        )?;
    }
    drop(w);

    let mut w = BufWriter::new(std::fs::File::create(dir.join("photos.tsv"))?);
    for photo in dataset.photos.iter() {
        writeln!(
            w,
            "{}\t{}\t{}",
            photo.pos.x,
            photo.pos.y,
            format_keywords(&photo.tags)
        )?;
    }
    Ok(())
}

/// Loads a dataset from directory `dir`.
pub fn load_dataset(dir: impl AsRef<Path>) -> Result<Dataset> {
    let dir = dir.as_ref();
    let network = soi_network::io::load_network(dir.join("network.tsv"))?;
    let name = std::fs::read_to_string(dir.join("name.txt"))
        .unwrap_or_else(|_| "unnamed".to_string())
        .trim()
        .to_string();

    let mut vocab = Vocabulary::new();
    let file = std::fs::File::open(dir.join("vocab.tsv"))?;
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| SoiError::parse(i + 1, e.to_string()))?;
        vocab.intern(&line);
    }

    let mut pois = PoiCollection::new();
    let file = std::fs::File::open(dir.join("pois.tsv"))?;
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| SoiError::parse(i + 1, e.to_string()))?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 4 {
            return Err(SoiError::parse(i + 1, "expected 4 fields in POI record"));
        }
        let x: f64 = fields[0]
            .parse()
            .map_err(|e| SoiError::parse(i + 1, format!("bad x: {e}")))?;
        let y: f64 = fields[1]
            .parse()
            .map_err(|e| SoiError::parse(i + 1, format!("bad y: {e}")))?;
        let weight: f64 = fields[2]
            .parse()
            .map_err(|e| SoiError::parse(i + 1, format!("bad weight: {e}")))?;
        let keywords = parse_keywords(fields[3], i + 1, vocab.len())?;
        pois.add_weighted(Point::new(x, y), keywords, weight);
    }

    let mut photos = PhotoCollection::new();
    let file = std::fs::File::open(dir.join("photos.tsv"))?;
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| SoiError::parse(i + 1, e.to_string()))?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 {
            return Err(SoiError::parse(i + 1, "expected 3 fields in photo record"));
        }
        let x: f64 = fields[0]
            .parse()
            .map_err(|e| SoiError::parse(i + 1, format!("bad x: {e}")))?;
        let y: f64 = fields[1]
            .parse()
            .map_err(|e| SoiError::parse(i + 1, format!("bad y: {e}")))?;
        let tags = parse_keywords(fields[2], i + 1, vocab.len())?;
        photos.add(Point::new(x, y), tags);
    }

    Ok(Dataset::new(name, network, vocab, pois, photos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_network::RoadNetwork;

    fn sample() -> Dataset {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Road", &[Point::new(0.0, 0.0), Point::new(2.0, 0.0)]);
        let network = b.build().unwrap();
        let mut vocab = Vocabulary::new();
        let shop = vocab.intern("shop");
        let food = vocab.intern("food");
        let mut pois = PoiCollection::new();
        pois.add(Point::new(0.5, 0.1), KeywordSet::from_ids([shop]));
        pois.add_weighted(Point::new(1.0, -0.1), KeywordSet::from_ids([shop, food]), 2.0);
        pois.add(Point::new(1.5, 0.0), KeywordSet::empty());
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(0.25, 0.0), KeywordSet::from_ids([food]));
        Dataset::new("sample", network, vocab, pois, photos)
    }

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("soi_dataset_io_test");
        let d = sample();
        save_dataset(&d, &dir).unwrap();
        let loaded = load_dataset(&dir).unwrap();

        assert_eq!(loaded.name, "sample");
        assert_eq!(loaded.network.num_segments(), d.network.num_segments());
        assert_eq!(loaded.vocab.len(), d.vocab.len());
        assert_eq!(loaded.pois.len(), d.pois.len());
        assert_eq!(loaded.photos.len(), d.photos.len());
        for (a, b) in d.pois.iter().zip(loaded.pois.iter()) {
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.keywords, b.keywords);
            assert_eq!(a.weight, b.weight);
        }
        for (a, b) in d.photos.iter().zip(loaded.photos.iter()) {
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.tags, b.tags);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_out_of_vocab_keyword() {
        let dir = std::env::temp_dir().join("soi_dataset_io_bad");
        let d = sample();
        save_dataset(&d, &dir).unwrap();
        std::fs::write(dir.join("pois.tsv"), "0\t0\t1\t99\n").unwrap();
        assert!(load_dataset(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keyword_field_roundtrip() {
        let set = KeywordSet::from_ids([KeywordId(3), KeywordId(0), KeywordId(7)]);
        let s = format_keywords(&set);
        assert_eq!(s, "0,3,7");
        let back = parse_keywords(&s, 1, 10).unwrap();
        assert_eq!(back, set);
        assert!(parse_keywords("", 1, 10).unwrap().is_empty());
        assert!(parse_keywords("x", 1, 10).is_err());
    }
}
