//! Dataset persistence: a directory of TSV files.
//!
//! Layout of a saved dataset directory:
//!
//! ```text
//! <dir>/network.tsv   — road network (see soi_network::io)
//! <dir>/vocab.tsv     — one keyword per line; KeywordId = line order
//! <dir>/pois.tsv      — x \t y \t weight \t k1,k2,...   (PoiId = line order)
//! <dir>/photos.tsv    — x \t y \t k1,k2,...             (PhotoId = line order)
//! <dir>/name.txt      — dataset name (optional; defaults to "unnamed")
//! ```
//!
//! ### Failure semantics
//!
//! [`load_dataset_with`] applies the workspace-wide ingestion policy (see
//! `soi_common::load`): **Strict** aborts on the first invalid record with
//! file/record/field context; **Lenient** skips invalid POI and photo
//! records, counting them per [`ValidationKind`] in the returned
//! [`LoadReport`]. Validation rules checked per record:
//!
//! - coordinates must be finite ([`ValidationKind::NonFiniteCoordinate`]);
//! - POI weights must be finite and non-negative
//!   ([`ValidationKind::InvalidWeight`]);
//! - keyword ids must fall inside the vocabulary
//!   ([`ValidationKind::KeywordOutOfRange`]);
//! - records must have the right field count and parsable numbers
//!   ([`ValidationKind::MalformedRecord`]).
//!
//! `name.txt` is optional: a missing file falls back to `"unnamed"` with a
//! report warning, while any other I/O failure (permissions, encoding)
//! propagates — silently renaming a dataset because its directory is
//! unreadable would mask real damage.
//!
//! Keyword ids are positional, so a duplicated `vocab.tsv` line cannot be
//! simply dropped: every later id would silently shift onto a different
//! term. Strict mode rejects the duplicate; lenient mode interns a
//! position-preserving placeholder and counts the record as malformed.

use crate::dataset::Dataset;
use crate::photo::PhotoCollection;
use crate::poi::PoiCollection;
use soi_common::{KeywordId, LoadOptions, LoadReport, Result, ResultExt, SoiError, ValidationKind};
use soi_geo::Point;
use soi_text::{KeywordSet, Vocabulary};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

fn format_keywords(set: &KeywordSet) -> String {
    let mut s = String::new();
    for (i, k) in set.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&k.raw().to_string());
    }
    s
}

fn parse_keywords(field: &str, vocab_len: usize) -> Result<KeywordSet> {
    if field.is_empty() {
        return Ok(KeywordSet::empty());
    }
    let mut ids = Vec::new();
    for part in field.split(',') {
        let raw: u32 = part.parse().map_err(|e| {
            SoiError::validation(
                ValidationKind::MalformedRecord,
                format!("bad keyword id {part:?}: {e}"),
            )
        })?;
        if raw as usize >= vocab_len {
            return Err(SoiError::validation(
                ValidationKind::KeywordOutOfRange,
                format!(
                    "keyword id {raw} out of vocabulary range (vocabulary has {vocab_len} terms)"
                ),
            ));
        }
        ids.push(KeywordId(raw));
    }
    Ok(KeywordSet::from_ids(ids))
}

fn parse_coord(field: &str, name: &'static str) -> Result<f64> {
    let v: f64 = field.parse().map_err(|e| {
        SoiError::validation(ValidationKind::MalformedRecord, format!("bad {name}: {e}"))
            .in_field(name)
    })?;
    if !v.is_finite() {
        return Err(SoiError::validation(
            ValidationKind::NonFiniteCoordinate,
            format!("{name} coordinate {v} is not finite"),
        )
        .in_field(name));
    }
    Ok(v)
}

fn parse_weight(field: &str) -> Result<f64> {
    let w: f64 = field.parse().map_err(|e| {
        SoiError::validation(ValidationKind::MalformedRecord, format!("bad weight: {e}"))
            .in_field("weight")
    })?;
    if !w.is_finite() || w < 0.0 {
        return Err(SoiError::validation(
            ValidationKind::InvalidWeight,
            format!("weight {w} must be finite and non-negative"),
        )
        .in_field("weight"));
    }
    Ok(w)
}

/// Saves `dataset` into directory `dir` (created if missing).
pub fn save_dataset(dataset: &Dataset, dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).at_path(dir)?;

    soi_network::io::save_network(&dataset.network, dir.join("network.tsv"))?;
    let name_path = dir.join("name.txt");
    std::fs::write(&name_path, &dataset.name).at_path(&name_path)?;

    let vocab_path = dir.join("vocab.tsv");
    let mut w = BufWriter::new(std::fs::File::create(&vocab_path).at_path(&vocab_path)?);
    for (_, term) in dataset.vocab.iter() {
        writeln!(w, "{term}").at_path(&vocab_path)?;
    }
    drop(w);

    let pois_path = dir.join("pois.tsv");
    let mut w = BufWriter::new(std::fs::File::create(&pois_path).at_path(&pois_path)?);
    for poi in dataset.pois.iter() {
        writeln!(
            w,
            "{}\t{}\t{}\t{}",
            poi.pos.x,
            poi.pos.y,
            poi.weight,
            format_keywords(&poi.keywords)
        )
        .at_path(&pois_path)?;
    }
    drop(w);

    let photos_path = dir.join("photos.tsv");
    let mut w = BufWriter::new(std::fs::File::create(&photos_path).at_path(&photos_path)?);
    for photo in dataset.photos.iter() {
        writeln!(
            w,
            "{}\t{}\t{}",
            photo.pos.x,
            photo.pos.y,
            format_keywords(&photo.tags)
        )
        .at_path(&photos_path)?;
    }
    Ok(())
}

/// Loads a dataset from directory `dir` with strict semantics.
pub fn load_dataset(dir: impl AsRef<Path>) -> Result<Dataset> {
    load_dataset_with(dir, &LoadOptions::strict()).map(|(d, _)| d)
}

/// Loads a dataset from directory `dir` under the given [`LoadOptions`],
/// returning the dataset together with a merged [`LoadReport`] covering the
/// network, vocabulary, POI, and photo files.
pub fn load_dataset_with(
    dir: impl AsRef<Path>,
    opts: &LoadOptions,
) -> Result<(Dataset, LoadReport)> {
    let dir = dir.as_ref();
    let mut report = LoadReport::new();

    let (network, net_report) = soi_network::io::load_network_with(dir.join("network.tsv"), opts)?;
    report.merge(&net_report);

    // name.txt is optional: absent -> default with a warning. Any other
    // failure (permissions, non-UTF-8 content) is real damage and propagates.
    let name_path = dir.join("name.txt");
    let name = match std::fs::read_to_string(&name_path) {
        Ok(s) => s.trim().to_string(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            report.warn("name.txt missing; using \"unnamed\"");
            "unnamed".to_string()
        }
        Err(e) => return Err(SoiError::io(e, &name_path)),
    };

    let vocab_path = dir.join("vocab.tsv");
    let mut vocab = Vocabulary::new();
    let file = std::fs::File::open(&vocab_path).at_path(&vocab_path)?;
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line
            .map_err(|e| SoiError::parse(i + 1, e.to_string()))
            .at_path(&vocab_path)?;
        let before = vocab.len();
        vocab.intern(&line);
        if vocab.len() == before {
            // Duplicate term. Ids are positional, so dropping the line would
            // shift every later id; strict rejects, lenient interns a
            // position-preserving placeholder.
            if !opts.is_lenient() {
                return Err(SoiError::validation(
                    ValidationKind::MalformedRecord,
                    format!("duplicate vocabulary term {line:?}"),
                )
                .at_record(i + 1)
                .at_path(&vocab_path));
            }
            vocab.intern(&format!("{line}#dup{}", i + 1));
            report.skip(ValidationKind::MalformedRecord);
            report.warn(format!(
                "vocab.tsv: duplicate term {line:?} at line {}; interned placeholder",
                i + 1
            ));
        } else {
            report.accept();
        }
    }

    let pois_path = dir.join("pois.tsv");
    let mut pois = PoiCollection::new();
    let file = std::fs::File::open(&pois_path).at_path(&pois_path)?;
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line
            .map_err(|e| SoiError::parse(i + 1, e.to_string()))
            .at_path(&pois_path)?;
        if line.is_empty() {
            continue;
        }
        match parse_poi(&line, vocab.len()) {
            Ok((pos, keywords, weight)) => {
                pois.add_weighted(pos, keywords, weight);
                report.accept();
            }
            Err(e) if opts.is_lenient() => {
                report.skip(
                    e.validation_kind()
                        .unwrap_or(ValidationKind::MalformedRecord),
                );
            }
            Err(e) => return Err(e.at_record(i + 1).at_path(&pois_path)),
        }
    }

    let photos_path = dir.join("photos.tsv");
    let mut photos = PhotoCollection::new();
    let file = std::fs::File::open(&photos_path).at_path(&photos_path)?;
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line
            .map_err(|e| SoiError::parse(i + 1, e.to_string()))
            .at_path(&photos_path)?;
        if line.is_empty() {
            continue;
        }
        match parse_photo(&line, vocab.len()) {
            Ok((pos, tags)) => {
                photos.add(pos, tags);
                report.accept();
            }
            Err(e) if opts.is_lenient() => {
                report.skip(
                    e.validation_kind()
                        .unwrap_or(ValidationKind::MalformedRecord),
                );
            }
            Err(e) => return Err(e.at_record(i + 1).at_path(&photos_path)),
        }
    }

    Ok((Dataset::new(name, network, vocab, pois, photos), report))
}

fn parse_poi(line: &str, vocab_len: usize) -> Result<(Point, KeywordSet, f64)> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 4 {
        return Err(SoiError::validation(
            ValidationKind::MalformedRecord,
            format!("expected 4 fields in POI record, got {}", fields.len()),
        ));
    }
    let x = parse_coord(fields[0], "x")?;
    let y = parse_coord(fields[1], "y")?;
    let weight = parse_weight(fields[2])?;
    let keywords = parse_keywords(fields[3], vocab_len).map_err(|e| e.in_field("keywords"))?;
    Ok((Point::new(x, y), keywords, weight))
}

fn parse_photo(line: &str, vocab_len: usize) -> Result<(Point, KeywordSet)> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 3 {
        return Err(SoiError::validation(
            ValidationKind::MalformedRecord,
            format!("expected 3 fields in photo record, got {}", fields.len()),
        ));
    }
    let x = parse_coord(fields[0], "x")?;
    let y = parse_coord(fields[1], "y")?;
    let tags = parse_keywords(fields[2], vocab_len).map_err(|e| e.in_field("tags"))?;
    Ok((Point::new(x, y), tags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::ErrorCategory;
    use soi_network::RoadNetwork;

    fn sample() -> Dataset {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Road", &[Point::new(0.0, 0.0), Point::new(2.0, 0.0)]);
        let network = b.build().unwrap();
        let mut vocab = Vocabulary::new();
        let shop = vocab.intern("shop");
        let food = vocab.intern("food");
        let mut pois = PoiCollection::new();
        pois.add(Point::new(0.5, 0.1), KeywordSet::from_ids([shop]));
        pois.add_weighted(
            Point::new(1.0, -0.1),
            KeywordSet::from_ids([shop, food]),
            2.0,
        );
        pois.add(Point::new(1.5, 0.0), KeywordSet::empty());
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(0.25, 0.0), KeywordSet::from_ids([food]));
        Dataset::new("sample", network, vocab, pois, photos)
    }

    fn tmp_dataset(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("soi_dataset_io_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        save_dataset(&sample(), &dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip() {
        let dir = tmp_dataset("roundtrip");
        let d = sample();
        let (loaded, report) = load_dataset_with(&dir, &LoadOptions::strict()).unwrap();

        assert!(report.is_clean(), "{report}");
        assert_eq!(loaded.name, "sample");
        assert_eq!(loaded.network.num_segments(), d.network.num_segments());
        assert_eq!(loaded.vocab.len(), d.vocab.len());
        assert_eq!(loaded.pois.len(), d.pois.len());
        assert_eq!(loaded.photos.len(), d.photos.len());
        for (a, b) in d.pois.iter().zip(loaded.pois.iter()) {
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.keywords, b.keywords);
            assert_eq!(a.weight, b.weight);
        }
        for (a, b) in d.photos.iter().zip(loaded.photos.iter()) {
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.tags, b.tags);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_out_of_vocab_keyword() {
        let dir = tmp_dataset("bad_keyword");
        std::fs::write(dir.join("pois.tsv"), "0\t0\t1\t99\n").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(
            err.validation_kind(),
            Some(ValidationKind::KeywordOutOfRange)
        );
        let text = err.to_string();
        assert!(text.contains("pois.tsv"), "{text}");
        assert!(text.contains("record 1"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_non_finite_poi_coordinate() {
        let dir = tmp_dataset("nan_poi");
        std::fs::write(dir.join("pois.tsv"), "NaN\t0\t1\t\n").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(
            err.validation_kind(),
            Some(ValidationKind::NonFiniteCoordinate)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_negative_weight() {
        let dir = tmp_dataset("neg_weight");
        std::fs::write(dir.join("pois.tsv"), "0\t0\t-3\t\n").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(err.validation_kind(), Some(ValidationKind::InvalidWeight));
        assert!(err.to_string().contains("field `weight`"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_wrong_field_count() {
        let dir = tmp_dataset("field_count");
        std::fs::write(dir.join("photos.tsv"), "0\t0\n").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(err.validation_kind(), Some(ValidationKind::MalformedRecord));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lenient_skips_bad_records_and_reports() {
        let dir = tmp_dataset("lenient");
        std::fs::write(
            dir.join("pois.tsv"),
            "0\t0\t1\t0\nNaN\t0\t1\t\n0\t0\t-1\t\n0\t0\t1\t99\nbroken\n0.5\t0.5\t2\t1\n",
        )
        .unwrap();
        let (d, report) = load_dataset_with(&dir, &LoadOptions::lenient()).unwrap();
        assert_eq!(d.pois.len(), 2);
        assert_eq!(report.skipped(ValidationKind::NonFiniteCoordinate), 1);
        assert_eq!(report.skipped(ValidationKind::InvalidWeight), 1);
        assert_eq!(report.skipped(ValidationKind::KeywordOutOfRange), 1);
        assert_eq!(report.skipped(ValidationKind::MalformedRecord), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_name_defaults_with_warning() {
        let dir = tmp_dataset("no_name");
        std::fs::remove_file(dir.join("name.txt")).unwrap();
        let (d, report) = load_dataset_with(&dir, &LoadOptions::strict()).unwrap();
        assert_eq!(d.name, "unnamed");
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].contains("name.txt"), "{report}");
        // The plain strict loader still works.
        assert_eq!(load_dataset(&dir).unwrap().name, "unnamed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn unreadable_name_propagates() {
        use std::os::unix::fs::PermissionsExt;
        let dir = tmp_dataset("locked_name");
        let name_path = dir.join("name.txt");
        let mut perms = std::fs::metadata(&name_path).unwrap().permissions();
        perms.set_mode(0o000);
        std::fs::set_permissions(&name_path, perms).unwrap();
        // Root bypasses permission checks, so skip the assertion when the
        // open unexpectedly succeeds.
        if std::fs::read_to_string(&name_path).is_err() {
            let err = load_dataset(&dir).unwrap_err();
            assert_eq!(err.category(), ErrorCategory::Io);
            assert!(err.to_string().contains("name.txt"), "{err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_vocab_term_strict_vs_lenient() {
        let dir = tmp_dataset("dup_vocab");
        std::fs::write(dir.join("vocab.tsv"), "shop\nfood\nshop\n").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(err.validation_kind(), Some(ValidationKind::MalformedRecord));
        assert!(err.to_string().contains("duplicate"), "{err}");

        let (d, report) = load_dataset_with(&dir, &LoadOptions::lenient()).unwrap();
        // Placeholder keeps positions: 3 terms, later ids unshifted.
        assert_eq!(d.vocab.len(), 3);
        assert_eq!(report.skipped(ValidationKind::MalformedRecord), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dataset_dir_is_not_found() {
        let err = load_dataset("/definitely/not/a/dataset").unwrap_err();
        assert_eq!(err.category(), ErrorCategory::NotFound);
    }

    #[test]
    fn keyword_field_roundtrip() {
        let set = KeywordSet::from_ids([KeywordId(3), KeywordId(0), KeywordId(7)]);
        let s = format_keywords(&set);
        assert_eq!(s, "0,3,7");
        let back = parse_keywords(&s, 10).unwrap();
        assert_eq!(back, set);
        assert!(parse_keywords("", 10).unwrap().is_empty());
        assert!(parse_keywords("x", 10).is_err());
    }
}
