//! Points of Interest.

use soi_common::PoiId;
use soi_geo::{Point, Rect};
use soi_text::KeywordSet;

/// A Point of Interest: `p = ⟨(x_p, y_p), Ψ_p⟩` (Sec. 3.1).
///
/// The `weight` field implements the remark after Definition 1 ("this
/// definition can be straightforwardly adapted in the case that POIs have
/// different weights"): mass sums weights instead of counting. The default
/// weight 1.0 recovers the paper's counting semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Poi {
    /// The POI's identifier (dense index into its collection).
    pub id: PoiId,
    /// Location.
    pub pos: Point,
    /// Keyword set `Ψ_p` (from name, description, tags).
    pub keywords: KeywordSet,
    /// Importance weight (1.0 = plain counting).
    pub weight: f64,
}

/// A dense, id-indexed collection of POIs.
#[derive(Debug, Clone, Default)]
pub struct PoiCollection {
    pois: Vec<Poi>,
}

impl PoiCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a POI with weight 1.0 and returns its id.
    pub fn add(&mut self, pos: Point, keywords: KeywordSet) -> PoiId {
        self.add_weighted(pos, keywords, 1.0)
    }

    /// Adds a POI with an explicit weight and returns its id.
    pub fn add_weighted(&mut self, pos: Point, keywords: KeywordSet, weight: f64) -> PoiId {
        let id = PoiId::from_index(self.pois.len());
        self.pois.push(Poi {
            id,
            pos,
            keywords,
            weight,
        });
        id
    }

    /// The POI with id `id`.
    #[inline]
    pub fn get(&self, id: PoiId) -> &Poi {
        &self.pois[id.index()]
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Returns true if the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// Iterates over POIs in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Poi> {
        self.pois.iter()
    }

    /// The POIs as an id-ordered slice (for chunked parallel scans).
    pub fn as_slice(&self) -> &[Poi] {
        &self.pois
    }

    /// Bounding rectangle of all POI locations (None if empty).
    pub fn extent(&self) -> Option<Rect> {
        Rect::bounding(self.pois.iter().map(|p| p.pos))
    }

    /// Counts POIs whose keyword set intersects `query`
    /// (the dataset-wide "relevant POIs" count of Table 4).
    pub fn count_relevant(&self, query: &KeywordSet) -> usize {
        self.pois
            .iter()
            .filter(|p| p.keywords.intersects(query))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::KeywordId;

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    #[test]
    fn add_assigns_dense_ids() {
        let mut c = PoiCollection::new();
        let a = c.add(Point::new(0.0, 0.0), kws(&[1]));
        let b = c.add(Point::new(1.0, 1.0), kws(&[2]));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(a).pos, Point::new(0.0, 0.0));
        assert_eq!(c.get(a).weight, 1.0);
    }

    #[test]
    fn weighted_add() {
        let mut c = PoiCollection::new();
        let id = c.add_weighted(Point::new(0.0, 0.0), kws(&[1]), 2.5);
        assert_eq!(c.get(id).weight, 2.5);
    }

    #[test]
    fn extent_covers_all() {
        let mut c = PoiCollection::new();
        assert!(c.extent().is_none());
        c.add(Point::new(-1.0, 2.0), kws(&[]));
        c.add(Point::new(3.0, 0.0), kws(&[]));
        let e = c.extent().unwrap();
        assert_eq!(e.min, Point::new(-1.0, 0.0));
        assert_eq!(e.max, Point::new(3.0, 2.0));
    }

    #[test]
    fn count_relevant_uses_intersection() {
        let mut c = PoiCollection::new();
        c.add(Point::new(0.0, 0.0), kws(&[1, 2]));
        c.add(Point::new(0.0, 0.0), kws(&[3]));
        c.add(Point::new(0.0, 0.0), kws(&[]));
        assert_eq!(c.count_relevant(&kws(&[2, 3])), 2);
        assert_eq!(c.count_relevant(&kws(&[9])), 0);
        assert_eq!(c.count_relevant(&kws(&[])), 0);
    }
}
