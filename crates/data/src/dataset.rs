//! The combined dataset container.

use crate::photo::PhotoCollection;
use crate::poi::PoiCollection;
use soi_geo::Rect;
use soi_network::RoadNetwork;
use soi_text::{KeywordSet, Vocabulary};

/// A complete evaluation dataset: road network + POIs + photos + vocabulary.
///
/// Mirrors the paper's per-city datasets (Table 1): road network from
/// OpenStreetMap, POIs from DBpedia/OSM/Wikimapia/Foursquare, photos from
/// Flickr/Panoramio. All keyword ids in the POIs and photos refer to the
/// shared [`Vocabulary`].
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (e.g. "london").
    pub name: String,
    /// The road network.
    pub network: RoadNetwork,
    /// The shared keyword vocabulary.
    pub vocab: Vocabulary,
    /// The POI set `P`.
    pub pois: PoiCollection,
    /// The photo set `R`.
    pub photos: PhotoCollection,
}

impl Dataset {
    /// Creates a dataset from its parts.
    pub fn new(
        name: impl Into<String>,
        network: RoadNetwork,
        vocab: Vocabulary,
        pois: PoiCollection,
        photos: PhotoCollection,
    ) -> Self {
        Self {
            name: name.into(),
            network,
            vocab,
            pois,
            photos,
        }
    }

    /// Bounding rectangle of everything in the dataset (network, POIs,
    /// photos). `None` only if the dataset is completely empty.
    pub fn extent(&self) -> Option<Rect> {
        let mut rect: Option<Rect> = None;
        let mut merge = |r: Option<Rect>| {
            if let Some(r) = r {
                rect = Some(match rect {
                    Some(acc) => acc.union(&r),
                    None => r,
                });
            }
        };
        merge(self.network.extent());
        merge(self.pois.extent());
        merge(self.photos.extent());
        rect
    }

    /// Resolves query words to a [`KeywordSet`] against the vocabulary.
    ///
    /// Words that never occur in the dataset are dropped (they cannot match
    /// any POI or photo).
    pub fn query_keywords(&self, words: &[&str]) -> KeywordSet {
        KeywordSet::from_ids(words.iter().filter_map(|w| self.vocab.lookup(w)))
    }

    /// Looks up a street id by exact name (first match).
    pub fn street_by_name(&self, name: &str) -> Option<soi_common::StreetId> {
        self.network
            .streets()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_geo::Point;

    fn tiny() -> Dataset {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Alpha Road", &[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let network = b.build().unwrap();
        let mut vocab = Vocabulary::new();
        let shop = vocab.intern("shop");
        let mut pois = PoiCollection::new();
        pois.add(Point::new(0.5, 0.2), KeywordSet::from_ids([shop]));
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(5.0, 5.0), KeywordSet::from_ids([shop]));
        Dataset::new("tiny", network, vocab, pois, photos)
    }

    #[test]
    fn extent_unions_all_sources() {
        let d = tiny();
        let e = d.extent().unwrap();
        assert_eq!(e.min, Point::new(0.0, 0.0));
        // Photo at (5,5) extends the extent beyond the network.
        assert_eq!(e.max, Point::new(5.0, 5.0));
    }

    #[test]
    fn query_keywords_drops_unknown_words() {
        let d = tiny();
        let q = d.query_keywords(&["shop", "unknown"]);
        assert_eq!(q.len(), 1);
        assert!(d.query_keywords(&["nothing"]).is_empty());
    }

    #[test]
    fn street_by_name() {
        let d = tiny();
        assert!(d.street_by_name("Alpha Road").is_some());
        assert!(d.street_by_name("Beta Road").is_none());
    }
}
