//! Dataset types for the streets-of-interest system.
//!
//! A dataset per the paper (Sec. 3.1, 4.1) consists of a road network `G`
//! with streets `S`, a POI set `P` (each POI a location plus keyword set
//! `Ψp`), and a photo set `R` (location plus tag set `Ψr`). This crate holds
//! the record types and collections, the combined [`Dataset`] container, and
//! a TSV persistence format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dataset;
pub mod geojson;
pub mod io;
pub mod photo;
pub mod poi;
pub mod view;

pub use dataset::Dataset;
pub use photo::{Photo, PhotoCollection};
pub use poi::{Poi, PoiCollection};
pub use view::{PhotoView, PoiView};
