//! Read-only views over a base collection plus a slice of delta-added rows.
//!
//! Live ingestion keeps the base collections immutable and accumulates
//! pending inserts in a sealed delta. Queries read through these views: ids
//! below the base length resolve into the base collection, ids at or above
//! it resolve into the delta's `added` slice (whose rows carry contiguous
//! ids continuing the base numbering). A plain `&Collection` converts into
//! a view with an empty delta, so every pre-ingestion call site keeps
//! compiling unchanged.

use crate::photo::{Photo, PhotoCollection};
use crate::poi::{Poi, PoiCollection};
use soi_common::{PhotoId, PoiId};

/// A base [`PoiCollection`] extended by delta-added POIs.
#[derive(Debug, Clone, Copy)]
pub struct PoiView<'a> {
    base: &'a PoiCollection,
    added: &'a [Poi],
}

impl<'a> PoiView<'a> {
    /// A view of `base` extended by `added`.
    ///
    /// `added[i].id` must equal `base.len() + i`; a debug assertion checks
    /// the boundary row so a mis-stitched view fails fast in tests.
    pub fn new(base: &'a PoiCollection, added: &'a [Poi]) -> Self {
        debug_assert!(added.first().is_none_or(|p| p.id.index() == base.len()));
        Self { base, added }
    }

    /// The base collection.
    pub fn base(&self) -> &'a PoiCollection {
        self.base
    }

    /// The delta-added rows (ids continue the base numbering).
    pub fn added(&self) -> &'a [Poi] {
        self.added
    }

    /// The POI with id `id` (base or delta-added).
    #[inline]
    pub fn get(&self, id: PoiId) -> &'a Poi {
        let idx = id.index();
        if idx < self.base.len() {
            self.base.get(id)
        } else {
            &self.added[idx - self.base.len()]
        }
    }

    /// Total number of POIs visible through the view.
    pub fn len(&self) -> usize {
        self.base.len() + self.added.len()
    }

    /// Returns true if neither base nor delta holds any POI.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates base rows then delta-added rows, ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = &'a Poi> + use<'a> {
        self.base.iter().chain(self.added.iter())
    }
}

impl<'a> From<&'a PoiCollection> for PoiView<'a> {
    fn from(base: &'a PoiCollection) -> Self {
        Self { base, added: &[] }
    }
}

/// A base [`PhotoCollection`] extended by delta-added photos.
#[derive(Debug, Clone, Copy)]
pub struct PhotoView<'a> {
    base: &'a PhotoCollection,
    added: &'a [Photo],
}

impl<'a> PhotoView<'a> {
    /// A view of `base` extended by `added` (see [`PoiView::new`]).
    pub fn new(base: &'a PhotoCollection, added: &'a [Photo]) -> Self {
        debug_assert!(added.first().is_none_or(|p| p.id.index() == base.len()));
        Self { base, added }
    }

    /// The base collection.
    pub fn base(&self) -> &'a PhotoCollection {
        self.base
    }

    /// The delta-added rows (ids continue the base numbering).
    pub fn added(&self) -> &'a [Photo] {
        self.added
    }

    /// The photo with id `id` (base or delta-added).
    #[inline]
    pub fn get(&self, id: PhotoId) -> &'a Photo {
        let idx = id.index();
        if idx < self.base.len() {
            self.base.get(id)
        } else {
            &self.added[idx - self.base.len()]
        }
    }

    /// Total number of photos visible through the view.
    pub fn len(&self) -> usize {
        self.base.len() + self.added.len()
    }

    /// Returns true if neither base nor delta holds any photo.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates base rows then delta-added rows, ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = &'a Photo> + use<'a> {
        self.base.iter().chain(self.added.iter())
    }
}

impl<'a> From<&'a PhotoCollection> for PhotoView<'a> {
    fn from(base: &'a PhotoCollection) -> Self {
        Self { base, added: &[] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_geo::Point;
    use soi_text::KeywordSet;

    #[test]
    fn poi_view_dispatches_on_id() {
        let mut base = PoiCollection::new();
        base.add(Point::new(0.0, 0.0), KeywordSet::empty());
        let added = vec![Poi {
            id: PoiId::from_index(1),
            pos: Point::new(5.0, 5.0),
            keywords: KeywordSet::empty(),
            weight: 2.0,
        }];
        let view = PoiView::new(&base, &added);
        assert_eq!(view.len(), 2);
        assert_eq!(view.get(PoiId::from_index(0)).pos, Point::new(0.0, 0.0));
        assert_eq!(view.get(PoiId::from_index(1)).weight, 2.0);
        assert_eq!(view.iter().count(), 2);
    }

    #[test]
    fn photo_view_from_base_is_identity() {
        let mut base = PhotoCollection::new();
        let id = base.add(Point::new(1.0, 2.0), KeywordSet::empty());
        let view = PhotoView::from(&base);
        assert_eq!(view.len(), 1);
        assert_eq!(view.get(id).pos, Point::new(1.0, 2.0));
        assert!(view.added().is_empty());
    }
}
