//! Property-based tests for the GeoJSON writer: any string content must
//! produce well-formed JSON.

use proptest::prelude::*;
use soi_data::geojson::{escape_json, feature_collection, Feature};

/// A minimal JSON well-formedness check: string-aware bracket matching.
fn is_balanced_json(s: &str) -> bool {
    let mut stack = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            } else if (c as u32) < 0x20 {
                return false; // raw control char inside a string
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => stack.push(c),
            '}' if stack.pop() != Some('{') => return false,
            ']' if stack.pop() != Some('[') => return false,
            '}' | ']' => {}
            _ => {}
        }
    }
    !in_string && stack.is_empty()
}

proptest! {
    #[test]
    fn escaping_roundtrips_structure(raw in ".*") {
        let escaped = escape_json(&raw);
        // Embedding the escaped text in a JSON string must stay well formed.
        let doc = format!("{{\"v\":\"{escaped}\"}}");
        prop_assert!(is_balanced_json(&doc), "broken doc: {doc}");
    }

    #[test]
    fn features_with_arbitrary_props_are_well_formed(
        name in ".*",
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        score in proptest::num::f64::ANY,
    ) {
        let f = Feature::point(x, y)
            .prop("name", name)
            .prop("score", if score.is_finite() { score } else { 0.0 });
        let doc = feature_collection(&[f]);
        prop_assert!(is_balanced_json(&doc), "broken doc: {doc}");
        let head = "{\"type\":\"FeatureCollection\"";
        prop_assert!(doc.starts_with(head));
    }

    #[test]
    fn line_strings_of_any_length_are_well_formed(
        coords in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..20),
    ) {
        let f = Feature::line_string(coords).prop("kind", "test");
        let doc = feature_collection(&[f]);
        prop_assert!(is_balanced_json(&doc));
    }
}
