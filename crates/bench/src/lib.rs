//! Shared fixtures for the streets-of-interest benchmarks.
//!
//! Each bench binary regenerates (deterministically) a small synthetic city
//! and its indexes. The scale is intentionally modest so `cargo bench`
//! finishes in minutes; the experiment harness (`soi-experiments`) is the
//! place for paper-scale sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;

use soi_core::describe::{ContextBuilder, PhiSource, StreetContext};
use soi_core::soi::{run_soi, SoiConfig, SoiQuery};
use soi_data::Dataset;
use soi_datagen::GroundTruth;
use soi_index::{PhotoGrid, PoiIndex};

/// The paper's ε (0.0005° ≈ 55 m).
pub const EPS: f64 = 0.0005;
/// The paper's ρ.
pub const RHO: f64 = 0.0001;
/// Grid cell size used for the POI and photo grids.
pub const CELL: f64 = 2.0 * EPS;
/// City scale used by the benches.
pub const BENCH_SCALE: f64 = 0.05;

/// A generated city with its indexes, ready to query.
pub struct BenchCity {
    /// The dataset.
    pub dataset: Dataset,
    /// Planted ground truth.
    pub truth: GroundTruth,
    /// POI index.
    pub index: PoiIndex,
    /// Photo grid.
    pub photo_grid: PhotoGrid,
}

/// Builds the benchmark city (a Berlin-like preset at [`BENCH_SCALE`]).
pub fn bench_city() -> BenchCity {
    let (dataset, truth) = soi_datagen::generate(&soi_datagen::berlin(BENCH_SCALE));
    let index = PoiIndex::build(&dataset.network, &dataset.pois, CELL);
    let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, CELL);
    BenchCity {
        dataset,
        truth,
        index,
        photo_grid,
    }
}

impl BenchCity {
    /// A validated k-SOI query over the benchmark keyword prefix.
    pub fn query(&self, num_keywords: usize, k: usize) -> SoiQuery {
        let all = ["religion", "education", "food", "services"];
        SoiQuery::new(
            self.dataset
                .query_keywords(&all[..num_keywords.clamp(1, 4)]),
            k,
            EPS,
        )
        .expect("valid query")
    }

    /// The description context of the top "shop" street.
    pub fn top_shop_context(&self) -> StreetContext {
        let query =
            SoiQuery::new(self.dataset.query_keywords(&["shop"]), 1, EPS).expect("valid query");
        let top = run_soi(
            &self.dataset.network,
            &self.dataset.pois,
            &self.index,
            &query,
            &SoiConfig::default(),
        )
        .expect("valid query")
        .results
        .first()
        .map(|r| r.street)
        .or_else(|| self.truth.for_category("shop").first().copied())
        .expect("shop street exists");
        ContextBuilder {
            network: &self.dataset.network,
            photos: &self.dataset.photos,
            photo_grid: &self.photo_grid,
            pois: Some(&self.dataset.pois),
            eps: EPS,
            rho: RHO,
            phi_source: PhiSource::Photos,
        }
        .build(top)
        .expect("valid context inputs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_city_builds_and_queries() {
        let city = bench_city();
        let q = city.query(2, 5);
        assert_eq!(q.k, 5);
        let ctx = city.top_shop_context();
        assert!(!ctx.members.is_empty());
    }
}
