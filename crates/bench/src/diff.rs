//! Noise-aware comparison of two `perf_report` JSON artifacts.
//!
//! [`diff`] extracts the comparable metrics from a baseline and a current
//! report and flags regressions: a metric that moved in the bad direction
//! by more than its noise tolerance. Single-run wall-clock numbers on a
//! shared VM jitter by several percent, so each metric carries a
//! tolerance wide enough that normal noise never trips the gate while a
//! real (>10–15%) regression still does. Metrics present in only one of
//! the two reports are reported as skipped, not failed — reports from
//! different PRs legitimately gain and lose sections.

use soi_obs::json::Json;

/// A metric extracted from a `perf_report` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dotted path of the metric (e.g. `single_query.direct_p50_ms`).
    pub name: String,
    /// The metric value.
    pub value: f64,
    /// Whether larger values are better (throughput) or worse (latency).
    pub higher_is_better: bool,
    /// Relative noise tolerance in percent.
    pub tolerance_pct: f64,
}

/// One baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in percent (positive = current is larger).
    pub change_pct: f64,
    /// The tolerance that applied.
    pub tolerance_pct: f64,
    /// Whether the change exceeds the tolerance in the bad direction.
    pub regressed: bool,
}

/// The outcome of comparing two reports.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Per-metric comparisons, in extraction order.
    pub deltas: Vec<MetricDelta>,
    /// Metrics found in exactly one of the two reports.
    pub skipped: Vec<String>,
}

impl DiffReport {
    /// Whether any compared metric regressed beyond its tolerance.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// The regressed comparisons.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }
}

/// Latency tolerance: single-run medians on a shared VM wobble ~5%.
const LATENCY_TOL_PCT: f64 = 10.0;
/// Build-time tolerance: tens-of-ms wall times are the noisiest numbers.
const BUILD_TOL_PCT: f64 = 15.0;
/// Throughput tolerance.
const QPS_TOL_PCT: f64 = 10.0;
/// Cold-start tolerance: snapshot loads are a few ms to a few hundred ms
/// of wall clock dominated by page faults and memcpy, which jitter more
/// than compute-bound medians on a shared VM; the speedup ratio divides
/// two such numbers and inherits both jitters.
const COLD_START_TOL_PCT: f64 = 20.0;

fn num_at(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut node = doc;
    for key in path {
        node = node.get(key)?;
    }
    node.as_f64()
}

/// Extracts every comparable metric from one report document.
pub fn extract_metrics(doc: &Json) -> Vec<Metric> {
    let mut metrics = Vec::new();
    let mut push = |name: &str, value: Option<f64>, higher: bool, tol: f64| {
        if let Some(value) = value {
            metrics.push(Metric {
                name: name.to_string(),
                value,
                higher_is_better: higher,
                tolerance_pct: tol,
            });
        }
    };
    push(
        "index_build.new_ms",
        num_at(doc, &["index_build", "new_ms"]),
        false,
        BUILD_TOL_PCT,
    );
    push(
        "single_query.direct_p50_ms",
        num_at(doc, &["single_query", "direct_p50_ms"]),
        false,
        LATENCY_TOL_PCT,
    );
    push(
        "single_query.engine_one_worker_p50_ms",
        num_at(doc, &["single_query", "engine_one_worker_p50_ms"]),
        false,
        LATENCY_TOL_PCT,
    );
    push(
        "observability.traced_p50_ms",
        num_at(doc, &["observability", "traced_p50_ms"]),
        false,
        LATENCY_TOL_PCT,
    );
    push(
        "cold_start.bundle_build_ms",
        num_at(doc, &["cold_start", "bundle_build_ms"]),
        false,
        BUILD_TOL_PCT,
    );
    push(
        "cold_start.bundle_load_ms",
        num_at(doc, &["cold_start", "bundle_load_ms"]),
        false,
        COLD_START_TOL_PCT,
    );
    push(
        "cold_start.bundle_speedup",
        num_at(doc, &["cold_start", "bundle_speedup"]),
        true,
        COLD_START_TOL_PCT,
    );
    push(
        "cold_start.structures_speedup",
        num_at(doc, &["cold_start", "structures_speedup"]),
        true,
        COLD_START_TOL_PCT,
    );
    push(
        "cold_start.cache_hit_speedup",
        num_at(doc, &["cold_start", "cache_hit_speedup"]),
        true,
        COLD_START_TOL_PCT,
    );
    if let Some(structures) = doc
        .get("cold_start")
        .and_then(|c| c.get("structures"))
        .and_then(Json::as_arr)
    {
        for entry in structures {
            let (Some(name), Some(load_ms)) = (
                entry.get("name").and_then(Json::as_str),
                entry.get("load_ms").and_then(Json::as_f64),
            ) else {
                continue;
            };
            metrics.push(Metric {
                name: format!("cold_start.{name}.load_ms"),
                value: load_ms,
                higher_is_better: false,
                tolerance_pct: COLD_START_TOL_PCT,
            });
        }
    }
    if let Some(batch) = doc.get("batch").and_then(Json::as_arr) {
        for entry in batch {
            let (Some(workers), Some(qps)) = (
                entry.get("workers").and_then(Json::as_f64),
                entry.get("qps").and_then(Json::as_f64),
            ) else {
                continue;
            };
            metrics.push(Metric {
                name: format!("batch.workers={workers}.qps"),
                value: qps,
                higher_is_better: true,
                tolerance_pct: QPS_TOL_PCT,
            });
        }
    }
    metrics
}

/// Compares a baseline report against a current report.
pub fn diff(baseline: &Json, current: &Json) -> DiffReport {
    let base = extract_metrics(baseline);
    let cur = extract_metrics(current);
    let mut report = DiffReport::default();
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.name == b.name) else {
            report.skipped.push(format!("{} (baseline only)", b.name));
            continue;
        };
        let change_pct = (c.value / b.value.max(1e-12) - 1.0) * 100.0;
        let regressed = if b.higher_is_better {
            change_pct < -b.tolerance_pct
        } else {
            change_pct > b.tolerance_pct
        };
        report.deltas.push(MetricDelta {
            name: b.name.clone(),
            baseline: b.value,
            current: c.value,
            change_pct,
            tolerance_pct: b.tolerance_pct,
            regressed,
        });
    }
    for c in &cur {
        if !base.iter().any(|b| b.name == c.name) {
            report.skipped.push(format!("{} (current only)", c.name));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_obs::json::parse;

    const REPORT: &str = r#"{
        "index_build": {"old_ms": 50.0, "new_ms": 10.0},
        "single_query": {"direct_p50_ms": 2.0, "engine_one_worker_p50_ms": 2.1},
        "observability": {"traced_p50_ms": 2.2},
        "batch": [
            {"workers": 1, "qps": 200.0},
            {"workers": 8, "qps": 190.0}
        ]
    }"#;

    #[test]
    fn self_comparison_has_no_regressions() {
        let doc = parse(REPORT).unwrap();
        let report = diff(&doc, &doc);
        assert_eq!(report.deltas.len(), 6);
        assert!(report.skipped.is_empty());
        assert!(!report.has_regressions());
        assert!(report.deltas.iter().all(|d| d.change_pct.abs() < 1e-9));
    }

    #[test]
    fn degraded_latency_and_throughput_regress() {
        let base = parse(REPORT).unwrap();
        let degraded = parse(
            r#"{
            "index_build": {"new_ms": 10.5},
            "single_query": {"direct_p50_ms": 3.0, "engine_one_worker_p50_ms": 2.1},
            "observability": {"traced_p50_ms": 2.2},
            "batch": [
                {"workers": 1, "qps": 140.0},
                {"workers": 8, "qps": 189.0}
            ]
        }"#,
        )
        .unwrap();
        let report = diff(&base, &degraded);
        let names: Vec<&str> = report.regressions().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            ["single_query.direct_p50_ms", "batch.workers=1.qps"],
            "{report:?}"
        );
        assert!(report.has_regressions());
    }

    #[test]
    fn within_tolerance_drift_passes() {
        let base = parse(REPORT).unwrap();
        // +8% latency and -8% qps: inside the 10% tolerance.
        let noisy = parse(
            r#"{
            "index_build": {"new_ms": 11.0},
            "single_query": {"direct_p50_ms": 2.16, "engine_one_worker_p50_ms": 2.26},
            "observability": {"traced_p50_ms": 2.37},
            "batch": [
                {"workers": 1, "qps": 184.0},
                {"workers": 8, "qps": 175.0}
            ]
        }"#,
        )
        .unwrap();
        assert!(!diff(&base, &noisy).has_regressions());
    }

    #[test]
    fn improvements_never_regress() {
        let base = parse(REPORT).unwrap();
        let better = parse(
            r#"{
            "index_build": {"new_ms": 5.0},
            "single_query": {"direct_p50_ms": 1.0, "engine_one_worker_p50_ms": 1.0},
            "observability": {"traced_p50_ms": 1.1},
            "batch": [{"workers": 1, "qps": 400.0}, {"workers": 8, "qps": 400.0}]
        }"#,
        )
        .unwrap();
        assert!(!diff(&base, &better).has_regressions());
    }

    #[test]
    fn cold_start_metrics_compare_with_their_own_tolerance() {
        let report = r#"{
            "cold_start": {
                "structures": [
                    {"name": "poi_index", "build_ms": 50.0, "load_ms": 10.0, "speedup": 5.0},
                    {"name": "ir_tree", "build_ms": 80.0, "load_ms": 15.0, "speedup": 5.3}
                ],
                "structures_speedup": 5.2,
                "bundle_build_ms": 140.0,
                "bundle_load_ms": 30.0,
                "bundle_speedup": 4.7,
                "cache_miss_ms": 260.0,
                "cache_hit_speedup": 8.7
            }
        }"#;
        let base = parse(report).unwrap();
        let metrics = extract_metrics(&base);
        let names: Vec<&str> = metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "cold_start.bundle_build_ms",
                "cold_start.bundle_load_ms",
                "cold_start.bundle_speedup",
                "cold_start.structures_speedup",
                "cold_start.cache_hit_speedup",
                "cold_start.poi_index.load_ms",
                "cold_start.ir_tree.load_ms",
            ]
        );

        // +15% load jitter stays inside the dedicated 20% tolerance...
        let noisy = parse(
            r#"{
            "cold_start": {
                "structures": [
                    {"name": "poi_index", "load_ms": 11.5},
                    {"name": "ir_tree", "load_ms": 17.0}
                ],
                "structures_speedup": 4.4,
                "bundle_build_ms": 150.0,
                "bundle_load_ms": 34.0,
                "bundle_speedup": 4.0
            }
        }"#,
        )
        .unwrap();
        assert!(!diff(&base, &noisy).has_regressions());

        // ...while a halved speedup and a 2x load time regress.
        let degraded = parse(
            r#"{
            "cold_start": {
                "structures": [
                    {"name": "poi_index", "load_ms": 20.0},
                    {"name": "ir_tree", "load_ms": 15.0}
                ],
                "structures_speedup": 5.2,
                "bundle_build_ms": 140.0,
                "bundle_load_ms": 30.0,
                "bundle_speedup": 2.3
            }
        }"#,
        )
        .unwrap();
        let report = diff(&base, &degraded);
        let regressed: Vec<&str> = report.regressions().map(|d| d.name.as_str()).collect();
        assert_eq!(
            regressed,
            ["cold_start.bundle_speedup", "cold_start.poi_index.load_ms"],
            "{report:?}"
        );
    }

    #[test]
    fn missing_sections_are_skipped_not_failed() {
        let base = parse(REPORT).unwrap();
        let sparse = parse(r#"{"single_query": {"direct_p50_ms": 2.0}}"#).unwrap();
        let report = diff(&base, &sparse);
        assert_eq!(report.deltas.len(), 1);
        assert!(!report.has_regressions());
        assert!(report
            .skipped
            .iter()
            .all(|s| s.ends_with("(baseline only)")));
        assert_eq!(report.skipped.len(), 5);

        // And the reverse: current gained a metric the baseline lacks.
        let reverse = diff(&sparse, &base);
        assert_eq!(reverse.deltas.len(), 1);
        assert!(reverse
            .skipped
            .iter()
            .any(|s| s.ends_with("(current only)")));
    }
}
