//! `bench_diff` — compare two `perf_report` JSON artifacts.
//!
//! Usage: `bench_diff <baseline.json> <current.json>`
//!
//! Prints a per-metric table with the relative change and the noise
//! tolerance that applied, then exits with:
//!
//! - `0` — no metric regressed beyond its tolerance,
//! - `2` — at least one metric regressed (the regression gate),
//! - `1` — usage, I/O, or parse error.
//!
//! Tolerances are deliberately wide (10–15%) because the reports hold
//! single-run wall-clock numbers from shared, single-core CI hosts; the
//! gate is meant to catch real regressions, not scheduler jitter. CI runs
//! this as an advisory job.

use soi_bench::diff::{diff, DiffReport};
use std::process::ExitCode;

fn load(path: &str) -> Result<soi_obs::json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    soi_obs::json::parse(&text).map_err(|e| format!("{path}: not valid JSON ({e})"))
}

fn print_report(baseline: &str, current: &str, report: &DiffReport) {
    println!("bench_diff: {baseline} (baseline) vs {current} (current)");
    println!(
        "{:<42} {:>12} {:>12} {:>9} {:>7}  verdict",
        "metric", "baseline", "current", "change", "tol"
    );
    for d in &report.deltas {
        println!(
            "{:<42} {:>12.3} {:>12.3} {:>+8.1}% {:>6.0}%  {}",
            d.name,
            d.baseline,
            d.current,
            d.change_pct,
            d.tolerance_pct,
            if d.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for s in &report.skipped {
        println!("skipped: {s}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <current.json>");
        return ExitCode::from(1);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(1);
        }
    };
    let report = diff(&baseline, &current);
    print_report(baseline_path, current_path, &report);
    if report.deltas.is_empty() {
        eprintln!("bench_diff: no comparable metrics between the two reports");
        return ExitCode::from(1);
    }
    if report.has_regressions() {
        let n = report.regressions().count();
        eprintln!("bench_diff: {n} metric(s) regressed beyond tolerance");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
