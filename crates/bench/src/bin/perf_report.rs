//! `perf_report` — the repo's perf-regression benchmark.
//!
//! Measures, on one process and back-to-back (the only way to get stable
//! numbers on a noisy single-core VM):
//!
//! 1. offline index construction: the pre-PR-2 hash-map build
//!    (reconstructed inline below) vs the current counting-sort build,
//!    medians of several interleaved reps;
//! 2. single-query k-SOI latency (p50/p95), direct `run_soi` vs a
//!    one-element engine batch (the inline path — must be within noise)
//!    — with the observability layer compiled in but *disabled*, the
//!    production default;
//! 3. the same single query with tracing *enabled*, to quantify the
//!    recording overhead;
//! 4. batched k-SOI throughput at 1, 2, and 8 workers over ≥256 distinct
//!    queries (keyword subsets × k × ε), with per-worker-count speedup
//!    relative to 1 worker. On a single-core host (CI, this VM) speedups
//!    ≤ 1.0 are expected — the report records the core count so readers
//!    can tell scheduler overhead from real scaling regressions.
//!
//! If `BENCH_PR2.json` is present in the output directory its stored p50s
//! are parsed (with `soi_obs::json`) and the disabled-instrumentation
//! overhead vs PR 2 is reported — the PR 3 acceptance bound was ≤2%.
//!
//! Writes `BENCH_PR4.json` into the repo root (or the directory given as
//! the first argument), appends a compact summary line to
//! `BENCH_HISTORY.jsonl` in the same directory, and prints the report to
//! stdout. `bench_diff` compares any two of these artifacts.

use soi_common::{CellId, FxHashMap, KeywordId, SegmentId};
use soi_core::soi::{run_soi, SoiConfig, SoiQuery};
use soi_data::{Dataset, PoiCollection};
use soi_engine::{QueryContext, QueryEngine};
use soi_geo::{Grid, Point, Rect};
use soi_index::PoiIndex;
use soi_network::RoadNetwork;
use soi_obs::{json, trace};
use soi_text::InvertedIndex;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// City scale for the report: large enough that the build takes tens of
/// milliseconds, small enough to keep the whole report under a minute.
const SCALE: f64 = 0.2;
const EPS: f64 = 0.0005;
const CELL: f64 = 2.0 * EPS;
/// Interleaved repetitions per build variant (medians reported).
const BUILD_REPS: usize = 9;
/// Repetitions for the single-query latency distribution.
const QUERY_REPS: usize = 21;

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The stored PR 2 single-query p50s `(direct, engine_one_worker)` in ms,
/// if a parseable `BENCH_PR2.json` sits in the output directory.
fn pr2_p50s(out_dir: &str) -> Option<(f64, f64)> {
    let path = format!("{}/BENCH_PR2.json", out_dir.trim_end_matches('/'));
    let text = std::fs::read_to_string(path).ok()?;
    let doc = json::parse(&text).ok()?;
    let single = doc.get("single_query")?;
    Some((
        single.get("direct_p50_ms")?.as_f64()?,
        single.get("engine_one_worker_p50_ms")?.as_f64()?,
    ))
}

/// The index construction algorithm as it was before this PR: per-POI
/// hash-map entry updates, a per-keyword weight re-sum for the global
/// inverted index, and comparison sorts throughout. Returns fingerprint
/// counts so the optimizer cannot discard the work.
fn old_index_build(
    network: &RoadNetwork,
    pois: &PoiCollection,
    cell_size: f64,
) -> (usize, usize, usize) {
    struct OldCell {
        pois: Vec<soi_common::PoiId>,
        total_weight: f64,
        inverted: InvertedIndex<soi_common::PoiId>,
    }

    let extent = match (network.extent(), pois.extent()) {
        (Some(a), Some(b)) => a.union(&b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)),
    };
    let grid = Grid::covering(extent, cell_size);

    let mut cells: FxHashMap<CellId, OldCell> = FxHashMap::default();
    for poi in pois.iter() {
        let Some(coord) = grid.cell_containing(poi.pos) else {
            continue;
        };
        let cell = cells.entry(grid.cell_id(coord)).or_insert_with(|| OldCell {
            pois: Vec::new(),
            total_weight: 0.0,
            inverted: InvertedIndex::new(),
        });
        cell.pois.push(poi.id);
        cell.total_weight += poi.weight;
        cell.inverted.add_document(poi.id, poi.keywords.iter());
    }

    let mut global: FxHashMap<KeywordId, Vec<(CellId, f64)>> = FxHashMap::default();
    for (&cell_id, cell) in &cells {
        for (k, postings) in cell.inverted.iter() {
            let weight: f64 = postings.iter().map(|&p| pois.get(p).weight).sum();
            global.entry(k).or_default().push((cell_id, weight));
        }
    }
    for list in global.values_mut() {
        list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    }

    let mut raster: FxHashMap<CellId, Vec<SegmentId>> = FxHashMap::default();
    for seg in network.segments() {
        for coord in grid.cells_near_segment(&seg.geom, 0.0) {
            raster.entry(grid.cell_id(coord)).or_default().push(seg.id);
        }
    }

    let mut segments_by_len: Vec<SegmentId> = network.segments().iter().map(|s| s.id).collect();
    segments_by_len.sort_by(|&a, &b| {
        network
            .segment(a)
            .len()
            .total_cmp(&network.segment(b).len())
            .then_with(|| a.cmp(&b))
    });

    (cells.len(), global.len(), raster.len())
}

/// ≥256 distinct queries: every non-empty subset of four keyword
/// categories (15) × five result sizes × four ε values = 300. Small
/// batches (the pre-PR-4 sweep had 16 queries) hide scaling problems
/// behind per-batch setup cost and give work stealing nothing to balance.
fn sweep_queries(dataset: &Dataset) -> Vec<SoiQuery> {
    let kws = ["shop", "food", "religion", "education"];
    let mut queries = Vec::new();
    for mask in 1u32..(1 << kws.len()) {
        let subset: Vec<&str> = kws
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &kw)| kw)
            .collect();
        let set = dataset.query_keywords(&subset);
        for &k in &[5usize, 10, 20, 50, 100] {
            for &eps_scale in &[0.75, 1.0, 1.5, 2.0] {
                queries.push(SoiQuery::new(set.clone(), k, EPS * eps_scale).expect("valid query"));
            }
        }
    }
    assert!(queries.len() >= 256, "sweep must hold >=256 queries");
    queries
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());

    eprintln!("generating berlin at scale {SCALE}...");
    let (dataset, _truth) = soi_datagen::generate(&soi_datagen::berlin(SCALE));
    eprintln!(
        "  {} segments, {} POIs",
        dataset.network.num_segments(),
        dataset.pois.len()
    );

    // 1. Index construction, old vs new, interleaved so drift hits both.
    let mut old_times = Vec::with_capacity(BUILD_REPS);
    let mut new_times = Vec::with_capacity(BUILD_REPS);
    for _ in 0..BUILD_REPS {
        let t = Instant::now();
        black_box(old_index_build(&dataset.network, &dataset.pois, CELL));
        old_times.push(t.elapsed());
        let t = Instant::now();
        black_box(PoiIndex::build_with_threads(
            &dataset.network,
            &dataset.pois,
            CELL,
            1,
        ));
        new_times.push(t.elapsed());
    }
    let build_old = median(old_times);
    let build_new = median(new_times);
    let build_speedup = build_old.as_secs_f64() / build_new.as_secs_f64().max(1e-12);
    eprintln!(
        "index build: old {:.1}ms, new {:.1}ms ({build_speedup:.2}x)",
        ms(build_old),
        ms(build_new)
    );

    // 2. Single-query latency.
    let index = PoiIndex::build_with_threads(&dataset.network, &dataset.pois, CELL, 0);
    let query =
        SoiQuery::new(dataset.query_keywords(&["shop", "food"]), 50, EPS).expect("valid query");
    let config = SoiConfig::default();
    let mut direct = Vec::with_capacity(QUERY_REPS);
    for _ in 0..QUERY_REPS {
        index.clear_epsilon_cache();
        let t = Instant::now();
        black_box(
            run_soi(&dataset.network, &dataset.pois, &index, &query, &config).expect("valid query"),
        );
        direct.push(t.elapsed());
    }
    direct.sort_unstable();

    let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
    let one_worker = QueryEngine::new(1);
    let single = std::slice::from_ref(&query);
    let mut engine_one = Vec::with_capacity(QUERY_REPS);
    for _ in 0..QUERY_REPS {
        index.clear_epsilon_cache();
        let t = Instant::now();
        black_box(one_worker.run_soi_batch(&ctx, single));
        engine_one.push(t.elapsed());
    }
    engine_one.sort_unstable();
    eprintln!(
        "single query: direct p50 {:.2}ms p95 {:.2}ms; engine(1) p50 {:.2}ms p95 {:.2}ms",
        ms(percentile(&direct, 0.5)),
        ms(percentile(&direct, 0.95)),
        ms(percentile(&engine_one, 0.5)),
        ms(percentile(&engine_one, 0.95)),
    );

    // 2b. The same direct query with tracing enabled: quantifies what
    // `--trace-out` costs while recording (spans + sampled UB/LBk
    // counters on the Alg. 1 hot loop).
    trace::set_enabled(true);
    let mut traced = Vec::with_capacity(QUERY_REPS);
    for _ in 0..QUERY_REPS {
        index.clear_epsilon_cache();
        let t = Instant::now();
        black_box(
            run_soi(&dataset.network, &dataset.pois, &index, &query, &config).expect("valid query"),
        );
        traced.push(t.elapsed());
    }
    trace::set_enabled(false);
    let trace_events = trace::take_events().len();
    traced.sort_unstable();
    let traced_overhead_pct =
        (ms(percentile(&traced, 0.5)) / ms(percentile(&direct, 0.5)).max(1e-12) - 1.0) * 100.0;
    eprintln!(
        "traced query: p50 {:.2}ms ({:+.1}% vs disabled, {} events/rep)",
        ms(percentile(&traced, 0.5)),
        traced_overhead_pct,
        trace_events / QUERY_REPS,
    );

    // 3. Batch throughput at 1/2/8 workers (median of 3 sweeps each),
    // with per-worker-count speedup vs the 1-worker baseline.
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let sweep = sweep_queries(&dataset);
    let mut batch_lines = Vec::new();
    let mut batch_history = Vec::new();
    let mut one_worker_qps = 0.0f64;
    for &threads in &[1usize, 2, 8] {
        let engine = QueryEngine::new(threads);
        let mut walls = Vec::new();
        for _ in 0..3 {
            let t = Instant::now();
            let batch = engine.run_soi_batch(&ctx, &sweep);
            walls.push(t.elapsed());
            assert_eq!(batch.stats.errors, 0, "batch queries must all succeed");
        }
        let wall = median(walls);
        let qps = sweep.len() as f64 / wall.as_secs_f64().max(1e-12);
        if threads == 1 {
            one_worker_qps = qps;
        }
        let speedup = qps / one_worker_qps.max(1e-12);
        eprintln!(
            "batch: {} queries on {threads} worker(s): {:.1}ms ({qps:.0} q/s, {speedup:.2}x vs 1 worker)",
            sweep.len(),
            ms(wall)
        );
        batch_lines.push(format!(
            "    {{\"workers\": {threads}, \"queries\": {}, \"wall_ms\": {:.3}, \"qps\": {:.1}, \"speedup_vs_1\": {speedup:.3}}}",
            sweep.len(),
            ms(wall),
            qps
        ));
        batch_history.push(format!(
            "{{\"workers\":{threads},\"qps\":{qps:.1},\"speedup_vs_1\":{speedup:.3}}}"
        ));
    }
    let scaling_note = if host_cpus == 1 {
        "host has 1 CPU core: worker threads time-share it, so multi-worker \
         speedup <= 1.0x is expected and is not a scaling regression"
    } else {
        "multi-core host: multi-worker speedup below 1.0x would indicate a \
         contention regression"
    };
    eprintln!("scaling: {host_cpus} host core(s); {scaling_note}");

    // Disabled-instrumentation overhead against the stored PR 2 p50s:
    // the observability layer is compiled into every path measured above,
    // so new-p50 / PR2-p50 is the cost of carrying it disabled.
    let vs_pr2 = match pr2_p50s(&out_dir) {
        None => "null".to_string(),
        Some((pr2_direct, pr2_engine)) => {
            let direct_pct = (ms(percentile(&direct, 0.5)) / pr2_direct.max(1e-12) - 1.0) * 100.0;
            let engine_pct =
                (ms(percentile(&engine_one, 0.5)) / pr2_engine.max(1e-12) - 1.0) * 100.0;
            eprintln!(
                "vs PR2: direct p50 {direct_pct:+.1}%, engine(1) p50 {engine_pct:+.1}% (bound: +2%)"
            );
            format!(
                "{{\n      \"pr2_direct_p50_ms\": {pr2_direct:.3},\n      \"pr2_engine_one_worker_p50_ms\": {pr2_engine:.3},\n      \"direct_p50_overhead_pct\": {direct_pct:.2},\n      \"engine_one_worker_p50_overhead_pct\": {engine_pct:.2},\n      \"bound_pct\": 2.0\n    }}"
            )
        }
    };

    let json = format!
    (
        "{{\n  \"bench\": \"PR4 explain, memory accounting, perf-regression harness\",\n  \"city\": \"berlin\",\n  \"scale\": {SCALE},\n  \"segments\": {},\n  \"pois\": {},\n  \"host_cpus\": {host_cpus},\n  \"index_build\": {{\n    \"old_ms\": {:.3},\n    \"new_ms\": {:.3},\n    \"speedup\": {:.3},\n    \"reps\": {BUILD_REPS},\n    \"note\": \"single-threaded, medians of interleaved reps; old = pre-PR2 hash-map build reconstructed inline\"\n  }},\n  \"single_query\": {{\n    \"direct_p50_ms\": {:.3},\n    \"direct_p95_ms\": {:.3},\n    \"engine_one_worker_p50_ms\": {:.3},\n    \"engine_one_worker_p95_ms\": {:.3},\n    \"reps\": {QUERY_REPS},\n    \"note\": \"instrumentation compiled in, disabled (production default)\"\n  }},\n  \"observability\": {{\n    \"traced_p50_ms\": {:.3},\n    \"traced_overhead_pct\": {:.2},\n    \"trace_events_per_query\": {},\n    \"vs_pr2\": {}\n  }},\n  \"batch\": [\n{}\n  ],\n  \"scaling_note\": \"{scaling_note}\"\n}}\n",
        dataset.network.num_segments(),
        dataset.pois.len(),
        ms(build_old),
        ms(build_new),
        build_speedup,
        ms(percentile(&direct, 0.5)),
        ms(percentile(&direct, 0.95)),
        ms(percentile(&engine_one, 0.5)),
        ms(percentile(&engine_one, 0.95)),
        ms(percentile(&traced, 0.5)),
        traced_overhead_pct,
        trace_events / QUERY_REPS,
        vs_pr2,
        batch_lines.join(",\n"),
    );

    let out_dir = out_dir.trim_end_matches('/');
    let path = format!("{out_dir}/BENCH_PR4.json");
    std::fs::write(&path, &json).expect("write BENCH_PR4.json");
    println!("{json}");
    eprintln!("wrote {path}");

    // One compact line per run so regressions are visible across history.
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let history_line = format!(
        "{{\"ts_unix\":{ts},\"bench\":\"PR4\",\"host_cpus\":{host_cpus},\
         \"build_new_ms\":{:.3},\"direct_p50_ms\":{:.3},\
         \"engine_one_worker_p50_ms\":{:.3},\"traced_p50_ms\":{:.3},\
         \"batch\":[{}]}}\n",
        ms(build_new),
        ms(percentile(&direct, 0.5)),
        ms(percentile(&engine_one, 0.5)),
        ms(percentile(&traced, 0.5)),
        batch_history.join(","),
    );
    let history_path = format!("{out_dir}/BENCH_HISTORY.jsonl");
    let mut history = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .expect("open BENCH_HISTORY.jsonl");
    std::io::Write::write_all(&mut history, history_line.as_bytes())
        .expect("append BENCH_HISTORY.jsonl");
    eprintln!("appended {history_path}");
}
