//! `perf_report` — the repo's perf-regression benchmark.
//!
//! Measures, on one process and back-to-back (the only way to get stable
//! numbers on a noisy single-core VM):
//!
//! 1. offline index construction: the pre-PR-2 hash-map build
//!    (reconstructed inline below) vs the current counting-sort build,
//!    medians of several interleaved reps;
//! 2. single-query k-SOI latency (p50/p95), direct `run_soi` vs a
//!    one-element engine batch (the inline path — must be within noise)
//!    — with the observability layer compiled in but *disabled*, the
//!    production default;
//! 3. the same single query with tracing *enabled*, to quantify the
//!    recording overhead;
//! 4. batched k-SOI throughput at 1, 2, and 8 workers over ≥256 distinct
//!    queries (keyword subsets × k × ε), with per-worker-count speedup
//!    relative to 1 worker. On a single-core host (CI, this VM) speedups
//!    ≤ 1.0 are expected — the report records the core count so readers
//!    can tell scheduler overhead from real scaling regressions;
//! 5. cold start: fresh index construction vs `soi-snapshot` load. Per
//!    structure (POI index, photo grid, IR-tree, ε-maps) as interleaved
//!    in-process medians, and end-to-end for the bundle in *fresh child
//!    processes* (the report re-executes itself with `--cold-probe`):
//!    an in-process rebuild reuses the allocator arena the previous rep
//!    just freed, which understates what a real cold start pays, while
//!    every snapshot load eats its page faults anew — a fresh process per
//!    rep is the only symmetric measurement. The bundle load side also
//!    pays mmap + checksum verification and the dataset fingerprint.
//!
//! If `BENCH_PR2.json` is present in the output directory its stored p50s
//! are parsed (with `soi_obs::json`) and the disabled-instrumentation
//! overhead vs PR 2 is reported — the PR 3 acceptance bound was ≤2%.
//!
//! Writes `BENCH_PR7.json` into the repo root (or the directory given as
//! the first argument), appends a compact summary line to
//! `BENCH_HISTORY.jsonl` in the same directory, and prints the report to
//! stdout. `bench_diff` compares any two of these artifacts.

use soi_common::{CellId, FxHashMap, KeywordId, SegmentId};
use soi_core::soi::{run_soi, SoiConfig, SoiQuery};
use soi_data::{Dataset, PoiCollection};
use soi_engine::{QueryContext, QueryEngine};
use soi_geo::{Grid, Point, Rect};
use soi_index::snapshot::{self as snap, BundleParams, ReadOutcome};
use soi_index::{IrTree, PhotoGrid, PoiIndex};
use soi_network::RoadNetwork;
use soi_obs::{json, trace};
use soi_snapshot::Snapshot;
use soi_text::InvertedIndex;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// City scale for the report: large enough that the build takes tens of
/// milliseconds, small enough to keep the whole report under a minute.
const SCALE: f64 = 0.2;
const EPS: f64 = 0.0005;
const CELL: f64 = 2.0 * EPS;
/// Interleaved repetitions per build variant (medians reported).
const BUILD_REPS: usize = 9;
/// Repetitions for the single-query latency distribution.
const QUERY_REPS: usize = 21;
/// Interleaved repetitions for the per-structure cold-start comparison.
const COLD_REPS: usize = 5;
/// Fresh-process repetitions for the end-to-end bundle comparison. Each
/// rep forks a child that regenerates the dataset, so reps are expensive.
const COLD_PROC_REPS: usize = 3;
/// City scale for the cold-start comparison. Larger than [`SCALE`] on
/// purpose: at query-bench scale the whole dataset sits in cache and
/// builds look artificially cheap; snapshots exist for datasets where a
/// fresh build takes real time, so the comparison runs at the experiment
/// harness's paper scale.
const COLD_SCALE: f64 = 1.0;

/// The bundle parameters the cold-start comparison (parent and `--cold-probe`
/// children) agrees on.
fn cold_params() -> BundleParams {
    BundleParams {
        poi_cell: CELL,
        pg_cell: CELL,
        eps: Some(EPS),
        with_ir: true,
        threads: 1,
    }
}

/// `--cold-probe build|load <snapshot>`: one cold bundle build or load in
/// this (fresh) process. Prints the measured milliseconds to stdout and
/// exits without running destructors — freeing a bundle is the caller's
/// cost on either path, and `exit` keeps the two probes symmetric.
fn cold_probe(mode: &str, snap_path: &str) -> ! {
    let (cold, _truth) = soi_datagen::generate(&soi_datagen::berlin(COLD_SCALE));
    let params = cold_params();
    let elapsed = match mode {
        "build" => {
            let t = Instant::now();
            let bundle = snap::build_bundle(&cold, &params);
            let elapsed = t.elapsed();
            black_box(&bundle);
            elapsed
        }
        // A cache *miss* as `--index-cache` users pay it: build, then
        // persist the snapshot for the next start.
        "miss" => {
            let miss_path = format!("{snap_path}.miss-{}", std::process::id());
            let t = Instant::now();
            let bundle = snap::build_bundle(&cold, &params);
            snap::write_bundle(std::path::Path::new(&miss_path), &cold, &bundle, &params)
                .expect("write bundle");
            let elapsed = t.elapsed();
            black_box(&bundle);
            let _ = std::fs::remove_file(&miss_path);
            elapsed
        }
        "load" => {
            let t = Instant::now();
            let outcome = snap::read_bundle(std::path::Path::new(snap_path), &cold, &params)
                .expect("read bundle");
            let elapsed = t.elapsed();
            assert!(
                matches!(outcome, ReadOutcome::Loaded(_)),
                "snapshot must match the dataset it was written from"
            );
            black_box(&outcome);
            elapsed
        }
        other => panic!("unknown --cold-probe mode `{other}`"),
    };
    println!("{}", ms(elapsed));
    std::process::exit(0);
}

/// Runs one `--cold-probe` child and returns its measured milliseconds.
fn run_cold_probe(mode: &str, snap_path: &std::path::Path) -> f64 {
    let exe = std::env::current_exe().expect("current exe");
    let out = std::process::Command::new(exe)
        .arg("--cold-probe")
        .arg(mode)
        .arg(snap_path)
        .output()
        .expect("spawn cold probe");
    assert!(
        out.status.success(),
        "cold probe {mode} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .trim()
        .parse()
        .expect("cold probe output")
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn median_f64(mut xs: Vec<f64>) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The stored PR 2 single-query p50s `(direct, engine_one_worker)` in ms,
/// if a parseable `BENCH_PR2.json` sits in the output directory.
fn pr2_p50s(out_dir: &str) -> Option<(f64, f64)> {
    let path = format!("{}/BENCH_PR2.json", out_dir.trim_end_matches('/'));
    let text = std::fs::read_to_string(path).ok()?;
    let doc = json::parse(&text).ok()?;
    let single = doc.get("single_query")?;
    Some((
        single.get("direct_p50_ms")?.as_f64()?,
        single.get("engine_one_worker_p50_ms")?.as_f64()?,
    ))
}

/// The index construction algorithm as it was before this PR: per-POI
/// hash-map entry updates, a per-keyword weight re-sum for the global
/// inverted index, and comparison sorts throughout. Returns fingerprint
/// counts so the optimizer cannot discard the work.
fn old_index_build(
    network: &RoadNetwork,
    pois: &PoiCollection,
    cell_size: f64,
) -> (usize, usize, usize) {
    struct OldCell {
        pois: Vec<soi_common::PoiId>,
        total_weight: f64,
        inverted: InvertedIndex<soi_common::PoiId>,
    }

    let extent = match (network.extent(), pois.extent()) {
        (Some(a), Some(b)) => a.union(&b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)),
    };
    let grid = Grid::covering(extent, cell_size);

    let mut cells: FxHashMap<CellId, OldCell> = FxHashMap::default();
    for poi in pois.iter() {
        let Some(coord) = grid.cell_containing(poi.pos) else {
            continue;
        };
        let cell = cells.entry(grid.cell_id(coord)).or_insert_with(|| OldCell {
            pois: Vec::new(),
            total_weight: 0.0,
            inverted: InvertedIndex::new(),
        });
        cell.pois.push(poi.id);
        cell.total_weight += poi.weight;
        cell.inverted.add_document(poi.id, poi.keywords.iter());
    }

    let mut global: FxHashMap<KeywordId, Vec<(CellId, f64)>> = FxHashMap::default();
    for (&cell_id, cell) in &cells {
        for (k, postings) in cell.inverted.iter() {
            let weight: f64 = postings.iter().map(|&p| pois.get(p).weight).sum();
            global.entry(k).or_default().push((cell_id, weight));
        }
    }
    for list in global.values_mut() {
        list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    }

    let mut raster: FxHashMap<CellId, Vec<SegmentId>> = FxHashMap::default();
    for seg in network.segments() {
        for coord in grid.cells_near_segment(&seg.geom, 0.0) {
            raster.entry(grid.cell_id(coord)).or_default().push(seg.id);
        }
    }

    let mut segments_by_len: Vec<SegmentId> = network.segments().iter().map(|s| s.id).collect();
    segments_by_len.sort_by(|&a, &b| {
        network
            .segment(a)
            .len()
            .total_cmp(&network.segment(b).len())
            .then_with(|| a.cmp(&b))
    });

    (cells.len(), global.len(), raster.len())
}

/// ≥256 distinct queries: every non-empty subset of four keyword
/// categories (15) × five result sizes × four ε values = 300. Small
/// batches (the pre-PR-4 sweep had 16 queries) hide scaling problems
/// behind per-batch setup cost and give work stealing nothing to balance.
fn sweep_queries(dataset: &Dataset) -> Vec<SoiQuery> {
    let kws = ["shop", "food", "religion", "education"];
    let mut queries = Vec::new();
    for mask in 1u32..(1 << kws.len()) {
        let subset: Vec<&str> = kws
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &kw)| kw)
            .collect();
        let set = dataset.query_keywords(&subset);
        for &k in &[5usize, 10, 20, 50, 100] {
            for &eps_scale in &[0.75, 1.0, 1.5, 2.0] {
                queries.push(SoiQuery::new(set.clone(), k, EPS * eps_scale).expect("valid query"));
            }
        }
    }
    assert!(queries.len() >= 256, "sweep must hold >=256 queries");
    queries
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--cold-probe") {
        cold_probe(
            args.get(1).expect("probe mode"),
            args.get(2).expect("snapshot path"),
        );
    }
    let out_dir = args.first().cloned().unwrap_or_else(|| ".".to_string());

    eprintln!("generating berlin at scale {SCALE}...");
    let (dataset, _truth) = soi_datagen::generate(&soi_datagen::berlin(SCALE));
    eprintln!(
        "  {} segments, {} POIs",
        dataset.network.num_segments(),
        dataset.pois.len()
    );

    // 1. Index construction, old vs new, interleaved so drift hits both.
    let mut old_times = Vec::with_capacity(BUILD_REPS);
    let mut new_times = Vec::with_capacity(BUILD_REPS);
    for _ in 0..BUILD_REPS {
        let t = Instant::now();
        black_box(old_index_build(&dataset.network, &dataset.pois, CELL));
        old_times.push(t.elapsed());
        let t = Instant::now();
        black_box(PoiIndex::build_with_threads(
            &dataset.network,
            &dataset.pois,
            CELL,
            1,
        ));
        new_times.push(t.elapsed());
    }
    let build_old = median(old_times);
    let build_new = median(new_times);
    let build_speedup = build_old.as_secs_f64() / build_new.as_secs_f64().max(1e-12);
    eprintln!(
        "index build: old {:.1}ms, new {:.1}ms ({build_speedup:.2}x)",
        ms(build_old),
        ms(build_new)
    );

    // 2. Single-query latency.
    let index = PoiIndex::build_with_threads(&dataset.network, &dataset.pois, CELL, 0);
    let query =
        SoiQuery::new(dataset.query_keywords(&["shop", "food"]), 50, EPS).expect("valid query");
    let config = SoiConfig::default();
    let mut direct = Vec::with_capacity(QUERY_REPS);
    for _ in 0..QUERY_REPS {
        index.clear_epsilon_cache();
        let t = Instant::now();
        black_box(
            run_soi(&dataset.network, &dataset.pois, &index, &query, &config).expect("valid query"),
        );
        direct.push(t.elapsed());
    }
    direct.sort_unstable();

    let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
    let one_worker = QueryEngine::new(1);
    let single = std::slice::from_ref(&query);
    let mut engine_one = Vec::with_capacity(QUERY_REPS);
    for _ in 0..QUERY_REPS {
        index.clear_epsilon_cache();
        let t = Instant::now();
        black_box(one_worker.run_soi_batch(&ctx, single));
        engine_one.push(t.elapsed());
    }
    engine_one.sort_unstable();
    eprintln!(
        "single query: direct p50 {:.2}ms p95 {:.2}ms; engine(1) p50 {:.2}ms p95 {:.2}ms",
        ms(percentile(&direct, 0.5)),
        ms(percentile(&direct, 0.95)),
        ms(percentile(&engine_one, 0.5)),
        ms(percentile(&engine_one, 0.95)),
    );

    // 2b. The same direct query with tracing enabled: quantifies what
    // `--trace-out` costs while recording (spans + sampled UB/LBk
    // counters on the Alg. 1 hot loop).
    trace::set_enabled(true);
    let mut traced = Vec::with_capacity(QUERY_REPS);
    for _ in 0..QUERY_REPS {
        index.clear_epsilon_cache();
        let t = Instant::now();
        black_box(
            run_soi(&dataset.network, &dataset.pois, &index, &query, &config).expect("valid query"),
        );
        traced.push(t.elapsed());
    }
    trace::set_enabled(false);
    let trace_events = trace::take_events().len();
    traced.sort_unstable();
    let traced_overhead_pct =
        (ms(percentile(&traced, 0.5)) / ms(percentile(&direct, 0.5)).max(1e-12) - 1.0) * 100.0;
    eprintln!(
        "traced query: p50 {:.2}ms ({:+.1}% vs disabled, {} events/rep)",
        ms(percentile(&traced, 0.5)),
        traced_overhead_pct,
        trace_events / QUERY_REPS,
    );

    // 3. Batch throughput at 1/2/8 workers (median of 3 sweeps each),
    // with per-worker-count speedup vs the 1-worker baseline.
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let sweep = sweep_queries(&dataset);
    let mut batch_lines = Vec::new();
    let mut batch_history = Vec::new();
    let mut one_worker_qps = 0.0f64;
    for &threads in &[1usize, 2, 8] {
        let engine = QueryEngine::new(threads);
        let mut walls = Vec::new();
        for _ in 0..3 {
            let t = Instant::now();
            let batch = engine.run_soi_batch(&ctx, &sweep);
            walls.push(t.elapsed());
            assert_eq!(batch.stats.errors, 0, "batch queries must all succeed");
        }
        let wall = median(walls);
        let qps = sweep.len() as f64 / wall.as_secs_f64().max(1e-12);
        if threads == 1 {
            one_worker_qps = qps;
        }
        let speedup = qps / one_worker_qps.max(1e-12);
        eprintln!(
            "batch: {} queries on {threads} worker(s): {:.1}ms ({qps:.0} q/s, {speedup:.2}x vs 1 worker)",
            sweep.len(),
            ms(wall)
        );
        batch_lines.push(format!(
            "    {{\"workers\": {threads}, \"queries\": {}, \"wall_ms\": {:.3}, \"qps\": {:.1}, \"speedup_vs_1\": {speedup:.3}}}",
            sweep.len(),
            ms(wall),
            qps
        ));
        batch_history.push(format!(
            "{{\"workers\":{threads},\"qps\":{qps:.1},\"speedup_vs_1\":{speedup:.3}}}"
        ));
    }
    let scaling_note = if host_cpus == 1 {
        "host has 1 CPU core: worker threads time-share it, so multi-worker \
         speedup <= 1.0x is expected and is not a scaling regression"
    } else {
        "multi-core host: multi-worker speedup below 1.0x would indicate a \
         contention regression"
    };
    eprintln!("scaling: {host_cpus} host core(s); {scaling_note}");

    // 5. Cold start: fresh construction vs snapshot load. Per structure
    // (build vs decode from an open snapshot) and end-to-end for the
    // bundle, where the load side additionally pays `Snapshot::open`
    // (mmap + header/table/payload checksum verification) and the dataset
    // fingerprint check. Build and load reps are interleaved so clock
    // drift on a shared VM hits both sides equally.
    eprintln!("generating berlin at scale {COLD_SCALE} for the cold-start comparison...");
    let (cold, _truth) = soi_datagen::generate(&soi_datagen::berlin(COLD_SCALE));
    eprintln!(
        "  {} segments, {} POIs, {} photos",
        cold.network.num_segments(),
        cold.pois.len(),
        cold.photos.len()
    );
    let params = cold_params();
    let snap_path =
        std::env::temp_dir().join(format!("soi-perf-report-{}.soisnap", std::process::id()));
    let snapshot_bytes = {
        let bundle = snap::build_bundle(&cold, &params);
        snap::write_bundle(&snap_path, &cold, &bundle, &params).expect("write snapshot")
    };

    const STRUCTS: [&str; 4] = ["poi_index", "photo_grid", "ir_tree", "epsilon_maps"];
    let mut s_build: [Vec<Duration>; 4] = Default::default();
    let mut s_load: [Vec<Duration>; 4] = Default::default();
    let mut open_times = Vec::with_capacity(COLD_REPS);
    for _ in 0..COLD_REPS {
        // Fresh builds, one structure at a time.
        let t = Instant::now();
        let poi = PoiIndex::build_with_threads(&cold.network, &cold.pois, CELL, 1);
        s_build[0].push(t.elapsed());
        let t = Instant::now();
        black_box(PhotoGrid::build_with_threads(
            &cold.network,
            &cold.photos,
            CELL,
            1,
        ));
        s_build[1].push(t.elapsed());
        let t = Instant::now();
        black_box(IrTree::build_with_threads(&cold.pois, 1));
        s_build[2].push(t.elapsed());
        let t = Instant::now();
        black_box(poi.epsilon_maps(&cold.network, EPS));
        s_build[3].push(t.elapsed());
        drop(poi);

        // Decodes from one open snapshot.
        let t = Instant::now();
        let snapshot = Snapshot::open(&snap_path).expect("open snapshot");
        open_times.push(t.elapsed());
        let num_pois = cold.pois.len();
        let num_segments = cold.network.num_segments();
        let t = Instant::now();
        black_box(
            snap::read_poi_index(&snapshot, "poi", num_pois, num_segments, 1).expect("poi decode"),
        );
        s_load[0].push(t.elapsed());
        let t = Instant::now();
        black_box(snap::read_photo_grid(&snapshot, "pg", cold.photos.len(), 1).expect("pg decode"));
        s_load[1].push(t.elapsed());
        let t = Instant::now();
        black_box(snap::read_ir_tree(&snapshot, "ir", num_pois, 1).expect("ir decode"));
        s_load[2].push(t.elapsed());
        let t = Instant::now();
        black_box(snap::read_epsilon_maps(&snapshot, "eps", num_segments, 1).expect("eps decode"));
        s_load[3].push(t.elapsed());
        drop(snapshot);
    }

    // End-to-end bundle paths, one fresh process per rep (see the module
    // docs for why in-process rebuild medians are not a cold start).
    let mut bundle_build = Vec::with_capacity(COLD_PROC_REPS);
    let mut bundle_miss = Vec::with_capacity(COLD_PROC_REPS);
    let mut bundle_load = Vec::with_capacity(COLD_PROC_REPS);
    for _ in 0..COLD_PROC_REPS {
        bundle_build.push(run_cold_probe("build", &snap_path));
        bundle_miss.push(run_cold_probe("miss", &snap_path));
        bundle_load.push(run_cold_probe("load", &snap_path));
    }
    let _ = std::fs::remove_file(&snap_path);

    let speedup =
        |build: Duration, load: Duration| build.as_secs_f64() / load.as_secs_f64().max(1e-12);
    let mut struct_lines = Vec::new();
    let mut structures_build = Duration::ZERO;
    let mut structures_load = Duration::ZERO;
    for (i, name) in STRUCTS.iter().enumerate() {
        let b = median(s_build[i].clone());
        let l = median(s_load[i].clone());
        structures_build += b;
        structures_load += l;
        eprintln!(
            "cold start: {name}: build {:.1}ms, load {:.1}ms ({:.1}x)",
            ms(b),
            ms(l),
            speedup(b, l)
        );
        struct_lines.push(format!(
            "      {{\"name\": \"{name}\", \"build_ms\": {:.3}, \"load_ms\": {:.3}, \"speedup\": {:.3}}}",
            ms(b),
            ms(l),
            speedup(b, l)
        ));
    }
    let open_med = median(open_times);
    let bundle_build_ms = median_f64(bundle_build);
    let bundle_miss_ms = median_f64(bundle_miss);
    let bundle_load_ms = median_f64(bundle_load);
    let structures_speedup = speedup(structures_build, structures_load);
    let bundle_speedup = bundle_build_ms / bundle_load_ms.max(1e-12);
    let cache_hit_speedup = bundle_miss_ms / bundle_load_ms.max(1e-12);
    eprintln!(
        "cold start: structures (in-process): build {:.1}ms, load {:.1}ms ({structures_speedup:.1}x); \
         bundle (fresh process per rep): build {bundle_build_ms:.1}ms, load {bundle_load_ms:.1}ms \
         ({bundle_speedup:.1}x); cache miss (build+persist) {bundle_miss_ms:.1}ms \
         ({cache_hit_speedup:.1}x vs hit); open+verify {:.1}ms, snapshot {snapshot_bytes} bytes",
        ms(structures_build),
        ms(structures_load),
        ms(open_med),
    );

    // Disabled-instrumentation overhead against the stored PR 2 p50s:
    // the observability layer is compiled into every path measured above,
    // so new-p50 / PR2-p50 is the cost of carrying it disabled.
    let vs_pr2 = match pr2_p50s(&out_dir) {
        None => "null".to_string(),
        Some((pr2_direct, pr2_engine)) => {
            let direct_pct = (ms(percentile(&direct, 0.5)) / pr2_direct.max(1e-12) - 1.0) * 100.0;
            let engine_pct =
                (ms(percentile(&engine_one, 0.5)) / pr2_engine.max(1e-12) - 1.0) * 100.0;
            eprintln!(
                "vs PR2: direct p50 {direct_pct:+.1}%, engine(1) p50 {engine_pct:+.1}% (bound: +2%)"
            );
            format!(
                "{{\n      \"pr2_direct_p50_ms\": {pr2_direct:.3},\n      \"pr2_engine_one_worker_p50_ms\": {pr2_engine:.3},\n      \"direct_p50_overhead_pct\": {direct_pct:.2},\n      \"engine_one_worker_p50_overhead_pct\": {engine_pct:.2},\n      \"bound_pct\": 2.0\n    }}"
            )
        }
    };

    let cold_start = format!(
        "{{\n    \"reps\": {COLD_REPS},\n    \"proc_reps\": {COLD_PROC_REPS},\n    \"scale\": {COLD_SCALE},\n    \"segments\": {},\n    \"pois\": {},\n    \"snapshot_bytes\": {snapshot_bytes},\n    \"open_ms\": {:.3},\n    \"structures\": [\n{}\n    ],\n    \"structures_build_ms\": {:.3},\n    \"structures_load_ms\": {:.3},\n    \"structures_speedup\": {structures_speedup:.3},\n    \"bundle_build_ms\": {bundle_build_ms:.3},\n    \"bundle_load_ms\": {bundle_load_ms:.3},\n    \"bundle_speedup\": {bundle_speedup:.3},\n    \"cache_miss_ms\": {bundle_miss_ms:.3},\n    \"cache_hit_speedup\": {cache_hit_speedup:.3},\n    \"note\": \"single-threaded; structures = interleaved in-process medians decoding from one open snapshot; bundle = one fresh process per rep (a true cold start), where the load side also pays open (mmap + checksum verification of every section) and the dataset fingerprint check; cache_miss = build + persist, what an --index-cache miss pays so the next start can hit\"\n  }}",
        cold.network.num_segments(),
        cold.pois.len(),
        ms(open_med),
        struct_lines.join(",\n"),
        ms(structures_build),
        ms(structures_load),
    );

    let json = format!
    (
        "{{\n  \"bench\": \"PR7 index persistence: snapshots and I/O-time cold start\",\n  \"city\": \"berlin\",\n  \"scale\": {SCALE},\n  \"segments\": {},\n  \"pois\": {},\n  \"host_cpus\": {host_cpus},\n  \"index_build\": {{\n    \"old_ms\": {:.3},\n    \"new_ms\": {:.3},\n    \"speedup\": {:.3},\n    \"reps\": {BUILD_REPS},\n    \"note\": \"single-threaded, medians of interleaved reps; old = pre-PR2 hash-map build reconstructed inline\"\n  }},\n  \"single_query\": {{\n    \"direct_p50_ms\": {:.3},\n    \"direct_p95_ms\": {:.3},\n    \"engine_one_worker_p50_ms\": {:.3},\n    \"engine_one_worker_p95_ms\": {:.3},\n    \"reps\": {QUERY_REPS},\n    \"note\": \"instrumentation compiled in, disabled (production default)\"\n  }},\n  \"observability\": {{\n    \"traced_p50_ms\": {:.3},\n    \"traced_overhead_pct\": {:.2},\n    \"trace_events_per_query\": {},\n    \"vs_pr2\": {}\n  }},\n  \"batch\": [\n{}\n  ],\n  \"cold_start\": {cold_start},\n  \"scaling_note\": \"{scaling_note}\"\n}}\n",
        dataset.network.num_segments(),
        dataset.pois.len(),
        ms(build_old),
        ms(build_new),
        build_speedup,
        ms(percentile(&direct, 0.5)),
        ms(percentile(&direct, 0.95)),
        ms(percentile(&engine_one, 0.5)),
        ms(percentile(&engine_one, 0.95)),
        ms(percentile(&traced, 0.5)),
        traced_overhead_pct,
        trace_events / QUERY_REPS,
        vs_pr2,
        batch_lines.join(",\n"),
    );

    let out_dir = out_dir.trim_end_matches('/');
    let path = format!("{out_dir}/BENCH_PR7.json");
    std::fs::write(&path, &json).expect("write BENCH_PR7.json");
    println!("{json}");
    eprintln!("wrote {path}");

    // One compact line per run so regressions are visible across history.
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let history_line = format!(
        "{{\"ts_unix\":{ts},\"bench\":\"PR7\",\"host_cpus\":{host_cpus},\
         \"build_new_ms\":{:.3},\"direct_p50_ms\":{:.3},\
         \"engine_one_worker_p50_ms\":{:.3},\"traced_p50_ms\":{:.3},\
         \"bundle_build_ms\":{bundle_build_ms:.3},\"bundle_load_ms\":{bundle_load_ms:.3},\
         \"bundle_speedup\":{bundle_speedup:.3},\
         \"cache_hit_speedup\":{cache_hit_speedup:.3},\
         \"structures_speedup\":{structures_speedup:.3},\
         \"batch\":[{}]}}\n",
        ms(build_new),
        ms(percentile(&direct, 0.5)),
        ms(percentile(&engine_one, 0.5)),
        ms(percentile(&traced, 0.5)),
        batch_history.join(","),
    );
    let history_path = format!("{out_dir}/BENCH_HISTORY.jsonl");
    let mut history = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .expect("open BENCH_HISTORY.jsonl");
    std::io::Write::write_all(&mut history, history_line.as_bytes())
        .expect("append BENCH_HISTORY.jsonl");
    eprintln!("appended {history_path}");
}
