//! Index construction and maintenance benchmarks: the offline structures
//! of Sec. 3.2.1 / 4.2.1 and the query-time context building.

use criterion::{criterion_group, criterion_main, Criterion};
use soi_bench::{bench_city, CELL, EPS, RHO};
use soi_core::describe::{ContextBuilder, PhiSource};
use soi_index::{DiversificationIndex, EpsilonMaps, PhotoGrid, PoiIndex};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let city = bench_city();
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("poi_index", |b| {
        b.iter(|| {
            black_box(PoiIndex::build(
                &city.dataset.network,
                &city.dataset.pois,
                CELL,
            ))
        })
    });
    group.bench_function("photo_grid", |b| {
        b.iter(|| {
            black_box(PhotoGrid::build(
                &city.dataset.network,
                &city.dataset.photos,
                CELL,
            ))
        })
    });
    group.bench_function("eager_epsilon_maps", |b| {
        b.iter(|| black_box(EpsilonMaps::build(&city.dataset.network, &city.index, EPS)))
    });
    group.finish();
}

fn bench_query_time_structures(c: &mut Criterion) {
    let city = bench_city();
    let ctx = city.top_shop_context();
    let mut group = c.benchmark_group("query_time_structures");
    group.sample_size(20);
    group.bench_function("street_context", |b| {
        let builder = ContextBuilder {
            network: &city.dataset.network,
            photos: &city.dataset.photos,
            photo_grid: &city.photo_grid,
            pois: Some(&city.dataset.pois),
            eps: EPS,
            rho: RHO,
            phi_source: PhiSource::Photos,
        };
        b.iter(|| black_box(builder.build(ctx.street)))
    });
    group.bench_function("diversification_index", |b| {
        b.iter(|| {
            black_box(DiversificationIndex::build(
                &city.dataset.photos,
                &ctx.members,
                RHO,
            ))
        })
    });
    group.bench_function("photos_near_street", |b| {
        b.iter(|| {
            black_box(city.photo_grid.photos_near_street(
                &city.dataset.network,
                &city.dataset.photos,
                ctx.street,
                EPS,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_query_time_structures);
criterion_main!(benches);
