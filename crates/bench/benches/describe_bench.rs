//! Diversified photo-selection benchmarks (the microbenchmark version of
//! the paper's Figure 6): ST_Rel+Div vs the naive greedy baseline, varying
//! k, λ, and w.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soi_bench::bench_city;
use soi_core::describe::{greedy_select, st_rel_div, DescribeParams};
use std::hint::black_box;

fn bench_vary_k(c: &mut Criterion) {
    let city = bench_city();
    let ctx = city.top_shop_context();
    let mut group = c.benchmark_group("describe_vary_k");
    group.sample_size(20);
    for k in [5usize, 20, 40] {
        let params = DescribeParams::new(k, 0.5, 0.5).unwrap();
        group.bench_with_input(BenchmarkId::new("ST_Rel+Div", k), &k, |b, _| {
            b.iter(|| black_box(st_rel_div(&ctx, &city.dataset.photos, &params)))
        });
        group.bench_with_input(BenchmarkId::new("BL", k), &k, |b, _| {
            b.iter(|| black_box(greedy_select(&ctx, &city.dataset.photos, &params)))
        });
    }
    group.finish();
}

fn bench_vary_lambda(c: &mut Criterion) {
    let city = bench_city();
    let ctx = city.top_shop_context();
    let mut group = c.benchmark_group("describe_vary_lambda");
    group.sample_size(20);
    for lambda in [0.0f64, 0.5, 1.0] {
        let params = DescribeParams::new(20, lambda, 0.5).unwrap();
        let label = format!("{lambda:.2}");
        group.bench_with_input(BenchmarkId::new("ST_Rel+Div", &label), &lambda, |b, _| {
            b.iter(|| black_box(st_rel_div(&ctx, &city.dataset.photos, &params)))
        });
        group.bench_with_input(BenchmarkId::new("BL", &label), &lambda, |b, _| {
            b.iter(|| black_box(greedy_select(&ctx, &city.dataset.photos, &params)))
        });
    }
    group.finish();
}

fn bench_vary_w(c: &mut Criterion) {
    let city = bench_city();
    let ctx = city.top_shop_context();
    let mut group = c.benchmark_group("describe_vary_w");
    group.sample_size(20);
    for w in [0.0f64, 0.5, 1.0] {
        let params = DescribeParams::new(20, 0.5, w).unwrap();
        let label = format!("{w:.2}");
        group.bench_with_input(BenchmarkId::new("ST_Rel+Div", &label), &w, |b, _| {
            b.iter(|| black_box(st_rel_div(&ctx, &city.dataset.photos, &params)))
        });
        group.bench_with_input(BenchmarkId::new("BL", &label), &w, |b, _| {
            b.iter(|| black_box(greedy_select(&ctx, &city.dataset.photos, &params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vary_k, bench_vary_lambda, bench_vary_w);
criterion_main!(benches);
