//! k-SOI identification benchmarks (the microbenchmark version of the
//! paper's Figure 4): the SOI algorithm vs the BL full-scan baseline,
//! varying k and |Ψ|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soi_bench::bench_city;
use soi_core::soi::{run_baseline, run_soi, SoiConfig, StreetAggregate};
use std::hint::black_box;

fn bench_vary_k(c: &mut Criterion) {
    let city = bench_city();
    let mut group = c.benchmark_group("soi_vary_k");
    group.sample_size(20);
    for k in [10usize, 50, 200] {
        let query = city.query(3, k);
        group.bench_with_input(BenchmarkId::new("SOI", k), &k, |b, _| {
            b.iter(|| {
                black_box(run_soi(
                    &city.dataset.network,
                    &city.dataset.pois,
                    &city.index,
                    &query,
                    &SoiConfig::default(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("BL", k), &k, |b, _| {
            b.iter(|| {
                black_box(run_baseline(
                    &city.dataset.network,
                    &city.dataset.pois,
                    &city.index,
                    &query,
                    StreetAggregate::Max,
                ))
            })
        });
    }
    group.finish();
}

fn bench_vary_keywords(c: &mut Criterion) {
    let city = bench_city();
    let mut group = c.benchmark_group("soi_vary_keywords");
    group.sample_size(20);
    for num_kw in 1usize..=4 {
        let query = city.query(num_kw, 50);
        group.bench_with_input(BenchmarkId::new("SOI", num_kw), &num_kw, |b, _| {
            b.iter(|| {
                black_box(run_soi(
                    &city.dataset.network,
                    &city.dataset.pois,
                    &city.index,
                    &query,
                    &SoiConfig::default(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("BL", num_kw), &num_kw, |b, _| {
            b.iter(|| {
                black_box(run_baseline(
                    &city.dataset.network,
                    &city.dataset.pois,
                    &city.index,
                    &query,
                    StreetAggregate::Max,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vary_k, bench_vary_keywords);
criterion_main!(benches);
