//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - **access strategy**: the paper's practical SL1/SL3 alternation vs the
//!   pseudocode's round-robin vs the degenerate single-list strategies;
//! - **bound mode**: the paper's verbatim termination bound vs the
//!   tightened coupled bound + bound-based segment dismissal;
//! - **street aggregate**: Definition 3's max vs the alternatives
//!   (evaluated through the exhaustive baseline);
//! - **Φs source**: deriving the street keyword vector from photos vs POIs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soi_bench::{bench_city, EPS, RHO};
use soi_core::describe::{ContextBuilder, PhiSource};
use soi_core::soi::{run_baseline, run_soi, AccessStrategy, SoiConfig, StreetAggregate};
use std::hint::black_box;

fn bench_access_strategies(c: &mut Criterion) {
    let city = bench_city();
    let query = city.query(3, 20);
    let mut group = c.benchmark_group("ablation_access_strategy");
    group.sample_size(20);
    for strategy in AccessStrategy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &strategy| {
                let config = SoiConfig {
                    strategy,
                    ..Default::default()
                };
                b.iter(|| {
                    black_box(run_soi(
                        &city.dataset.network,
                        &city.dataset.pois,
                        &city.index,
                        &query,
                        &config,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_bound_modes(c: &mut Criterion) {
    let city = bench_city();
    let mut group = c.benchmark_group("ablation_bounds");
    group.sample_size(20);
    for k in [10usize, 50] {
        let query = city.query(3, k);
        for (name, paper_bounds_only) in [("tightened", false), ("paper-verbatim", true)] {
            group.bench_with_input(
                BenchmarkId::new(name, k),
                &paper_bounds_only,
                |b, &paper_bounds_only| {
                    let config = SoiConfig {
                        paper_bounds_only,
                        ..Default::default()
                    };
                    b.iter(|| {
                        black_box(run_soi(
                            &city.dataset.network,
                            &city.dataset.pois,
                            &city.index,
                            &query,
                            &config,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_street_aggregates(c: &mut Criterion) {
    let city = bench_city();
    let query = city.query(3, 20);
    let mut group = c.benchmark_group("ablation_street_aggregate");
    group.sample_size(20);
    for aggregate in [
        StreetAggregate::Max,
        StreetAggregate::Mean,
        StreetAggregate::LengthWeighted,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(aggregate.name()),
            &aggregate,
            |b, &aggregate| {
                b.iter(|| {
                    black_box(run_baseline(
                        &city.dataset.network,
                        &city.dataset.pois,
                        &city.index,
                        &query,
                        aggregate,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_phi_sources(c: &mut Criterion) {
    let city = bench_city();
    let street = city.top_shop_context().street;
    let mut group = c.benchmark_group("ablation_phi_source");
    group.sample_size(10);
    for phi_source in [PhiSource::Photos, PhiSource::Pois, PhiSource::PhotosAndPois] {
        group.bench_with_input(
            BenchmarkId::from_parameter(phi_source.name()),
            &phi_source,
            |b, &phi_source| {
                let builder = ContextBuilder {
                    network: &city.dataset.network,
                    photos: &city.dataset.photos,
                    photo_grid: &city.photo_grid,
                    pois: Some(&city.dataset.pois),
                    eps: EPS,
                    rho: RHO,
                    phi_source,
                };
                b.iter(|| black_box(builder.build(street)))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_access_strategies,
    bench_bound_modes,
    bench_street_aggregates,
    bench_phi_sources
);
criterion_main!(benches);
