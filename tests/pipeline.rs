//! End-to-end integration tests across the whole workspace: generator →
//! indexes → identification → description, on realistically structured
//! synthetic cities.

use streets_of_interest::prelude::*;

const EPS: f64 = 0.0005;
const RHO: f64 = 0.0001;

fn city() -> (Dataset, soi_datagen::GroundTruth) {
    soi_datagen::generate(&soi_datagen::berlin(0.02))
}

#[test]
fn identification_finds_planted_destinations() {
    let (dataset, truth) = city();
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * EPS);
    let query = SoiQuery::new(dataset.query_keywords(&["shop"]), 10, EPS).unwrap();
    let outcome = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .unwrap();
    let planted = truth.for_category("shop");
    let hits = outcome
        .results
        .iter()
        .filter(|r| planted.contains(&r.street))
        .count();
    // The paper reports recall 0.8 at rank 10; the planted ground truth
    // should be found at least that well.
    assert!(
        hits as f64 / planted.len() as f64 >= 0.8,
        "recall@10 too low: {hits}/{}",
        planted.len()
    );
}

#[test]
fn soi_and_baseline_agree_on_generated_city() {
    let (dataset, _) = city();
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * EPS);
    for keywords in [vec!["shop"], vec!["food", "culture"], vec!["religion"]] {
        for k in [1usize, 5, 25] {
            let query = SoiQuery::new(dataset.query_keywords(&keywords), k, EPS).unwrap();
            let soi = run_soi(
                &dataset.network,
                &dataset.pois,
                &index,
                &query,
                &SoiConfig::default(),
            )
            .unwrap();
            let bl = run_baseline(
                &dataset.network,
                &dataset.pois,
                &index,
                &query,
                StreetAggregate::Max,
            );
            assert_eq!(
                soi.street_ids(),
                bl.street_ids(),
                "keywords {keywords:?} k={k}"
            );
            for (a, b) in soi.results.iter().zip(bl.results.iter()) {
                assert!((a.interest - b.interest).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn description_pipeline_is_deterministic_and_consistent() {
    let (dataset, _) = city();
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * EPS);
    let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, 2.0 * EPS);

    let query = SoiQuery::new(dataset.query_keywords(&["shop"]), 1, EPS).unwrap();
    let top = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .unwrap()
    .results[0]
        .street;

    let builder = ContextBuilder {
        network: &dataset.network,
        photos: &dataset.photos,
        photo_grid: &photo_grid,
        pois: Some(&dataset.pois),
        eps: EPS,
        rho: RHO,
        phi_source: PhiSource::Photos,
    };
    let ctx = builder.build(top).unwrap();
    assert!(!ctx.members.is_empty(), "top shop street has no photos");

    let params = DescribeParams::new(8, 0.5, 0.5).unwrap();
    let fast = st_rel_div(&ctx, &dataset.photos, &params).unwrap();
    let slow = greedy_select(&ctx, &dataset.photos, &params);
    assert_eq!(fast.selected, slow.selected);
    assert_eq!(fast.selected.len(), 8.min(ctx.members.len()));

    // Deterministic across a rebuild of the context.
    let ctx2 = builder.build(top).unwrap();
    let again = st_rel_div(&ctx2, &dataset.photos, &params).unwrap();
    assert_eq!(fast.selected, again.selected);

    // All selected photos really belong to the street's photo set.
    for pid in &fast.selected {
        assert!(ctx.members.contains(pid));
    }
}

#[test]
fn all_nine_methods_produce_valid_summaries_and_st_rel_div_wins() {
    let (dataset, _) = city();
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * EPS);
    let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, 2.0 * EPS);
    let query = SoiQuery::new(dataset.query_keywords(&["shop"]), 1, EPS).unwrap();
    let top = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .unwrap()
    .results[0]
        .street;
    let ctx = ContextBuilder {
        network: &dataset.network,
        photos: &dataset.photos,
        photo_grid: &photo_grid,
        pois: Some(&dataset.pois),
        eps: EPS,
        rho: RHO,
        phi_source: PhiSource::Photos,
    }
    .build(top)
    .unwrap();

    let k = 5.min(ctx.members.len());
    let eval = DescribeParams::new(k, 0.5, 0.5).unwrap();
    let mut best_score = f64::NEG_INFINITY;
    let mut st_score = f64::NEG_INFINITY;
    let mut rel_only_scores = Vec::new();
    for method in MethodSpec::all() {
        let params = method.params(k, 0.5, 0.5);
        let out = st_rel_div(&ctx, &dataset.photos, &params).unwrap();
        assert_eq!(out.selected.len(), k, "{method}");
        let score = soi_core::describe::objective(&ctx, &dataset.photos, &eval, &out.selected);
        if method == MethodSpec::st_rel_div() {
            st_score = score;
        }
        if method.criterion == soi_core::describe::Criterion::Rel {
            rel_only_scores.push(score);
        }
        best_score = best_score.max(score);
    }
    // The paper's Table 3 claim, with the honest caveat that all methods
    // are greedy heuristics: ST_Rel+Div directly (greedily) optimises the
    // evaluation criterion, so it must be at (or within a hair of) the
    // best, and clearly above every pure-relevance method.
    assert!(
        st_score >= best_score * 0.99,
        "ST_Rel+Div ({st_score}) far from best ({best_score})"
    );
    for rel in rel_only_scores {
        assert!(
            st_score > rel,
            "ST_Rel+Div ({st_score}) not above a relevance-only method ({rel})"
        );
    }
}

#[test]
fn route_covers_all_result_streets() {
    let (dataset, _) = city();
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * EPS);
    let query = SoiQuery::new(dataset.query_keywords(&["food"]), 6, EPS).unwrap();
    let outcome = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .unwrap();
    let route = sketch_route(&dataset.network, &outcome.results);
    assert_eq!(route.len(), outcome.results.len());
    let mut sorted_route = route.clone();
    sorted_route.sort();
    sorted_route.dedup();
    assert_eq!(sorted_route.len(), route.len(), "route repeats a street");
    assert_eq!(
        route[0], outcome.results[0].street,
        "route starts at top SOI"
    );
}
