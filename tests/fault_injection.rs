//! Fault injection: loading deliberately corrupted datasets must always
//! produce a typed [`SoiError`] or a documented lenient recovery — never a
//! panic, never an unbounded allocation.
//!
//! Each test saves a pristine generated dataset, applies one corruption
//! mode, and loads the result under both `Strict` and `Lenient` options.
//! The property tests at the bottom fuzz random byte-level damage over
//! every file of the dataset.

use proptest::prelude::*;
use soi_common::{ErrorCategory, LoadOptions, LoadReport, SoiError, ValidationKind};
use soi_data::Dataset;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The pristine dataset, saved once per test-binary run.
fn pristine() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("soi_fault_pristine_{}", std::process::id()));
        let (dataset, _) = soi_datagen::generate(&soi_datagen::vienna(0.01));
        soi_data::io::save_dataset(&dataset, &dir).expect("save pristine dataset");
        dir
    })
}

/// A fresh copy of the pristine dataset to corrupt.
fn copy_of_pristine() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "soi_fault_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(pristine()).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    dir
}

fn load_strict(dir: &Path) -> Result<(Dataset, LoadReport), SoiError> {
    soi_data::io::load_dataset_with(dir, &LoadOptions::strict())
}

fn load_lenient(dir: &Path) -> Result<(Dataset, LoadReport), SoiError> {
    soi_data::io::load_dataset_with(dir, &LoadOptions::lenient())
}

/// Asserts that both modes fail with the given category (structural damage
/// has no lenient recovery).
fn assert_both_modes_fail(dir: &Path, category: ErrorCategory, what: &str) {
    for (mode, res) in [("strict", load_strict(dir)), ("lenient", load_lenient(dir))] {
        let err = res
            .err()
            .unwrap_or_else(|| panic!("{what}: {mode} load succeeded"));
        assert_eq!(err.category(), category, "{what} ({mode}): {err}");
    }
    std::fs::remove_dir_all(dir).ok();
}

/// Asserts strict rejects with `kind` while lenient recovers, skipping
/// exactly `skipped` records of that kind.
fn assert_record_level(dir: &Path, kind: ValidationKind, skipped: u64, what: &str) {
    let err = load_strict(dir)
        .err()
        .unwrap_or_else(|| panic!("{what}: strict load succeeded"));
    assert_eq!(err.validation_kind(), Some(kind), "{what}: {err}");
    assert_eq!(err.category(), ErrorCategory::Data, "{what}: {err}");

    let (_, report) = load_lenient(dir).unwrap_or_else(|e| panic!("{what}: lenient failed: {e}"));
    assert_eq!(report.skipped(kind), skipped, "{what}: report {report}");
    std::fs::remove_dir_all(dir).ok();
}

/// Rewrites one file through a line-level editing function.
fn edit_lines(dir: &Path, file: &str, f: impl Fn(usize, &str) -> Option<String>) {
    let path = dir.join(file);
    let text = std::fs::read_to_string(&path).unwrap();
    let out: String = text
        .lines()
        .enumerate()
        .filter_map(|(i, line)| f(i, line).map(|l| format!("{l}\n")))
        .collect();
    std::fs::write(&path, out).unwrap();
}

// --- file-level structural damage ---------------------------------------

#[test]
fn missing_network_file_is_not_found() {
    let dir = copy_of_pristine();
    std::fs::remove_file(dir.join("network.tsv")).unwrap();
    assert_both_modes_fail(&dir, ErrorCategory::NotFound, "missing network.tsv");
}

#[test]
fn missing_vocab_file_is_not_found() {
    let dir = copy_of_pristine();
    std::fs::remove_file(dir.join("vocab.tsv")).unwrap();
    assert_both_modes_fail(&dir, ErrorCategory::NotFound, "missing vocab.tsv");
}

#[test]
fn missing_name_file_recovers_with_warning() {
    // Documented recovery: name.txt is optional metadata; absence is a
    // warning, any other I/O failure on it is still an error.
    let dir = copy_of_pristine();
    std::fs::remove_file(dir.join("name.txt")).unwrap();
    for res in [load_strict(&dir), load_lenient(&dir)] {
        let (dataset, report) = res.expect("absent name.txt is not fatal");
        assert_eq!(dataset.name, "unnamed");
        assert!(report.warnings.iter().any(|w| w.contains("name.txt")));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_network_file_is_a_parse_error() {
    let dir = copy_of_pristine();
    std::fs::write(dir.join("network.tsv"), "").unwrap();
    assert_both_modes_fail(&dir, ErrorCategory::Data, "empty network.tsv");
}

#[test]
fn empty_poi_and_photo_files_load_as_empty_collections() {
    let dir = copy_of_pristine();
    std::fs::write(dir.join("pois.tsv"), "").unwrap();
    std::fs::write(dir.join("photos.tsv"), "").unwrap();
    let (dataset, report) = load_strict(&dir).expect("empty collections are valid");
    assert_eq!(dataset.pois.len(), 0);
    assert_eq!(dataset.photos.len(), 0);
    assert!(report.is_clean());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_garbage_network_is_an_error() {
    let dir = copy_of_pristine();
    std::fs::write(
        dir.join("network.tsv"),
        [0u8, 159, 146, 150, 255, 0, 13, 10, 7],
    )
    .unwrap();
    for (mode, res) in [
        ("strict", load_strict(&dir)),
        ("lenient", load_lenient(&dir)),
    ] {
        assert!(res.is_err(), "{mode} load of binary garbage succeeded");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_utf8_in_pois_is_an_error() {
    let dir = copy_of_pristine();
    let mut bytes = std::fs::read(dir.join("pois.tsv")).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = 0xFF;
    bytes[mid + 1] = 0xFE;
    std::fs::write(dir.join("pois.tsv"), bytes).unwrap();
    for (mode, res) in [
        ("strict", load_strict(&dir)),
        ("lenient", load_lenient(&dir)),
    ] {
        assert!(res.is_err(), "{mode} load of non-UTF-8 pois.tsv succeeded");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_network_is_a_parse_error() {
    let dir = copy_of_pristine();
    let text = std::fs::read_to_string(dir.join("network.tsv")).unwrap();
    let cut: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
    std::fs::write(dir.join("network.tsv"), cut).unwrap();
    assert_both_modes_fail(&dir, ErrorCategory::Data, "truncated network.tsv");
}

#[test]
fn bad_network_header_is_a_parse_error() {
    let dir = copy_of_pristine();
    edit_lines(&dir, "network.tsv", |i, line| {
        Some(if i == 0 {
            "# wrong-magic v9".into()
        } else {
            line.into()
        })
    });
    assert_both_modes_fail(&dir, ErrorCategory::Data, "bad header");
}

#[test]
fn oversized_section_count_is_rejected_without_allocating() {
    // A corrupt count must not drive `Vec::with_capacity` — the reader
    // caps section counts long before reserving memory.
    let dir = copy_of_pristine();
    edit_lines(&dir, "network.tsv", |i, line| {
        Some(if i == 1 {
            "nodes 99999999999999".into()
        } else {
            line.into()
        })
    });
    assert_both_modes_fail(&dir, ErrorCategory::Data, "oversized node count");
}

// --- record-level damage: strict aborts, lenient skips and counts --------

#[test]
fn shuffled_poi_fields_are_malformed_records() {
    // Keywords where the x coordinate belongs: field order violated.
    let dir = copy_of_pristine();
    edit_lines(&dir, "pois.tsv", |i, line| {
        Some(if i == 2 {
            let fields: Vec<&str> = line.split('\t').collect();
            format!("{}\t{}\t{}\t{}", fields[3], fields[1], fields[2], fields[0])
        } else {
            line.into()
        })
    });
    assert_record_level(
        &dir,
        ValidationKind::MalformedRecord,
        1,
        "shuffled poi fields",
    );
}

#[test]
fn non_finite_photo_coordinates_are_rejected() {
    let dir = copy_of_pristine();
    edit_lines(&dir, "photos.tsv", |i, line| {
        Some(match i {
            0 => {
                let rest = line.split_once('\t').unwrap().1;
                format!("NaN\t{rest}")
            }
            1 => {
                let rest = line.split_once('\t').unwrap().1;
                format!("inf\t{rest}")
            }
            _ => line.into(),
        })
    });
    assert_record_level(
        &dir,
        ValidationKind::NonFiniteCoordinate,
        2,
        "NaN/inf photo coordinates",
    );
}

#[test]
fn negative_poi_weight_is_rejected() {
    let dir = copy_of_pristine();
    edit_lines(&dir, "pois.tsv", |i, line| {
        Some(if i == 0 {
            let fields: Vec<&str> = line.split('\t').collect();
            format!("{}\t{}\t-7.5\t{}", fields[0], fields[1], fields[3])
        } else {
            line.into()
        })
    });
    assert_record_level(
        &dir,
        ValidationKind::InvalidWeight,
        1,
        "negative poi weight",
    );
}

#[test]
fn oversized_keyword_ids_are_rejected() {
    let dir = copy_of_pristine();
    edit_lines(&dir, "pois.tsv", |i, line| {
        Some(if i == 1 {
            let fields: Vec<&str> = line.split('\t').collect();
            format!("{}\t{}\t{}\t4294967295", fields[0], fields[1], fields[2])
        } else {
            line.into()
        })
    });
    assert_record_level(
        &dir,
        ValidationKind::KeywordOutOfRange,
        1,
        "keyword id beyond vocab",
    );
}

#[test]
fn dangling_segment_reference_is_rejected() {
    let dir = copy_of_pristine();
    // The last segment line references a node that does not exist. Editing
    // the last line cannot break any later segment's chain.
    let n_lines = std::fs::read_to_string(dir.join("network.tsv"))
        .unwrap()
        .lines()
        .count();
    edit_lines(&dir, "network.tsv", |i, line| {
        Some(if i == n_lines - 1 {
            let street = line.split('\t').next().unwrap().to_string();
            format!("{street}\t999999\t999998")
        } else {
            line.into()
        })
    });
    assert_record_level(
        &dir,
        ValidationKind::DanglingReference,
        1,
        "dangling segment",
    );
}

#[test]
fn zero_length_segment_is_rejected() {
    let dir = copy_of_pristine();
    let n_lines = std::fs::read_to_string(dir.join("network.tsv"))
        .unwrap()
        .lines()
        .count();
    edit_lines(&dir, "network.tsv", |i, line| {
        Some(if i == n_lines - 1 {
            let mut fields = line.split('\t');
            let street = fields.next().unwrap();
            let from = fields.next().unwrap();
            format!("{street}\t{from}\t{from}")
        } else {
            line.into()
        })
    });
    assert_record_level(
        &dir,
        ValidationKind::ZeroLengthSegment,
        1,
        "zero-length segment",
    );
}

#[test]
fn duplicate_vocab_terms_strict_rejects_lenient_preserves_ids() {
    let dir = copy_of_pristine();
    let vocab = std::fs::read_to_string(dir.join("vocab.tsv")).unwrap();
    let first = vocab.lines().next().unwrap().to_string();
    std::fs::write(dir.join("vocab.tsv"), format!("{vocab}{first}\n")).unwrap();

    let err = load_strict(&dir)
        .err()
        .unwrap_or_else(|| panic!("duplicate vocab term accepted strictly"));
    assert_eq!(
        err.validation_kind(),
        Some(ValidationKind::MalformedRecord),
        "{err}"
    );

    // Lenient keeps the id space positional: the duplicate line still
    // occupies an id (so POI/photo keyword ids stay valid), under a
    // disambiguated placeholder term.
    let pristine_len = load_strict(pristine()).unwrap().0.vocab.len();
    let (dataset, report) = load_lenient(&dir).expect("lenient recovers from duplicate term");
    assert_eq!(dataset.vocab.len(), pristine_len + 1);
    assert_eq!(report.skipped(ValidationKind::MalformedRecord), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lenient_recovery_preserves_all_clean_records() {
    // One bad record among many: the lenient load keeps everything else.
    let pristine_pois = load_strict(pristine()).unwrap().0.pois.len();
    let dir = copy_of_pristine();
    edit_lines(&dir, "pois.tsv", |i, line| {
        Some(if i == 3 {
            "what is a coordinate\teven".into()
        } else {
            line.into()
        })
    });
    let (dataset, report) = load_lenient(&dir).unwrap();
    assert_eq!(dataset.pois.len(), pristine_pois - 1);
    assert_eq!(report.total_skipped(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

// --- randomized damage: whatever the corruption, loading never panics ----

const DATASET_FILES: &[&str] = &[
    "network.tsv",
    "name.txt",
    "vocab.tsv",
    "pois.tsv",
    "photos.tsv",
];

/// Loads under both modes, discarding results: reaching the end of this
/// function (rather than unwinding) is the property under test.
fn load_both_modes_must_not_panic(dir: &Path) {
    let _ = load_strict(dir);
    let _ = load_lenient(dir);
}

proptest! {
    #[test]
    fn random_byte_flips_never_panic(
        file in 0usize..5,
        pos in 0.0f64..1.0,
        byte in 0u8..=255,
    ) {
        let dir = copy_of_pristine();
        let path = dir.join(DATASET_FILES[file]);
        let mut bytes = std::fs::read(&path).unwrap();
        if !bytes.is_empty() {
            let i = ((bytes.len() - 1) as f64 * pos) as usize;
            bytes[i] = byte;
            std::fs::write(&path, bytes).unwrap();
        }
        load_both_modes_must_not_panic(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn random_truncations_never_panic(file in 0usize..5, keep in 0.0f64..1.0) {
        let dir = copy_of_pristine();
        let path = dir.join(DATASET_FILES[file]);
        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() as f64 * keep) as usize;
        std::fs::write(&path, &bytes[..cut.min(bytes.len())]).unwrap();
        load_both_modes_must_not_panic(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn random_line_swaps_never_panic(file in 0usize..5, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let dir = copy_of_pristine();
        let path = dir.join(DATASET_FILES[file]);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        if lines.len() >= 2 {
            let i = ((lines.len() - 1) as f64 * a) as usize;
            let j = ((lines.len() - 1) as f64 * b) as usize;
            lines.swap(i, j);
            let out: String = lines.iter().map(|l| format!("{l}\n")).collect();
            std::fs::write(&path, out).unwrap();
        }
        load_both_modes_must_not_panic(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn random_record_splices_never_panic(
        file in 0usize..5,
        at in 0.0f64..1.0,
        junk in ".*",
    ) {
        // Replace one whole line with adversarial unicode.
        let dir = copy_of_pristine();
        let path = dir.join(DATASET_FILES[file]);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        if !lines.is_empty() {
            let i = ((lines.len() - 1) as f64 * at) as usize;
            lines[i] = junk.replace('\n', " ");
            let out: String = lines.iter().map(|l| format!("{l}\n")).collect();
            std::fs::write(&path, out).unwrap();
        }
        load_both_modes_must_not_panic(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_lenient_datasets_are_always_queryable(file in 0usize..5, at in 0.0f64..1.0) {
        // Beyond not panicking: whatever survives a lenient load must be a
        // structurally sound dataset the query pipeline accepts.
        let dir = copy_of_pristine();
        let path = dir.join(DATASET_FILES[file]);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        if !lines.is_empty() {
            let i = ((lines.len() - 1) as f64 * at) as usize;
            lines[i] = "garbage\trecord".into();
            let out: String = lines.iter().map(|l| format!("{l}\n")).collect();
            std::fs::write(&path, out).unwrap();
        }
        if let Ok((dataset, _)) = load_lenient(&dir) {
            let index = soi_index::PoiIndex::build(&dataset.network, &dataset.pois, 0.001);
            let query = soi_core::soi::SoiQuery::new(
                dataset.query_keywords(&["shop"]),
                5,
                0.0005,
            )
            .unwrap();
            let outcome = soi_core::soi::run_soi(
                &dataset.network,
                &dataset.pois,
                &index,
                &query,
                &soi_core::soi::SoiConfig::default(),
            );
            prop_assert!(outcome.is_ok(), "lenient-loaded dataset rejected by run_soi");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
