//! Persistence round-trip: saving and reloading a dataset must not change
//! any query answer.

use streets_of_interest::prelude::*;

const EPS: f64 = 0.0005;

#[test]
fn saved_and_reloaded_dataset_answers_identically() {
    let (dataset, _) = soi_datagen::generate(&soi_datagen::vienna(0.015));
    let dir = std::env::temp_dir().join("soi_roundtrip_integration");
    soi_data::io::save_dataset(&dataset, &dir).unwrap();
    let reloaded = soi_data::io::load_dataset(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(reloaded.pois.len(), dataset.pois.len());
    assert_eq!(reloaded.photos.len(), dataset.photos.len());
    assert_eq!(reloaded.vocab.len(), dataset.vocab.len());

    let index_a = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * EPS);
    let index_b = PoiIndex::build(&reloaded.network, &reloaded.pois, 2.0 * EPS);

    for keywords in [vec!["shop"], vec!["food", "services"]] {
        let qa = SoiQuery::new(dataset.query_keywords(&keywords), 10, EPS).unwrap();
        let qb = SoiQuery::new(reloaded.query_keywords(&keywords), 10, EPS).unwrap();
        let a = run_soi(
            &dataset.network,
            &dataset.pois,
            &index_a,
            &qa,
            &SoiConfig::default(),
        )
        .unwrap();
        let b = run_soi(
            &reloaded.network,
            &reloaded.pois,
            &index_b,
            &qb,
            &SoiConfig::default(),
        )
        .unwrap();
        assert_eq!(a.street_ids(), b.street_ids(), "keywords {keywords:?}");
        for (ra, rb) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(ra.interest, rb.interest);
            assert_eq!(ra.best_segment, rb.best_segment);
        }
    }

    // Description side too.
    let grid_a = PhotoGrid::build(&dataset.network, &dataset.photos, 2.0 * EPS);
    let grid_b = PhotoGrid::build(&reloaded.network, &reloaded.photos, 2.0 * EPS);
    let q = SoiQuery::new(dataset.query_keywords(&["shop"]), 1, EPS).unwrap();
    let top = run_soi(
        &dataset.network,
        &dataset.pois,
        &index_a,
        &q,
        &SoiConfig::default(),
    )
    .unwrap()
    .results[0]
        .street;
    let make_ctx = |d: &Dataset, g: &PhotoGrid| {
        ContextBuilder {
            network: &d.network,
            photos: &d.photos,
            photo_grid: g,
            pois: Some(&d.pois),
            eps: EPS,
            rho: 0.0001,
            phi_source: PhiSource::Photos,
        }
        .build(top)
        .unwrap()
    };
    let ctx_a = make_ctx(&dataset, &grid_a);
    let ctx_b = make_ctx(&reloaded, &grid_b);
    assert_eq!(ctx_a.members, ctx_b.members);
    let params = DescribeParams::new(5, 0.5, 0.5).unwrap();
    let sa = st_rel_div(&ctx_a, &dataset.photos, &params).unwrap();
    let sb = st_rel_div(&ctx_b, &reloaded.photos, &params).unwrap();
    assert_eq!(sa.selected, sb.selected);
    assert_eq!(sa.objective, sb.objective);
}
