//! Tier-1 determinism guarantees of the parallel pipeline (PR 2).
//!
//! Every multi-threaded offline build must be byte-identical to its
//! sequential counterpart, and the batched [`soi_engine::QueryEngine`]
//! must return bit-identical results whatever the worker count. These
//! tests run the full stack end-to-end on a generated city.

use soi_core::soi::{run_soi, SoiConfig, SoiOutcome, SoiQuery};
use soi_engine::{QueryContext, QueryEngine};
use soi_index::{DiversificationIndex, IrTree, PhotoGrid, PoiIndex};
use std::sync::Arc;

const EPS: f64 = 0.0005;
const CELL: f64 = 2.0 * EPS;
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture() -> soi_data::Dataset {
    soi_datagen::generate(&soi_datagen::vienna(0.02)).0
}

fn queries(dataset: &soi_data::Dataset) -> Vec<SoiQuery> {
    [
        (5usize, &["shop"][..]),
        (10, &["food", "cafe"][..]),
        (7, &["shop", "food", "bar"][..]),
    ]
    .into_iter()
    .map(|(k, kws)| SoiQuery::new(dataset.query_keywords(kws), k, EPS).expect("valid query"))
    .collect()
}

/// Queries see only the index's contents, so an index equality check that
/// must hold across thread counts is "every query answers identically".
/// The per-structure byte-equality checks live in the `soi-index` and
/// `soi-rtree` crates; this is the end-to-end version.
#[test]
fn poi_index_parallel_build_is_thread_count_invariant() {
    let dataset = fixture();
    let sequential = PoiIndex::build_with_threads(&dataset.network, &dataset.pois, CELL, 1);
    let queries = queries(&dataset);
    let expected: Vec<SoiOutcome> = queries
        .iter()
        .map(|q| {
            run_soi(
                &dataset.network,
                &dataset.pois,
                &sequential,
                q,
                &SoiConfig::default(),
            )
            .expect("valid query")
        })
        .collect();

    for threads in WORKER_COUNTS {
        let parallel = PoiIndex::build_with_threads(&dataset.network, &dataset.pois, CELL, threads);
        assert_eq!(
            sequential.num_occupied_cells(),
            parallel.num_occupied_cells()
        );
        assert_eq!(sequential.segments_by_len(), parallel.segments_by_len());
        let mut cells: Vec<_> = sequential.occupied_cells().map(|(id, _)| id).collect();
        cells.sort_unstable();
        for cell in cells {
            let a = sequential.cell(cell).expect("occupied");
            let b = parallel.cell(cell).expect("same cells occupied");
            assert_eq!(a.pois, b.pois);
            assert_eq!(a.total_weight.to_bits(), b.total_weight.to_bits());
        }
        for (q, want) in queries.iter().zip(&expected) {
            let got = run_soi(
                &dataset.network,
                &dataset.pois,
                &parallel,
                q,
                &SoiConfig::default(),
            )
            .expect("valid query");
            assert_eq!(got.results, want.results, "threads {threads}");
        }
    }
}

#[test]
fn photo_and_diversification_builds_are_thread_count_invariant() {
    let dataset = fixture();
    let grid1 = PhotoGrid::build_with_threads(&dataset.network, &dataset.photos, CELL, 1);
    let members: Vec<_> = dataset.photos.iter().map(|p| p.id).take(400).collect();
    let div1 = DiversificationIndex::build_with_threads(&dataset.photos, &members, 0.0001, 1);
    let tree1 = IrTree::build_with_threads(&dataset.pois, 1);
    let probe = soi_geo::Point::new(0.3, 0.4);
    let probe_kws = dataset.query_keywords(&["shop", "food"]);
    let streets: Vec<_> = dataset.network.streets().iter().map(|s| s.id).collect();

    for threads in WORKER_COUNTS {
        let grid = PhotoGrid::build_with_threads(&dataset.network, &dataset.photos, CELL, threads);
        assert_eq!(grid1.num_occupied_cells(), grid.num_occupied_cells());
        for &street in streets.iter().take(10) {
            assert_eq!(
                grid1.photos_near_street(&dataset.network, &dataset.photos, street, EPS),
                grid.photos_near_street(&dataset.network, &dataset.photos, street, EPS),
                "threads {threads}"
            );
        }

        let div =
            DiversificationIndex::build_with_threads(&dataset.photos, &members, 0.0001, threads);
        assert_eq!(div1.occupied(), div.occupied());
        for &cell in div1.occupied() {
            let (a, b) = (
                div1.cell(cell).expect("occupied"),
                div.cell(cell).expect("same cells occupied"),
            );
            assert_eq!(a.photos, b.photos);
            assert_eq!(a.psi_min, b.psi_min);
            assert_eq!(a.psi_max, b.psi_max);
        }

        let tree = IrTree::build_with_threads(&dataset.pois, threads);
        assert_eq!(
            tree1.top_k_relevant(probe, &probe_kws, 20),
            tree.top_k_relevant(probe, &probe_kws, 20),
            "threads {threads}"
        );
    }
}

#[test]
fn engine_batch_is_bit_identical_across_worker_counts() {
    let dataset = fixture();
    let index = PoiIndex::build(&dataset.network, &dataset.pois, CELL);
    let queries = queries(&dataset);
    let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));

    let reference = QueryEngine::new(1).run_soi_batch(&ctx, &queries);
    assert_eq!(reference.stats.errors, 0);
    for workers in WORKER_COUNTS {
        let batch = QueryEngine::new(workers).run_soi_batch(&ctx, &queries);
        assert_eq!(batch.stats.queries, queries.len());
        assert_eq!(batch.stats.errors, 0);
        for (got, want) in batch.results.iter().zip(&reference.results) {
            let (got, want) = (
                got.as_ref().expect("valid query"),
                want.as_ref().expect("valid query"),
            );
            assert_eq!(got.results.len(), want.results.len());
            for (g, w) in got.results.iter().zip(&want.results) {
                assert_eq!(g.street, w.street, "workers {workers}");
                assert_eq!(g.interest.to_bits(), w.interest.to_bits());
                assert_eq!(g.best_segment, w.best_segment);
                assert_eq!(g.best_segment_mass.to_bits(), w.best_segment_mass.to_bits());
            }
        }
    }
}
