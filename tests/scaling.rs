//! Large-scale smoke test (ignored by default; run with
//! `cargo test --release -- --ignored`). Exercises the full pipeline at
//! half the paper's London size: generation, indexing, identification,
//! description — asserting correctness-preserving invariants rather than
//! timings.

use std::time::Instant;
use streets_of_interest::prelude::*;

#[test]
#[ignore = "several-minute large-scale run; invoke explicitly"]
fn half_scale_london_end_to_end() {
    let start = Instant::now();
    let (dataset, truth) = soi_datagen::generate(&soi_datagen::london(0.5));
    println!(
        "generated {} segments / {} POIs / {} photos in {:?}",
        dataset.network.num_segments(),
        dataset.pois.len(),
        dataset.photos.len(),
        start.elapsed()
    );
    assert!(dataset.network.num_segments() > 40_000);
    assert!(dataset.pois.len() > 1_000_000);

    let eps = 0.0005;
    let t = Instant::now();
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);
    println!("POI index built in {:?}", t.elapsed());

    // Identification at paper defaults.
    let query = SoiQuery::new(dataset.query_keywords(&["shop"]), 10, eps).unwrap();
    let t = Instant::now();
    let soi = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .unwrap();
    let soi_time = t.elapsed();
    let t = Instant::now();
    let bl = run_baseline(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        StreetAggregate::Max,
    );
    let bl_time = t.elapsed();
    println!("SOI {soi_time:?} vs BL {bl_time:?}");
    assert_eq!(soi.street_ids(), bl.street_ids());
    assert!(
        soi_time < bl_time,
        "SOI should beat BL at this density: {soi_time:?} vs {bl_time:?}"
    );

    // The planted destinations dominate the ranking.
    let planted = truth.for_category("shop");
    let hits = soi
        .results
        .iter()
        .filter(|r| planted.contains(&r.street))
        .count();
    assert!(hits >= 4, "only {hits}/5 planted streets in the top 10");

    // Description of the winner.
    let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, 2.0 * eps);
    let ctx = ContextBuilder {
        network: &dataset.network,
        photos: &dataset.photos,
        photo_grid: &photo_grid,
        pois: Some(&dataset.pois),
        eps,
        rho: 0.0001,
        phi_source: PhiSource::Photos,
    }
    .build(soi.results[0].street)
    .unwrap();
    assert!(
        ctx.members.len() > 100,
        "top street has {} photos",
        ctx.members.len()
    );
    let t = Instant::now();
    let summary = st_rel_div(
        &ctx,
        &dataset.photos,
        &DescribeParams::new(20, 0.5, 0.5).unwrap(),
    )
    .unwrap();
    println!(
        "ST_Rel+Div over |Rs|={} in {:?}",
        ctx.members.len(),
        t.elapsed()
    );
    assert_eq!(summary.selected.len(), 20);
    assert!(t.elapsed().as_secs_f64() < 1.0, "paper claims sub-second");
}
