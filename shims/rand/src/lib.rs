//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace ships a
//! minimal, dependency-free implementation of the tiny `rand` surface it
//! actually uses: a seedable [`rngs::StdRng`] and
//! [`RngExt::random_range`] over float and integer ranges. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic across platforms,
//! statistically solid for data generation and tests (not cryptographic).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Sources of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly to a `T`. `T` is a type parameter
/// (not an associated type) so that integer-literal ranges unify with the
/// caller's expected type, as with real `rand`.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range (as real `rand`).
    fn sample(&self, rng: &mut dyn RngCore) -> T;
}

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "cannot sample empty range");
        a + (b - a) * unit_f64(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (a as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<T: RngCore> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.random_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let u = rng.random_range(0u32..6);
            assert!(u < 6);
            let i = rng.random_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u32..5);
    }
}
