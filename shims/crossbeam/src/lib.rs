//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no access to crates.io; the only crossbeam API
//! the workspace uses is `crossbeam::thread::scope`, which std has provided
//! natively since Rust 1.63. This shim adapts `std::thread::scope` to the
//! crossbeam calling convention (spawn closures receive the scope, the
//! scope call returns a `Result` that is `Err` when a child panicked).

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::panic::AssertUnwindSafe;

    /// Payload of a child-thread panic.
    pub type Panic = Box<dyn std::any::Any + Send + 'static>;

    /// A handle for spawning threads scoped to a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            self.0.spawn(move || f(&Scope(inner)))
        }
    }

    /// Runs `f` with a scope in which threads borrowing local data can be
    /// spawned; joins them all before returning. Returns `Err` with the
    /// panic payload if any child (or `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Panic>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope(s)))))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawns_and_joins() {
            let mut values = [0u32; 4];
            super::scope(|s| {
                for (i, slot) in values.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i as u32 + 1);
                }
            })
            .unwrap();
            assert_eq!(values, [1, 2, 3, 4]);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
