//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io; this shim provides
//! parking_lot's poison-free locking API (guards are returned directly,
//! a lock poisoned by a panicking holder is recovered transparently)
//! backed by `std::sync`.

#![forbid(unsafe_code)]

/// A reader-writer lock whose guards are returned without a poison layer.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard. See [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard. See [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `t`.
    pub fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutual-exclusion lock whose guard is returned without a poison layer.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `t`.
    pub fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
