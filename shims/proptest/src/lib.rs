//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this workspace ships a
//! small, dependency-free property-testing harness that is source-compatible
//! with the `proptest` surface the test suites use:
//!
//! - the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`),
//! - the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::prop_filter`],
//! - range strategies (`0.0f64..1.0`, `0u32..6`, …), tuple strategies,
//!   [`collection::vec`], [`num::f64::ANY`], and `&str` regex-ish string
//!   strategies (any pattern produces adversarial unicode strings),
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from real proptest: no shrinking (failing inputs are printed
//! verbatim), and the case count defaults to 96 (override with the
//! `PROPTEST_CASES` environment variable; seed with `PROPTEST_SEED`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::ops::Range;

/// The per-test random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic generator derived from the test name (and the
    /// `PROPTEST_SEED` environment variable, when set).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            h ^= seed;
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Number of cases each property runs (default 96; `PROPTEST_CASES` to
/// override).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(96)
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Retains only values satisfying `pred`, retrying generation (gives up
    /// with a panic after 1000 consecutive rejections, like proptest's
    /// rejection limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Characters chosen to stress string handling: quotes, escapes, controls,
/// multi-byte unicode, and plain ASCII.
const NASTY_CHARS: &[char] = &[
    '"', '\\', '\n', '\t', '\r', '\u{0}', '\u{7}', '\u{1b}', '/', '<', '>', '&', '\'', '{', '}',
    'π', 'ß', '漢', '🗺', '\u{fffd}', 'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '.', ',', '-', '_',
];

/// Any `&str` is accepted as a pattern; the shim ignores the regex and
/// produces adversarial unicode strings (the suites only use `".*"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = (rng.next_u64() % 24) as usize;
        (0..len)
            .map(|_| NASTY_CHARS[(rng.next_u64() as usize) % NASTY_CHARS.len()])
            .collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` of values from `elem`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Numeric edge-case strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Every `f64` bit pattern, biased toward special values
        /// (NaN, infinities, zeros, subnormals).
        pub struct Any;

        /// Matches `proptest::num::f64::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                const SPECIAL: &[f64] = &[
                    f64::NAN,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    0.0,
                    -0.0,
                    f64::MIN,
                    f64::MAX,
                    f64::MIN_POSITIVE,
                    f64::EPSILON,
                    1.0,
                    -1.0,
                ];
                let roll = rng.next_u64();
                if roll.is_multiple_of(4) {
                    SPECIAL[(roll / 4) as usize % SPECIAL.len()]
                } else {
                    f64::from_bits(rng.next_u64())
                }
            }
        }
    }
}

/// The common imports of a proptest file.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_ne!($a, $b $(, $($fmt)*)?)
    };
}

/// Declares property tests: each function runs [`cases()`](cases) times with
/// fresh random inputs drawn from the given strategies. On failure the
/// generated inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                let repr = format!(
                    concat!("case {} of {}:", $(" ", stringify!($arg), " = {:?}",)*),
                    case, $crate::cases(), $(&$arg,)*
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg;)*
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!("proptest failure in {}: {}", stringify!($name), repr);
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0.0f64..1.0, pair in (0u32..5, 1usize..4)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(pair.0 < 5 && pair.1 >= 1 && pair.1 < 4);
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0u32..10, 2..6).prop_map(|mut v| { v.sort_unstable(); v })) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn filter_holds(n in (0u32..100).prop_filter("even", |n| n % 2 == 0)) {
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn any_f64_hits_specials() {
        let mut rng = crate::TestRng::deterministic("specials");
        let mut nan = false;
        for _ in 0..200 {
            if Strategy::generate(&crate::num::f64::ANY, &mut rng).is_nan() {
                nan = true;
            }
        }
        assert!(nan, "ANY should produce NaN within 200 draws");
    }
}
