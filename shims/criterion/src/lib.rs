//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so benches link against
//! this minimal harness instead. It is source-compatible with the surface
//! the workspace benches use (`Criterion::bench_function`,
//! `benchmark_group` + `bench_with_input`/`sample_size`/`finish`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!`) and
//! reports mean/median/min wall-clock times per benchmark. It performs no
//! statistical analysis, warmup tuning, or HTML reporting.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting one sample per configured iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: one untimed call.
        black_box(f());
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.measured.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<60} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({} samples)",
        samples.len()
    );
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

const DEFAULT_SAMPLES: usize = 20;

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(DEFAULT_SAMPLES),
            measured: Vec::new(),
        };
        f(&mut b);
        report(id, &mut b.measured);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &mut b.measured);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into().id), &mut b.measured);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }
}
