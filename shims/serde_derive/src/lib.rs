//! Derive half of the offline serde shim (see the sibling `serde` crate).
//!
//! The shim's `Serialize`/`Deserialize` traits are empty markers, so the
//! derive only has to name the type: it scans the item tokens for the
//! identifier following `struct`/`enum`/`union` — no syn/quote needed.
//! Generic types are not supported (none of the workspace's serde-derived
//! types are generic).

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tree in input {
        match tree {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_keyword {
                    return Some(s);
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_keyword = true;
                }
            }
            _ => continue,
        }
    }
    None
}

/// Emits `impl serde::Serialize for <Type> {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

/// Emits `impl<'de> serde::Deserialize<'de> for <Type> {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}
