//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io. The workspace only uses
//! serde through optional `#[cfg_attr(feature = "serde", derive(...))]`
//! attributes on plain data types; this shim supplies marker
//! [`Serialize`]/[`Deserialize`] traits and (behind the `derive` feature) a
//! matching derive macro so that those attributes compile. It does **not**
//! implement any data format — vendor the real serde to actually serialize.

#![forbid(unsafe_code)]

/// Marker for types that would be serializable with the real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with the real serde.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
