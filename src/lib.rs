//! # streets-of-interest
//!
//! A Rust implementation of *"Identifying and Describing Streets of
//! Interest"* (Skoutas, Sacharidis, Stamatoukos — EDBT 2016): spatio-textual
//! ranking of street segments by the density of relevant Points of Interest
//! around them, and diversified photo summaries of the discovered streets.
//!
//! This crate is an umbrella over the workspace:
//!
//! - [`common`]: typed ids, fast hashing, timers ([`soi_common`]);
//! - [`geo`]: planar geometry and the uniform grid ([`soi_geo`]);
//! - [`text`]: keyword interning, sets, frequency vectors ([`soi_text`]);
//! - [`network`]: the road-network model ([`soi_network`]);
//! - [`data`]: POI/photo collections and datasets ([`soi_data`]);
//! - [`index`]: the spatio-textual indexes ([`soi_index`]);
//! - [`rtree`]: a bulk-loaded R-tree with node summaries ([`soi_rtree`]);
//! - [`core`]: the SOI and ST_Rel+Div algorithms ([`soi_core`]);
//! - [`datagen`]: the synthetic city generator ([`soi_datagen`]).
//!
//! ## Quick start
//!
//! ```
//! use streets_of_interest::prelude::*;
//!
//! // Generate a small synthetic city (deterministic by seed).
//! let (dataset, _truth) = soi_datagen::generate(&soi_datagen::vienna(0.01));
//!
//! // Build the spatio-textual POI index.
//! let index = PoiIndex::build(&dataset.network, &dataset.pois, 0.001);
//!
//! // Ask for the top-5 shopping streets within ε = 0.0005°.
//! let query = SoiQuery::new(dataset.query_keywords(&["shop"]), 5, 0.0005).unwrap();
//! let outcome = run_soi(
//!     &dataset.network,
//!     &dataset.pois,
//!     &index,
//!     &query,
//!     &SoiConfig::default(),
//! )
//! .unwrap();
//! assert!(!outcome.results.is_empty());
//! println!(
//!     "top street: {}",
//!     dataset.network.street(outcome.results[0].street).name
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Compile-check the README's code examples as doctests.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use soi_common as common;
pub use soi_core as core;
pub use soi_data as data;
pub use soi_datagen as datagen;
pub use soi_geo as geo;
pub use soi_index as index;
pub use soi_network as network;
pub use soi_rtree as rtree;
pub use soi_text as text;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use soi_common::{KeywordId, PhotoId, PoiId, SegmentId, StreetId};
    pub use soi_core::describe::{
        greedy_select, st_rel_div, ContextBuilder, DescribeParams, MethodSpec, PhiSource,
        StreetContext,
    };
    pub use soi_core::route::{improve_route_2opt, route_length, sketch_route};
    pub use soi_core::soi::{
        run_baseline, run_soi, AccessStrategy, SoiConfig, SoiQuery, StreetAggregate,
    };
    pub use soi_data::{Dataset, PhotoCollection, PoiCollection};
    pub use soi_datagen;
    pub use soi_geo::{Grid, LineSeg, Point, Rect};
    pub use soi_index::{DiversificationIndex, IrTree, PhotoGrid, PoiIndex};
    pub use soi_network::{NetworkBuilder, NetworkStats, RoadNetwork};
    pub use soi_text::{KeywordSet, Vocabulary};
}
