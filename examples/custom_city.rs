//! Building a dataset by hand — no generator involved. Shows the builder
//! APIs a user would call to load their own road network, POIs, and photos
//! (e.g. from an OpenStreetMap extract), then runs both tasks on it.
//!
//! The toy city: two parallel main streets and a connector. "Cafe Row" is
//! packed with cafés; "Office Drive" has offices; the connector is empty.
//!
//! Run with: `cargo run --release --example custom_city`

use streets_of_interest::prelude::*;

fn main() {
    // --- Road network.
    let mut builder = RoadNetwork::builder();
    let cafe_row = builder.add_street_from_points(
        "Cafe Row",
        &[
            Point::new(0.0, 0.0),
            Point::new(0.002, 0.0),
            Point::new(0.004, 0.0),
        ],
    );
    let office_drive = builder.add_street_from_points(
        "Office Drive",
        &[
            Point::new(0.0, 0.003),
            Point::new(0.002, 0.003),
            Point::new(0.004, 0.003),
        ],
    );
    builder.add_street_from_points(
        "Connector Lane",
        &[Point::new(0.002, 0.0), Point::new(0.002, 0.003)],
    );
    let network = builder.build().expect("valid network");
    let _ = (cafe_row, office_drive);

    // --- Vocabulary and POIs.
    let mut vocab = Vocabulary::new();
    let cafe = vocab.intern("cafe");
    let food = vocab.intern("food");
    let office = vocab.intern("office");

    let mut pois = PoiCollection::new();
    // A café every ~40 m along Cafe Row, slightly off the centreline.
    for i in 0..10 {
        pois.add(
            Point::new(i as f64 * 0.0004, 0.0002),
            KeywordSet::from_ids([cafe, food]),
        );
    }
    // Offices along Office Drive.
    for i in 0..4 {
        pois.add(
            Point::new(i as f64 * 0.001, 0.0032),
            KeywordSet::from_ids([office]),
        );
    }
    // One heavyweight POI: a famous food market (weight 5).
    pois.add_weighted(
        Point::new(0.0038, 0.0001),
        KeywordSet::from_ids([food]),
        5.0,
    );

    // --- Photos with tags.
    let mut photos = PhotoCollection::new();
    let latte = vocab.intern("latte");
    let brunch = vocab.intern("brunch");
    let market = vocab.intern("market");
    for i in 0..6 {
        photos.add(
            Point::new(i as f64 * 0.0006, 0.00015),
            KeywordSet::from_ids(if i % 2 == 0 {
                [cafe, latte]
            } else {
                [cafe, brunch]
            }),
        );
    }
    photos.add(
        Point::new(0.0038, 0.00012),
        KeywordSet::from_ids([food, market]),
    );

    let dataset = Dataset::new("toytown", network, vocab, pois, photos);

    // --- Identify: best street for "food".
    let eps = 0.0005;
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);
    let query = SoiQuery::new(dataset.query_keywords(&["food"]), 3, eps).unwrap();
    let outcome = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .expect("valid query");
    println!("food streets:");
    for r in &outcome.results {
        println!(
            "  {:<16} interest {:>10.1} (best-segment mass {})",
            dataset.network.street(r.street).name,
            r.interest,
            r.best_segment_mass
        );
    }
    assert_eq!(
        dataset.network.street(outcome.results[0].street).name,
        "Cafe Row"
    );

    // --- Describe Cafe Row with 3 photos.
    let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, 2.0 * eps);
    let ctx = ContextBuilder {
        network: &dataset.network,
        photos: &dataset.photos,
        photo_grid: &photo_grid,
        pois: Some(&dataset.pois),
        eps,
        rho: 0.0004,
        phi_source: PhiSource::PhotosAndPois,
    }
    .build(outcome.results[0].street)
    .expect("valid context inputs");
    let summary = st_rel_div(
        &ctx,
        &dataset.photos,
        &DescribeParams::new(3, 0.5, 0.5).unwrap(),
    )
    .expect("valid params");
    println!("\nCafe Row in 3 photos:");
    for &pid in &summary.selected {
        let photo = dataset.photos.get(pid);
        let tags: Vec<&str> = photo
            .tags
            .iter()
            .filter_map(|t| dataset.vocab.term(t))
            .collect();
        println!("  photo #{} [{}]", pid.raw(), tags.join(", "));
    }
}
