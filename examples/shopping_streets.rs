//! The paper's Table 2 / Figure 1(b) scenario: identify the top-20
//! shopping streets of (a synthetic) Berlin and compare against the
//! generator's planted ground truth, reporting precision/recall.
//!
//! Run with: `cargo run --release --example shopping_streets`

use streets_of_interest::prelude::*;

fn main() {
    let (dataset, truth) = soi_datagen::generate(&soi_datagen::berlin(0.05));
    let planted = truth.for_category("shop");
    println!(
        "{}: {} streets; planted shopping destinations:",
        dataset.name,
        dataset.network.num_streets()
    );
    for &s in planted {
        println!("  - {}", dataset.network.street(s).name);
    }

    let eps = 0.0005;
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);
    let query = SoiQuery::new(dataset.query_keywords(&["shop"]), 20, eps).unwrap();
    let outcome = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .expect("valid query");

    println!("\ntop-20 SOIs for \"shop\" (✓ = planted destination):");
    let mut hits_at = vec![0usize; outcome.results.len() + 1];
    let mut hits = 0;
    for (rank, r) in outcome.results.iter().enumerate() {
        let hit = planted.contains(&r.street);
        if hit {
            hits += 1;
        }
        hits_at[rank + 1] = hits;
        println!(
            "  {:>2}. {} {:<22} interest {:>12.1}",
            rank + 1,
            if hit { "✓" } else { " " },
            dataset.network.street(r.street).name,
            r.interest
        );
    }

    let denom = planted.len().max(1) as f64;
    println!(
        "\nrecall@10: {:.2}",
        hits_at.get(10).copied().unwrap_or(hits) as f64 / denom
    );
    println!("recall@20: {:.2}", hits as f64 / denom);
    println!(
        "(the paper reports recall 0.8 at rank 10 against each of its two \
         authoritative web lists, and argues the apparent false positives \
         were genuine shopping streets — here, streets that organically \
         accumulated shop POIs)"
    );
}
