//! The paper's Figure 3 scenario: summarise the top shopping street with
//! three photos under different criteria, showing why spatio-textual
//! relevance *and* diversity are both needed.
//!
//! - `S_Rel` drowns in a near-duplicate landmark burst (the "HMV effect");
//! - `T_Rel` drowns in one loud event's tags (the "demonstration effect");
//! - `ST_Rel+Div` mixes viewpoints.
//!
//! Run with: `cargo run --release --example photo_summary`

use streets_of_interest::prelude::*;

fn describe_with(name: &str, dataset: &Dataset, ctx: &StreetContext, params: &DescribeParams) {
    let out = st_rel_div(ctx, &dataset.photos, params).expect("valid params");
    println!("\n{name} (λ = {}, w = {}):", params.lambda, params.w);
    for &pid in &out.selected {
        let photo = dataset.photos.get(pid);
        let tags: Vec<&str> = photo
            .tags
            .iter()
            .filter_map(|t| dataset.vocab.term(t))
            .collect();
        println!(
            "  photo #{:<5} at ({:>8.5}, {:>8.5})  [{}]",
            pid.raw(),
            photo.pos.x,
            photo.pos.y,
            tags.join(", ")
        );
    }
    // Score every method's pick with the balanced objective for comparison.
    let eval = DescribeParams::new(params.k, 0.5, 0.5).unwrap();
    let f = soi_core::describe::objective(ctx, &dataset.photos, &eval, &out.selected);
    println!("  balanced objective F = {f:.4}");
}

fn main() {
    let (dataset, _truth) = soi_datagen::generate(&soi_datagen::london(0.05));
    let eps = 0.0005;
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);

    // The street to describe: the top "shop" SOI (our Oxford Street).
    let query = SoiQuery::new(dataset.query_keywords(&["shop"]), 1, eps).unwrap();
    let top = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .expect("valid query")
    .results[0]
        .street;
    println!(
        "describing {} with 3 photos under different criteria",
        dataset.network.street(top).name
    );

    let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, 2.0 * eps);
    let ctx = ContextBuilder {
        network: &dataset.network,
        photos: &dataset.photos,
        photo_grid: &photo_grid,
        pois: Some(&dataset.pois),
        eps,
        rho: 0.0001,
        phi_source: PhiSource::Photos,
    }
    .build(top)
    .expect("valid context inputs");
    println!(
        "({} candidate photos within ε of the street)",
        ctx.members.len()
    );

    let k = 3;
    // The three headline methods of Figure 3; MethodSpec::all() has all nine.
    for method in [
        MethodSpec {
            aspect: soi_core::describe::Aspect::S,
            criterion: soi_core::describe::Criterion::Rel,
        },
        MethodSpec {
            aspect: soi_core::describe::Aspect::T,
            criterion: soi_core::describe::Criterion::Rel,
        },
        MethodSpec::st_rel_div(),
    ] {
        let params = method.params(k, 0.5, 0.5);
        describe_with(method.name(), &dataset, &ctx, &params);
    }
}
