//! Exploring a city across categories: the exploratory-search workflow the
//! paper's introduction motivates — identify interesting streets per
//! category, then sketch a walking route over the food scene.
//!
//! Run with: `cargo run --release --example city_explorer`

use streets_of_interest::prelude::*;

fn main() {
    let (dataset, _truth) = soi_datagen::generate(&soi_datagen::vienna(0.05));
    let eps = 0.0005;
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);

    println!("exploring {} by category:\n", dataset.name);
    for category in ["shop", "food", "culture", "entertainment"] {
        let query = SoiQuery::new(dataset.query_keywords(&[category]), 3, eps).unwrap();
        let outcome = run_soi(
            &dataset.network,
            &dataset.pois,
            &index,
            &query,
            &SoiConfig::default(),
        )
        .expect("valid query");
        println!("{category}:");
        for r in &outcome.results {
            println!(
                "  {:<22} interest {:>12.1}",
                dataset.network.street(r.street).name,
                r.interest
            );
        }
    }

    // Multi-keyword query: anywhere good for an evening out.
    let query = SoiQuery::new(dataset.query_keywords(&["food", "entertainment"]), 8, eps).unwrap();
    let outcome = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .expect("valid query");
    println!("\nevening-out streets (food ∪ entertainment):");
    for r in &outcome.results {
        println!(
            "  {:<22} interest {:>12.1}",
            dataset.network.street(r.street).name,
            r.interest
        );
    }

    // Sketch a route over them (the paper's future-work extension), then
    // polish it with 2-opt.
    let mut route = sketch_route(&dataset.network, &outcome.results);
    let greedy_len = route_length(&dataset.network, &route);
    let final_len = improve_route_2opt(&dataset.network, &mut route);
    println!(
        "\nsuggested walking order (greedy {:.5}° → 2-opt {:.5}°):",
        greedy_len, final_len
    );
    for (i, street) in route.iter().enumerate() {
        println!("  {}. {}", i + 1, dataset.network.street(*street).name);
    }
}
