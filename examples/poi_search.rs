//! Single POIs vs whole streets, and picking λ.
//!
//! The paper's introduction contrasts classic spatio-textual retrieval
//! ("identify a single POI") with its street-level formulation. This
//! example runs both on the same city — the k nearest relevant POIs via
//! the hybrid spatio-textual R-tree, then the k-SOI street ranking — and
//! finishes with the Figure-5 λ sweep, letting the knee detector pick the
//! "value for money" trade-off for the photo summary.
//!
//! Run with: `cargo run --release --example poi_search`

use streets_of_interest::core::describe::{knee, sweep_lambda};
use streets_of_interest::prelude::*;

fn main() {
    let (dataset, _truth) = soi_datagen::generate(&soi_datagen::vienna(0.05));
    let eps = 0.0005;

    // --- Single-POI retrieval (Sec. 2.1 related work): the 5 food POIs
    // nearest to the city centre.
    let center = dataset
        .extent()
        .map(|e| e.center())
        .unwrap_or(Point::ORIGIN);
    let ir_tree = IrTree::build(&dataset.pois);
    let keywords = dataset.query_keywords(&["food"]);
    println!("5 nearest food POIs to the city centre {center}:");
    for (rank, (pid, dist)) in ir_tree
        .top_k_relevant(center, &keywords, 5)
        .iter()
        .enumerate()
    {
        let poi = dataset.pois.get(*pid);
        let kws: Vec<&str> = poi
            .keywords
            .iter()
            .filter_map(|k| dataset.vocab.term(k))
            .collect();
        println!(
            "  {}. poi #{:<5} {:>9.6} away  [{}]",
            rank + 1,
            pid.raw(),
            dist,
            kws.join(", ")
        );
    }

    // --- Street-level retrieval (the paper's contribution): same keywords.
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);
    let query = SoiQuery::new(keywords, 5, eps).unwrap();
    let streets = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .expect("valid query");
    println!("\ntop 5 food streets (k-SOI):");
    for r in &streets.results {
        println!(
            "  {:<22} interest {:>12.1}",
            dataset.network.street(r.street).name,
            r.interest
        );
    }

    // --- Choosing λ for the summary: sweep and pick the knee.
    let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, 2.0 * eps);
    let ctx = ContextBuilder {
        network: &dataset.network,
        photos: &dataset.photos,
        photo_grid: &photo_grid,
        pois: Some(&dataset.pois),
        eps,
        rho: 0.0001,
        phi_source: PhiSource::Photos,
    }
    .build(streets.results[0].street)
    .expect("valid context inputs");

    let lambdas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let points = sweep_lambda(&ctx, &dataset.photos, 10, 0.5, &lambdas).unwrap();
    let knee_idx = knee(&points);
    println!(
        "\nλ sweep for the summary of {} ({} candidate photos):",
        dataset.network.street(streets.results[0].street).name,
        ctx.members.len()
    );
    for (i, p) in points.iter().enumerate() {
        println!(
            "  λ={:.2}  relevance {:.4}  diversity {:.4}{}",
            p.lambda,
            p.relevance,
            p.diversity,
            if Some(i) == knee_idx {
                "   ← knee (best value for money)"
            } else {
                ""
            }
        );
    }
}
