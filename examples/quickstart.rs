//! Quickstart: generate a city, find the top shopping streets, and
//! summarise the best one with a handful of diverse photos.
//!
//! Run with: `cargo run --release --example quickstart`

use streets_of_interest::prelude::*;

fn main() {
    // 1. A small synthetic Vienna (deterministic: same seed, same city).
    let (dataset, _truth) = soi_datagen::generate(&soi_datagen::vienna(0.02));
    println!(
        "generated {}: {} streets / {} segments, {} POIs, {} photos",
        dataset.name,
        dataset.network.num_streets(),
        dataset.network.num_segments(),
        dataset.pois.len(),
        dataset.photos.len()
    );

    // 2. Build the spatio-textual POI index (offline structure).
    let eps = 0.0005; // the paper's ε ≈ 55 m
    let index = PoiIndex::build(&dataset.network, &dataset.pois, 2.0 * eps);

    // 3. Identify: top-5 streets for "shop".
    let query = SoiQuery::new(dataset.query_keywords(&["shop"]), 5, eps).expect("valid query");
    let outcome = run_soi(
        &dataset.network,
        &dataset.pois,
        &index,
        &query,
        &SoiConfig::default(),
    )
    .expect("valid query");
    println!("\ntop shopping streets:");
    for (rank, r) in outcome.results.iter().enumerate() {
        println!(
            "  {}. {:<22} interest {:>12.1} ({:.1} relevant-POI weight at its best segment)",
            rank + 1,
            dataset.network.street(r.street).name,
            r.interest,
            r.best_segment_mass
        );
    }

    // 4. Describe: a 4-photo spatio-textually diverse summary of the winner.
    let top = outcome.results[0].street;
    let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, 2.0 * eps);
    let ctx = ContextBuilder {
        network: &dataset.network,
        photos: &dataset.photos,
        photo_grid: &photo_grid,
        pois: Some(&dataset.pois),
        eps,
        rho: 0.0001, // the paper's ρ
        phi_source: PhiSource::Photos,
    }
    .build(top)
    .expect("valid context inputs");
    let params = DescribeParams::new(4, 0.5, 0.5).expect("valid params");
    let summary = st_rel_div(&ctx, &dataset.photos, &params).expect("valid params");

    println!(
        "\nphoto summary of {} ({} candidate photos, objective {:.4}):",
        dataset.network.street(top).name,
        ctx.members.len(),
        summary.objective
    );
    for &pid in &summary.selected {
        let photo = dataset.photos.get(pid);
        let tags: Vec<&str> = photo
            .tags
            .iter()
            .filter_map(|t| dataset.vocab.term(t))
            .collect();
        println!(
            "  photo #{:<5} at ({:>8.5}, {:>8.5})  [{}]",
            pid.raw(),
            photo.pos.x,
            photo.pos.y,
            tags.join(", ")
        );
    }
}
